"""The wire protocol of the online MITOS decision service.

Newline-delimited JSON over TCP: every request and every response is one
JSON object on one line (LF-terminated, UTF-8).  The protocol is the
software analogue of the DIFT-coprocessor interface of the ARM-SoC line
of work: the *tracked* side owns the shadow memory and asks the decision
side, per indirect flow, which candidate tags to propagate.

Request schema (``op`` selects the handler; unknown keys are rejected so
client bugs surface as structured errors instead of silent defaults)::

    {"id": 7, "op": "decide", "dest": "mem:0x4800", "kind": "address_dep",
     "tick": 812, "context": "lw", "free_slots": 3, "pollution": 137.5,
     "candidates": [{"type": "netflow", "index": 1, "copies": 4}]}

``pollution`` and each candidate's ``copies`` are optional: when present
they are authoritative (the *explicit* mode the offline-equivalence load
generator uses -- the client's tracker state travels with the request);
when absent the shard fills them from its own live tracker state (the
*stateful* mode, where successive requests observe the copies granted by
earlier decisions).

Response to a ``decide``::

    {"id": 7, "ok": true, "shard": 2, "propagated": ["netflow:1"],
     "decisions": [{"tag": "netflow:1", "type": "netflow", "copies": 4,
                    "marginal": -0.8, "under": -1.2, "over": 0.4,
                    "propagate": true}]}

``decisions`` are in Algorithm 2's rank order (marginal ascending,
stable), exactly as :func:`repro.core.decision.decide_multi` reports
them.  Errors are structured and never tear the connection down::

    {"id": 7, "ok": false, "error": "bad-request", "message": "..."}

Other ops: ``apply`` (run one raw flow event through the shard's
tracker -- the stateful mode's state channel), ``ping``, ``stats``,
``checkpoint`` (force an immediate shard checkpoint).  Frames larger
than :data:`MAX_FRAME_BYTES` are answered with a ``frame-too-large``
error and the oversized line is discarded; the connection survives.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.dift.flows import FlowKind
from repro.dift.shadow import Location

#: wire format version, echoed by ``ping`` / the admin surface
PROTOCOL_VERSION = 1

#: hard per-line budget; longer frames get a ``frame-too-large`` error
MAX_FRAME_BYTES = 1 << 20

#: ops a request may carry
REQUEST_OPS = ("decide", "apply", "ping", "stats", "checkpoint", "gossip")

#: error codes a response may carry (documented in docs/SERVING.md)
ERROR_CODES = (
    "bad-json",
    "bad-request",
    "unknown-op",
    "unknown-field",
    "frame-too-large",
    "overloaded",
    "internal",
    "shutting-down",
    # binary-framer codes ride at the end so the NDJSON numbering (and the
    # u8 code index binary error frames carry) stays stable
    "bad-frame",
    "unsupported-version",
)

_DECIDE_KEYS = frozenset(
    {"id", "op", "dest", "kind", "tick", "context", "free_slots",
     "pollution", "candidates"}
)
_APPLY_KEYS = frozenset(
    {"id", "op", "dest", "kind", "tick", "context", "sources", "tag"}
)
_CANDIDATE_KEYS = frozenset({"type", "index", "copies"})
_BARE_KEYS = frozenset({"id", "op"})
_GOSSIP_KEYS = frozenset({"id", "op", "peer", "pollution"})

_INDIRECT_KINDS = frozenset({"address_dep", "control_dep"})


class ProtocolError(Exception):
    """A malformed or unacceptable request; maps to one error response."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def format_location(location: Location) -> str:
    """``("mem", 0x4800)`` -> ``"mem:0x4800"`` (the CLI location syntax)."""
    kind, value = location[0], location[1]
    if kind == "mem" and isinstance(value, int):
        return f"mem:{value:#x}"
    return f"{kind}:{value}"


def parse_location(text: str) -> Location:
    """Inverse of :func:`format_location` for the standard location kinds.

    ``mem`` and ``nic`` values decode as integers (base auto-detected so
    ``mem:0x4800`` and ``mem:18432`` agree); every other kind keeps its
    value as a string.
    """
    kind, sep, value = text.partition(":")
    if not sep or not kind or not value:
        raise ProtocolError(
            "bad-request", f"location must look like mem:0x4800, got {text!r}"
        )
    if kind in ("mem", "nic"):
        try:
            return (kind, int(value, 0))
        except ValueError as error:
            raise ProtocolError(
                "bad-request", f"bad {kind} location {text!r}: {error}"
            ) from error
    return (kind, value)


# The wire carriers are plain __slots__ classes, not dataclasses: they
# are constructed once per request on the hot path, and the slotted
# hand-written __init__ is measurably cheaper than (frozen) dataclass
# construction at this call rate.


class CandidateSpec:
    """One candidate tag as it travels on the wire."""

    __slots__ = ("tag_type", "index", "copies")

    def __init__(
        self, tag_type: str, index: int, copies: Optional[int] = None
    ):
        self.tag_type = tag_type
        self.index = index
        #: authoritative copy count; ``None`` = use the shard's live count
        self.copies = copies

    @property
    def name(self) -> str:
        return f"{self.tag_type}:{self.index}"

    def __repr__(self) -> str:
        return (
            f"CandidateSpec({self.tag_type!r}, {self.index!r}, "
            f"copies={self.copies!r})"
        )


class DecideRequest:
    """One indirect-flow decision request (the hot op)."""

    __slots__ = (
        "id", "destination", "free_slots", "candidates", "pollution",
        "kind", "tick", "context",
    )

    op = "decide"

    def __init__(
        self,
        id: object,
        destination: Location,
        free_slots: int,
        candidates: Tuple[CandidateSpec, ...],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ):
        self.id = id
        self.destination = destination
        self.free_slots = free_slots
        self.candidates = candidates
        #: authoritative pollution; ``None`` = use the shard's live value
        self.pollution = pollution
        self.kind = kind
        self.tick = tick
        self.context = context


class ApplyRequest:
    """One raw flow event to run through the shard's tracker."""

    __slots__ = (
        "id", "destination", "kind", "sources", "tag", "tick", "context"
    )

    op = "apply"

    def __init__(
        self,
        id: object,
        destination: Location,
        kind: str,
        sources: Tuple[Location, ...] = (),
        tag: Optional[Tuple[str, int]] = None,
        tick: int = 0,
        context: str = "",
    ):
        self.id = id
        self.destination = destination
        self.kind = kind
        self.sources = sources
        self.tag = tag
        self.tick = tick
        self.context = context


class ControlRequest:
    """``ping`` / ``stats`` / ``checkpoint``: no routing key needed."""

    __slots__ = ("id", "op")

    def __init__(self, id: object, op: str):
        self.id = id
        self.op = op


class GossipRequest:
    """One peer's pollution estimate, riding the serve protocol.

    The cluster supervisor pumps these between live shard servers so
    every shard's *believed* global pollution (its own plus the latest
    value heard from each peer) tracks the fleet -- the multi-process
    form of :class:`repro.distributed.gossip.PollutionGossip`.  Beliefs
    are soft state: last-write-wins per peer, never checkpointed.
    """

    __slots__ = ("id", "peer", "pollution")

    op = "gossip"

    def __init__(self, id: object, peer: int, pollution: float):
        self.id = id
        self.peer = peer
        self.pollution = pollution


Request = "DecideRequest | ApplyRequest | ControlRequest"


def _require(payload: Dict[str, object], key: str) -> object:
    if key not in payload:
        raise ProtocolError("bad-request", f"missing required field {key!r}")
    return payload[key]


def _check_keys(payload: Dict[str, object], allowed: frozenset) -> None:
    unknown = payload.keys() - allowed
    if unknown:
        raise ProtocolError(
            "unknown-field", f"unknown field(s) {sorted(unknown)}"
        )


def _int_field(payload: Dict[str, object], key: str, default: int = 0) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            "bad-request", f"{key} must be an integer, got {value!r}"
        )
    return value


def _parse_candidates(raw: object) -> Tuple[CandidateSpec, ...]:
    if not isinstance(raw, list):
        raise ProtocolError(
            "bad-request",
            f"candidates must be a list, got {type(raw).__name__}",
        )
    # hot loop: exact-type checks (json.loads only produces exact types,
    # and ``type(x) is int`` rejects bools like the isinstance chain did)
    # with one slow, precise-diagnosis path for anything that fails
    specs: List[CandidateSpec] = []
    append = specs.append
    allowed = _CANDIDATE_KEYS
    for i, entry in enumerate(raw):
        if type(entry) is dict and allowed.issuperset(entry):
            tag_type = entry.get("type")
            index = entry.get("index")
            copies = entry.get("copies")
            if (
                type(tag_type) is str
                and tag_type
                and type(index) is int
                and (
                    copies is None
                    or (type(copies) is int and copies >= 0)
                )
            ):
                append(CandidateSpec(tag_type, index, copies))
                continue
        _reject_candidate(i, entry)
    return tuple(specs)


def _reject_decide(payload: Dict[str, object]) -> None:
    """Diagnose exactly why a decide request failed the fast-path checks."""
    dest = _require(payload, "dest")
    if not isinstance(dest, str):
        raise ProtocolError("bad-request", "dest must be a string")
    free_slots = _int_field(payload, "free_slots", default=-1)
    if "free_slots" not in payload:
        raise ProtocolError(
            "bad-request", "missing required field 'free_slots'"
        )
    if free_slots < 0:
        raise ProtocolError(
            "bad-request", f"free_slots must be >= 0, got {free_slots}"
        )
    kind = payload.get("kind", "address_dep")
    if kind not in _INDIRECT_KINDS:
        raise ProtocolError(
            "bad-request",
            f"decide kind must be one of {sorted(_INDIRECT_KINDS)}, "
            f"got {kind!r}",
        )
    pollution = payload.get("pollution")
    if pollution is not None:
        if isinstance(pollution, bool) or not isinstance(
            pollution, (int, float)
        ):
            raise ProtocolError(
                "bad-request", f"pollution must be a number, got {pollution!r}"
            )
        if pollution < 0:
            raise ProtocolError(
                "bad-request", f"pollution must be >= 0, got {pollution}"
            )
    context = payload.get("context", "")
    if not isinstance(context, str):
        raise ProtocolError("bad-request", "context must be a string")
    _int_field(payload, "tick")
    raise ProtocolError(  # pragma: no cover - fast path rejects supersets
        "bad-request", "decide request is malformed"
    )


def _reject_candidate(i: int, entry: object) -> None:
    """Diagnose exactly why a candidate failed the fast-path checks."""
    if not isinstance(entry, dict):
        raise ProtocolError("bad-request", f"candidates[{i}] is not an object")
    _check_keys(entry, _CANDIDATE_KEYS)
    tag_type = _require(entry, "type")
    if not isinstance(tag_type, str) or not tag_type:
        raise ProtocolError(
            "bad-request", f"candidates[{i}].type must be a non-empty string"
        )
    index = _require(entry, "index")
    if isinstance(index, bool) or not isinstance(index, int):
        raise ProtocolError(
            "bad-request", f"candidates[{i}].index must be an integer"
        )
    copies = entry.get("copies")
    if copies is not None and (
        isinstance(copies, bool) or not isinstance(copies, int) or copies < 0
    ):
        raise ProtocolError(
            "bad-request",
            f"candidates[{i}].copies must be a non-negative integer",
        )
    raise ProtocolError(  # pragma: no cover - fast path rejects supersets
        "bad-request", f"candidates[{i}] is malformed"
    )


def parse_request(line: "str | bytes") -> object:
    """Decode and validate one request line.

    Raises :class:`ProtocolError` with a structured code on any schema
    violation; the server turns that into an error *response*, never a
    dropped connection.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "frame-too-large",
                f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-json", f"not UTF-8: {error}") from error
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-json", f"invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    op = payload.get("op")
    if op is None:
        raise ProtocolError("bad-request", "missing required field 'op'")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r}; expected one of {REQUEST_OPS}"
        )
    request_id = payload.get("id")
    if op in ("ping", "stats", "checkpoint"):
        _check_keys(payload, _BARE_KEYS)
        return ControlRequest(id=request_id, op=op)
    if op == "gossip":
        _check_keys(payload, _GOSSIP_KEYS)
        peer = _require(payload, "peer")
        if isinstance(peer, bool) or not isinstance(peer, int) or peer < 0:
            raise ProtocolError(
                "bad-request",
                f"peer must be a non-negative integer, got {peer!r}",
            )
        pollution = _require(payload, "pollution")
        if (
            isinstance(pollution, bool)
            or not isinstance(pollution, (int, float))
            or pollution < 0
        ):
            raise ProtocolError(
                "bad-request",
                f"pollution must be a non-negative number, got {pollution!r}",
            )
        return GossipRequest(
            id=request_id, peer=peer, pollution=float(pollution)
        )
    if op == "decide":
        # fast path mirrors _parse_candidates: exact-type checks inline,
        # with one slow path that diagnoses precisely what went wrong
        if not _DECIDE_KEYS.issuperset(payload):
            _check_keys(payload, _DECIDE_KEYS)
        get = payload.get
        dest = get("dest")
        free_slots = get("free_slots")
        kind = get("kind", "address_dep")
        pollution = get("pollution")
        tick = get("tick", 0)
        context = get("context", "")
        if (
            type(dest) is str
            and type(free_slots) is int
            and free_slots >= 0
            and kind in _INDIRECT_KINDS
            and type(tick) is int
            and type(context) is str
            and (
                pollution is None
                or (type(pollution) is float and pollution >= 0)
                or (type(pollution) is int and pollution >= 0)
            )
        ):
            return DecideRequest(
                id=request_id,
                destination=parse_location(dest),
                free_slots=free_slots,
                candidates=_parse_candidates(_require(payload, "candidates")),
                pollution=None if pollution is None else float(pollution),
                kind=kind,
                tick=tick,
                context=context,
            )
        _reject_decide(payload)
    # op == "apply"
    _check_keys(payload, _APPLY_KEYS)
    dest = _require(payload, "dest")
    if not isinstance(dest, str):
        raise ProtocolError("bad-request", "dest must be a string")
    kind = _require(payload, "kind")
    try:
        FlowKind(kind)
    except ValueError as error:
        raise ProtocolError(
            "bad-request", f"unknown flow kind {kind!r}"
        ) from error
    raw_sources = payload.get("sources", [])
    if not isinstance(raw_sources, list):
        raise ProtocolError("bad-request", "sources must be a list")
    sources = tuple(
        parse_location(s)
        if isinstance(s, str)
        else _reject_source(s)
        for s in raw_sources
    )
    raw_tag = payload.get("tag")
    tag: Optional[Tuple[str, int]] = None
    if raw_tag is not None:
        if (
            not isinstance(raw_tag, list)
            or len(raw_tag) != 2
            or not isinstance(raw_tag[0], str)
            or isinstance(raw_tag[1], bool)
            or not isinstance(raw_tag[1], int)
        ):
            raise ProtocolError(
                "bad-request", 'tag must look like ["netflow", 1]'
            )
        tag = (raw_tag[0], raw_tag[1])
    context = payload.get("context", "")
    if not isinstance(context, str):
        raise ProtocolError("bad-request", "context must be a string")
    return ApplyRequest(
        id=request_id,
        destination=parse_location(dest),
        kind=str(kind),
        sources=sources,
        tag=tag,
        tick=_int_field(payload, "tick"),
        context=context,
    )


def _reject_source(value: object) -> Location:
    raise ProtocolError(
        "bad-request", f"sources entries must be location strings, got {value!r}"
    )


# -- response construction (server side) --------------------------------


def encode_message(payload: Dict[str, object]) -> bytes:
    """One response/request object -> one LF-terminated wire frame."""
    return (_dumps(payload) + "\n").encode("utf-8")


# compact separators: smaller frames and a measurably faster hot path
# (a hand-assembled f-string encoder was benchmarked here and lost to
# the stdlib C encoder; don't re-attempt without measuring)
_dumps = json.JSONEncoder(separators=(",", ":")).encode


def error_response(
    request_id: object, code: str, message: str
) -> Dict[str, object]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"id": request_id, "ok": False, "error": code, "message": message}


def ok_response(request_id: object, **fields: object) -> Dict[str, object]:
    payload: Dict[str, object] = {"id": request_id, "ok": True}
    payload.update(fields)
    return payload


# -- binary wire format (negotiated per connection) ---------------------
#
# A connection opts in by making its very first byte BINARY_MAGIC (0xB7 --
# never a legal NDJSON start, which is ``{`` or whitespace), followed by a
# version byte.  Everything after the two-byte preamble, in both
# directions, is length-prefixed frames::
#
#     u32le length | body            (length = len(body), body[0] = type)
#
# Frame types (byte layouts in docs/SERVING.md):
#
# ==========  ====  ====================================================
# HELLO       0x01  three string tables (dests, tag types, contexts)
# HELLO_ACK   0x02  version, shard count, binary-only flag
# STR_ADD     0x03  append entries to one string table mid-connection
# DECIDE      0x10  struct-packed decide columns against the tables
# DECIDE_RESP 0x11  struct-packed verdict + marginal columns, rank order
# ERROR       0x12  structured error (u8 index into ERROR_CODES)
# JSON        0x30  one NDJSON request object, riding the binary framer
# JSON_RESP   0x31  one NDJSON response object
# ==========  ====  ====================================================
#
# String tables are client-owned, append-only, and per-connection: HELLO
# seeds them, STR_ADD extends them (no ack -- TCP ordering makes the new
# entries visible to every later frame), and a reconnect starts empty.
# DECIDE/DECIDE_RESP refer to entries by index, so the per-request cost of
# every string is one table lookup instead of a parse + intern.

BINARY_MAGIC = 0xB7
BINARY_VERSION = 1

FRAME_HELLO = 0x01
FRAME_HELLO_ACK = 0x02
FRAME_STR_ADD = 0x03
FRAME_DECIDE = 0x10
FRAME_DECIDE_RESP = 0x11
FRAME_ERROR = 0x12
FRAME_JSON = 0x30
FRAME_JSON_RESP = 0x31

#: string-table ids for STR_ADD
TABLE_DESTS = 0
TABLE_TAG_TYPES = 1
TABLE_CONTEXTS = 2

#: ``context`` table index meaning "no context" (the NDJSON default "")
CTX_NONE = 0xFFFFFFFF

#: decide ``kind`` byte <-> NDJSON kind string
KIND_NAMES = ("address_dep", "control_dep")
KIND_CODES = {"address_dep": 0, "control_dep": 1}

#: u8 code carried by ERROR frames = index into :data:`ERROR_CODES`
ERROR_INDEX = {code: i for i, code in enumerate(ERROR_CODES)}

#: DECIDE flags
DECIDE_FLAG_POLLUTION = 0x01
#: DECIDE_RESP per-row flags
ROW_FLAG_PROPAGATE = 0x01
ROW_FLAG_MARGINALS = 0x02
#: ERROR flags
ERROR_FLAG_ID = 0x01

S_LEN = struct.Struct("<I")
S_PREAMBLE = struct.Struct("<BB")
S_HELLO_ACK = struct.Struct("<BBHB")
S_U16 = struct.Struct("<H")
S_U32 = struct.Struct("<I")
S_F64 = struct.Struct("<d")
#: DECIDE head after the type byte (``x`` pads over it on unpack):
#: id u64 | dest u32 | kind u8 | tick u32 | ctx u32 | free u16 | flags u8
S_DECIDE_HEAD = struct.Struct("<xQIBIIHB")
#: one DECIDE candidate: type u16 | tag index u32 | copies i32 (-1 = live)
S_CAND = struct.Struct("<HIi")
#: DECIDE_RESP prefix incl. the length word, packed in one call:
#: len u32 | type u8 | id u64 | shard u16 | nrows u16
S_RESP_PREFIX = struct.Struct("<IBQHH")
#: DECIDE_RESP head after the type byte: id u64 | shard u16 | nrows u16
S_RESP_HEAD = struct.Struct("<xQHH")
#: one DECIDE_RESP row:
#: type u16 | tag index u32 | copies u32 | flags u8 | marginal/under/over f64
S_RESP_ROW = struct.Struct("<HIIBddd")
#: ERROR head after the type byte: flags u8 | id u64 | code u8 | msg-len u16
S_ERROR_HEAD = struct.Struct("<xBQBH")

#: :data:`S_RESP_ROW` as a packed little-endian NumPy record: the fused
#: decision kernel fills whole response columns and emits every row of a
#: queue drain with one ``tobytes`` instead of a struct pack per row
RESP_ROW_DTYPE = np.dtype(
    {
        "names": ["type", "index", "copies", "flags", "marginal", "under",
                  "over"],
        "formats": ["<u2", "<u4", "<u4", "u1", "<f8", "<f8", "<f8"],
        "offsets": [0, 2, 6, 10, 11, 19, 27],
        "itemsize": S_RESP_ROW.size,
    }
)
assert RESP_ROW_DTYPE.itemsize == S_RESP_ROW.size

#: hoisted multi-candidate structs: one ``unpack_from`` for a DECIDE
#: frame's whole candidate block instead of one call per candidate
_CAND_BLOCKS: Dict[int, struct.Struct] = {}
_CAND_BLOCK_CACHE_MAX = 512


def cand_block_struct(count: int) -> struct.Struct:
    """The packed struct for ``count`` consecutive DECIDE candidates."""
    block = _CAND_BLOCKS.get(count)
    if block is None:
        block = struct.Struct("<" + "HIi" * count)
        if len(_CAND_BLOCKS) < _CAND_BLOCK_CACHE_MAX:
            _CAND_BLOCKS[count] = block
    return block


def encode_preamble(version: int = BINARY_VERSION) -> bytes:
    return S_PREAMBLE.pack(BINARY_MAGIC, version)


def _encode_string_table(entries: Sequence[str]) -> bytes:
    parts = [S_U32.pack(len(entries))]
    for entry in entries:
        raw = entry.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ProtocolError(
                "bad-frame", f"string-table entry of {len(raw)} bytes"
            )
        parts.append(S_U16.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_string_table(
    view: bytes, pos: int
) -> Tuple[List[str], int]:
    """Decode one table at ``pos``; returns ``(entries, new_pos)``."""
    end = len(view)
    if pos + 4 > end:
        raise ProtocolError("bad-frame", "truncated string table")
    (count,) = S_U32.unpack_from(view, pos)
    pos += 4
    entries: List[str] = []
    append = entries.append
    for _ in range(count):
        if pos + 2 > end:
            raise ProtocolError("bad-frame", "truncated string table")
        (length,) = S_U16.unpack_from(view, pos)
        pos += 2
        if pos + length > end:
            raise ProtocolError("bad-frame", "truncated string table")
        try:
            append(bytes(view[pos:pos + length]).decode("utf-8"))
        except UnicodeDecodeError as error:
            raise ProtocolError(
                "bad-frame", f"string-table entry is not UTF-8: {error}"
            ) from error
        pos += length
    return entries, pos


def _with_length(body: bytes) -> bytes:
    return S_LEN.pack(len(body)) + body


def encode_hello(
    dests: Sequence[str] = (),
    tag_types: Sequence[str] = (),
    contexts: Sequence[str] = (),
) -> bytes:
    body = b"".join(
        (
            bytes((FRAME_HELLO,)),
            _encode_string_table(dests),
            _encode_string_table(tag_types),
            _encode_string_table(contexts),
        )
    )
    return _with_length(body)


def encode_hello_ack(shards: int, binary_only: bool = False) -> bytes:
    return _with_length(
        S_HELLO_ACK.pack(
            FRAME_HELLO_ACK, BINARY_VERSION, shards, 1 if binary_only else 0
        )
    )


def encode_str_add(table: int, entries: Sequence[str]) -> bytes:
    return _with_length(
        bytes((FRAME_STR_ADD, table)) + _encode_string_table(entries)
    )


def encode_decide_frame(
    request_id: int,
    dest_index: int,
    kind_code: int,
    tick: int,
    context_index: int,
    free_slots: int,
    pollution: Optional[float],
    candidates: Sequence[Tuple[int, int, int]],
) -> bytes:
    """Pack one DECIDE frame.

    ``candidates`` entries are ``(type_index, tag_index, copies)`` with
    ``copies = -1`` meaning "use the shard's live count" (the NDJSON
    ``copies: null``).  Raises :class:`ProtocolError` when a field falls
    outside the packed ranges; callers fall back to a JSON envelope frame.
    """
    flags = 0 if pollution is None else DECIDE_FLAG_POLLUTION
    try:
        head = struct.pack(
            "<BQIBIIHB",
            FRAME_DECIDE,
            request_id,
            dest_index,
            kind_code,
            tick,
            context_index,
            free_slots,
            flags,
        )
        parts = [head]
        if pollution is not None:
            parts.append(S_F64.pack(pollution))
        parts.append(S_U16.pack(len(candidates)))
        pack_cand = S_CAND.pack
        for type_index, tag_index, copies in candidates:
            parts.append(pack_cand(type_index, tag_index, copies))
    except struct.error as error:
        raise ProtocolError(
            "bad-frame", f"decide fields out of packed range: {error}"
        ) from error
    return _with_length(b"".join(parts))


def encode_json_frame(payload: Dict[str, object]) -> bytes:
    return _with_length(
        bytes((FRAME_JSON,)) + _dumps(payload).encode("utf-8")
    )


def encode_json_response_frame(payload: Dict[str, object]) -> bytes:
    return _with_length(
        bytes((FRAME_JSON_RESP,)) + _dumps(payload).encode("utf-8")
    )


def encode_error_frame(
    request_id: Optional[int], code: str, message: str
) -> bytes:
    raw = message.encode("utf-8")[:0xFFFF]
    return _with_length(
        struct.pack(
            "<BBQBH",
            FRAME_ERROR,
            ERROR_FLAG_ID if request_id is not None else 0,
            request_id if request_id is not None else 0,
            ERROR_INDEX[code],
            len(raw),
        )
        + raw
    )


def decode_response_frame(
    body: bytes, tag_types: Sequence[str]
) -> Dict[str, object]:
    """One server->client frame body -> the equivalent NDJSON response dict.

    The client (and the loadgen's parity check) uses this so binary
    responses compare field-for-field against NDJSON and offline
    decisions.  ``tag_types`` is the connection's tag-type table.
    """
    frame_type = body[0]
    if frame_type == FRAME_DECIDE_RESP:
        request_id, shard, nrows = S_RESP_HEAD.unpack_from(body, 0)
        decisions: List[Dict[str, object]] = []
        propagated: List[str] = []
        pos = S_RESP_HEAD.size
        row_size = S_RESP_ROW.size
        unpack_row = S_RESP_ROW.unpack_from
        for _ in range(nrows):
            type_index, tag_index, copies, flags, marginal, under, over = (
                unpack_row(body, pos)
            )
            pos += row_size
            tag_type = tag_types[type_index]
            name = f"{tag_type}:{tag_index}"
            propagate = bool(flags & ROW_FLAG_PROPAGATE)
            if flags & ROW_FLAG_MARGINALS:
                decisions.append(
                    {
                        "tag": name,
                        "type": tag_type,
                        "copies": copies,
                        "marginal": marginal,
                        "under": under,
                        "over": over,
                        "propagate": propagate,
                    }
                )
            else:
                decisions.append(
                    {
                        "tag": name,
                        "type": tag_type,
                        "copies": copies,
                        "marginal": None,
                        "under": None,
                        "over": None,
                        "propagate": propagate,
                    }
                )
            if propagate:
                propagated.append(name)
        return {
            "id": request_id,
            "ok": True,
            "shard": shard,
            "propagated": propagated,
            "decisions": decisions,
        }
    if frame_type == FRAME_ERROR:
        flags, request_id, code_index, msg_len = S_ERROR_HEAD.unpack_from(
            body, 0
        )
        message = body[13:13 + msg_len].decode("utf-8", "replace")
        return error_response(
            request_id if flags & ERROR_FLAG_ID else None,
            ERROR_CODES[code_index]
            if code_index < len(ERROR_CODES)
            else "internal",
            message,
        )
    if frame_type == FRAME_JSON_RESP:
        return json.loads(body[1:])
    if frame_type == FRAME_HELLO_ACK:
        _, version, shards, flags = S_HELLO_ACK.unpack(body[:5])
        return {
            "ok": True,
            "hello": True,
            "version": version,
            "shards": shards,
            "binary_only": bool(flags & 1),
        }
    raise ProtocolError("bad-frame", f"unknown frame type {frame_type:#x}")


def split_frames(data: bytes) -> Iterator[bytes]:
    """Split a byte run into frame bodies (offline decode aid).

    Raises :class:`ProtocolError` on a truncated tail, so tests catch
    framing bugs instead of silently dropping the last response.
    """
    pos = 0
    end = len(data)
    while pos < end:
        if pos + 4 > end:
            raise ProtocolError("bad-frame", "truncated length prefix")
        (length,) = S_LEN.unpack_from(data, pos)
        pos += 4
        if pos + length > end:
            raise ProtocolError("bad-frame", "truncated frame body")
        yield data[pos:pos + length]
        pos += length
