"""Canary decision-diff: watch a parameter change diverge before promoting it.

A :class:`CanaryShard` mirrors a configurable fraction of one primary
shard's decide traffic to a *shadow* tracker+policy built from a second
parameter set (a shifted tau, a different alpha, even a different
policy).  The shadow decides every mirrored request from the same
inputs the primary saw -- explicit-mode requests are pure functions of
the request, so the shadow's answer is exactly what an offline replay
under the candidate parameters would have decided -- and every
disagreement in the propagated tag set is counted as a **decision
flip** and recorded in a bounded flip trace.

Mirroring is deterministic: a request mirrors iff the seeded blake2b
hash of its formatted destination lands below the configured fraction.
Hashing the *destination* (not a coin per request) keeps the shadow's
stateful bookkeeping coherent -- a mirrored location's copy counts
evolve under the canary parameters exactly as they would if the canary
owned that slice of traffic.

The flip counters and the flip trace surface on ``/stats``,
``/metrics`` and the ``/events`` stream, which is what lets an operator
watch ``mitos-repro top`` while a canary diverges (or doesn't) under
live load before promoting the new parameters.  The offline
cross-check, :func:`offline_decision_diff`, re-decides a captured
explicit-mode decision stream under the canary parameters and must
agree flip-for-flip with a ``fraction=1.0`` canary run over the same
stream (pinned in ``tests/serve/test_canary.py``).
"""

from __future__ import annotations

import hashlib
import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.decision import decide_multi
from repro.core.params import MitosParams
from repro.serve.protocol import DecideRequest, format_location
from repro.serve.shard import DecisionShard

#: resolution of the deterministic mirror-fraction hash
_MIRROR_BUCKETS = 1 << 20

#: how many flip records a canary keeps (ring buffer)
DEFAULT_FLIP_TAIL = 256


def mirrors(destination_key: str, fraction: float, seed: int = 0) -> bool:
    """Deterministic per-destination mirror decision for ``fraction``."""
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    digest = hashlib.blake2b(
        destination_key.encode("utf-8"),
        digest_size=8,
        key=f"canary-{seed}".encode("utf-8"),
    ).digest()
    return int.from_bytes(digest, "big") % _MIRROR_BUCKETS < int(
        fraction * _MIRROR_BUCKETS
    )


class CanaryShard:
    """A shadow tracker+policy diffing decisions against one primary shard.

    Driven from the primary shard's worker task (never concurrently), so
    like :class:`~repro.serve.shard.DecisionShard` it needs no locking.
    The shadow shard keeps fully independent state: mirrored stateful
    traffic evolves its copy counts under the canary parameters.
    """

    def __init__(
        self,
        index: int,
        params: MitosParams,
        policy_factory,
        fraction: float = 1.0,
        seed: int = 0,
        flip_tail: int = DEFAULT_FLIP_TAIL,
        seq_source: Optional[Callable[[], int]] = None,
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"canary fraction must be in [0, 1], got {fraction}")
        self.index = index
        self.params = params
        self.fraction = fraction
        self.seed = seed
        self.shadow = DecisionShard(index, params=params, policy_factory=policy_factory)
        self.mirrored = 0
        self.flips = 0
        #: id of this canary's most recent flip record; ``seq_source``
        #: lets the server share one monotone counter across all shards'
        #: canaries so a single /events cursor covers every flip feed
        self.flip_seq = 0
        self._next_seq = (
            seq_source
            if seq_source is not None
            else itertools.count(1).__next__
        )
        self._flip_tail: Deque[Dict[str, object]] = deque(maxlen=max(1, flip_tail))

    # -- the mirror path ---------------------------------------------------

    def observe(
        self, request: DecideRequest, primary_propagated: Sequence[str]
    ) -> Optional[bool]:
        """Mirror one decided request; returns whether it flipped.

        ``primary_propagated`` is the tag-name list the primary shard
        answered with.  Returns ``None`` when the request was not in the
        mirrored fraction.  Never raises on shadow failure: a broken
        canary must not take down serving, so shadow errors count as
        flips with an ``error`` field instead.
        """
        key = format_location(request.destination)
        if not mirrors(key, self.fraction, self.seed):
            return None
        self.mirrored += 1
        try:
            response = self.shadow.decide(request)
            shadow_propagated = list(response["propagated"])  # type: ignore[index,arg-type]
            error = None
        except Exception as exc:  # defensive: canary must never hurt serving
            shadow_propagated = []
            error = repr(exc)
        flipped = error is not None or set(shadow_propagated) != set(
            primary_propagated
        )
        if flipped:
            self.flips += 1
            self.flip_seq = self._next_seq()
            record: Dict[str, object] = {
                "seq": self.flip_seq,
                "shard": self.index,
                "dest": key,
                "kind": request.kind,
                "tick": request.tick,
                "primary": list(primary_propagated),
                "canary": shadow_propagated,
            }
            if error is not None:
                record["error"] = error
            self._flip_tail.append(record)
        return flipped

    # -- introspection -----------------------------------------------------

    def flip_records(self, since_seq: int = 0) -> List[Dict[str, object]]:
        """Flip records newer than ``since_seq`` (stream cursors use this)."""
        return [r for r in self._flip_tail if r["seq"] > since_seq]  # type: ignore[operator]

    def stats_payload(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "fraction": self.fraction,
            "mirrored": self.mirrored,
            "flips": self.flips,
            "shadow_pollution": self.shadow.tracker.pollution(),
            "shadow_live_tags": self.shadow.tracker.counter.live_tags(),
        }


def offline_decision_diff(
    offline_decisions: Sequence[object],
    canary_params: MitosParams,
) -> Tuple[int, List[int]]:
    """Re-decide a captured decision stream under ``canary_params``.

    ``offline_decisions`` is what
    :func:`repro.serve.loadgen.collect_offline_decisions` captured: each
    entry carries the explicit-mode request (candidates with copies,
    free slots, pre-propagation pollution) and the primary outcome.
    Returns ``(flips, flipped_indices)`` -- the ground truth a
    ``fraction=1.0`` canary run over the same explicit stream must
    reproduce exactly.
    """
    from repro.core.decision import TagCandidate
    from repro.dift.tags import Tag

    flipped: List[int] = []
    for index, decision in enumerate(offline_decisions):
        request: Dict[str, object] = decision.request  # type: ignore[attr-defined]
        candidates = [
            TagCandidate(
                Tag(spec["type"], spec["index"]), spec["type"], spec["copies"]
            )
            for spec in request["candidates"]  # type: ignore[union-attr]
        ]
        details = decide_multi(
            candidates,
            request["free_slots"],  # type: ignore[arg-type]
            request["pollution"],  # type: ignore[arg-type]
            canary_params,
        )
        shadow = {
            f"{d.candidate.key.type}:{d.candidate.key.index}"
            for d in details.decisions
            if d.propagate
        }
        primary = set(decision.expected["propagated"])  # type: ignore[attr-defined,index]
        if shadow != primary:
            flipped.append(index)
    return len(flipped), flipped
