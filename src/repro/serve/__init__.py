"""Online MITOS decision service: wire protocols, server, client, loadgen.

Two wire formats share every port: NDJSON (the default, one JSON object
per line) and a length-prefixed binary frame format negotiated by a
magic-byte hello (``docs/SERVING.md``), which serves the same decisions
roughly an order of magnitude faster.

The package turns the offline replay kernel into a long-running service:
:class:`~repro.serve.server.MitosServer` shards the decision state,
answers indirect-flow decision requests through the vectorized Eq. 8
kernel, and checkpoints/restores shard state across restarts.  See
``docs/SERVING.md`` for the protocol specification and the
offline-equivalence guarantee.
"""

from repro.serve.canary import (
    CanaryShard,
    mirrors,
    offline_decision_diff,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.events import DecisionTail, build_snapshot
from repro.serve.loadgen import (
    LoadResult,
    OfflineDecision,
    append_bench_trend,
    collect_offline_decisions,
    observe_agreement,
    run_load,
    run_load_processes,
    stateful_stream,
    write_bench_report,
)
from repro.serve.protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    GossipRequest,
    ProtocolError,
    decode_response_frame,
    encode_decide_frame,
    encode_hello,
    encode_preamble,
    parse_request,
    split_frames,
)
from repro.serve.server import HashRing, MitosServer, ServerThread
from repro.serve.shard import DecisionShard
from repro.serve.top import iter_events, render, run_top

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "CanaryShard",
    "DecisionShard",
    "DecisionTail",
    "GossipRequest",
    "HashRing",
    "LoadResult",
    "MitosServer",
    "OfflineDecision",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServerThread",
    "append_bench_trend",
    "build_snapshot",
    "collect_offline_decisions",
    "decode_response_frame",
    "encode_decide_frame",
    "encode_hello",
    "encode_preamble",
    "iter_events",
    "mirrors",
    "observe_agreement",
    "offline_decision_diff",
    "parse_request",
    "render",
    "run_load",
    "run_load_processes",
    "run_top",
    "split_frames",
    "stateful_stream",
    "write_bench_report",
]
