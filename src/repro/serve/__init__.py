"""Online MITOS decision service: NDJSON protocol, server, client, loadgen.

The package turns the offline replay kernel into a long-running service:
:class:`~repro.serve.server.MitosServer` shards the decision state,
answers indirect-flow decision requests through the vectorized Eq. 8
kernel, and checkpoints/restores shard state across restarts.  See
``docs/SERVING.md`` for the protocol specification and the
offline-equivalence guarantee.
"""

from repro.serve.canary import (
    CanaryShard,
    mirrors,
    offline_decision_diff,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.events import DecisionTail, build_snapshot
from repro.serve.loadgen import (
    LoadResult,
    OfflineDecision,
    collect_offline_decisions,
    run_load,
    stateful_stream,
    write_bench_report,
)
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    GossipRequest,
    ProtocolError,
    parse_request,
)
from repro.serve.server import HashRing, MitosServer, ServerThread
from repro.serve.shard import DecisionShard
from repro.serve.top import iter_events, render, run_top

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "CanaryShard",
    "DecisionShard",
    "DecisionTail",
    "GossipRequest",
    "HashRing",
    "LoadResult",
    "MitosServer",
    "OfflineDecision",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServerThread",
    "build_snapshot",
    "collect_offline_decisions",
    "iter_events",
    "mirrors",
    "offline_decision_diff",
    "parse_request",
    "render",
    "run_load",
    "run_top",
    "stateful_stream",
    "write_bench_report",
]
