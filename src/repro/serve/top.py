"""``mitos-repro top``: a live terminal view of a serving instance.

The reference consumer of the ``/events`` admin stream
(:mod:`repro.serve.events`).  It connects to the admin port, reads
NDJSON snapshots, and renders a one-screen summary per interval:

* throughput (requests/responses per second from stats deltas),
* decide-path latency quantiles (p50/p99 estimated from the
  ``serve.decide_us`` histogram's per-interval bucket deltas -- only
  when the server runs with observability on),
* queue depths, in-flight count, overload/error/retry totals,
* total and per-shard pollution (the paper's cost signal, live),
* canary mirror/flip counts and the most recent decision flips.

Everything below the socket layer is pure: :func:`render` maps two
consecutive snapshots to a string, which is what the tests drive.  The
stream client speaks minimal HTTP/1.0 over a plain socket so the tool
needs nothing beyond the stdlib.
"""

from __future__ import annotations

import json
import socket
import sys
from typing import Dict, Iterator, List, Optional, TextIO

from repro.obs.metrics import quantile_from_buckets

#: histograms surfaced in the latency panel, in display order
_LATENCY_ROWS = (
    ("parse", "serve.parse_us"),
    ("queue", "serve.queue_wait_us"),
    ("decide", "serve.decide_us"),
    ("write", "serve.write_us"),
)

#: ANSI clear-screen + home; used only when rendering to a terminal
CLEAR = "\x1b[2J\x1b[H"


def _bucket_delta(
    current: Optional[Dict[str, float]], previous: Optional[Dict[str, float]]
) -> Optional[Dict[str, float]]:
    if current is None:
        return None
    if previous is None:
        return dict(current)
    return {
        label: count - previous.get(label, 0)
        for label, count in current.items()
    }


def _histogram_buckets(
    snapshot: Dict[str, object], name: str
) -> Optional[Dict[str, float]]:
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        return None
    histogram = metrics.get("histograms", {}).get(name)
    if not isinstance(histogram, dict):
        return None
    buckets = histogram.get("buckets")
    return buckets if isinstance(buckets, dict) else None


def _format_us(value: float) -> str:
    if value >= 1000.0:
        return f"{value / 1000.0:.2f}ms"
    return f"{value:.0f}us"


def render(
    snapshot: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
) -> str:
    """One screen of text for ``snapshot``, rated against ``previous``.

    Pure: no I/O, no clock -- rates come from the snapshots' own
    ``uptime_seconds``.  With no ``previous`` (first frame) rates fall
    back to lifetime averages.
    """
    stats: Dict[str, object] = snapshot["stats"]  # type: ignore[assignment]
    prev_stats: Dict[str, object] = (
        previous["stats"] if previous is not None else {}  # type: ignore[assignment,index]
    )
    elapsed = float(stats["uptime_seconds"]) - float(  # type: ignore[arg-type]
        prev_stats.get("uptime_seconds", 0.0)  # type: ignore[arg-type]
    )
    if elapsed <= 0:
        elapsed = float(stats["uptime_seconds"]) or 1.0  # type: ignore[arg-type]

    def rate(key: str) -> float:
        now = float(stats.get(key, 0))  # type: ignore[arg-type]
        before = float(prev_stats.get(key, 0))  # type: ignore[arg-type]
        return max(0.0, now - before) / elapsed

    lines: List[str] = []
    # liveness is the stream itself (a snapshot arrived => the process is
    # up); readiness is the stats bit, absent on pre-split servers
    if stats.get("draining"):
        state = " DRAINING"
    elif stats.get("ready") is False:
        state = " NOT-READY"
    else:
        state = ""
    lines.append(
        f"mitos-repro top -- up {float(stats['uptime_seconds']):8.1f}s  "  # type: ignore[arg-type]
        f"shards={len(stats['shards'])}{state}"  # type: ignore[arg-type]
    )
    lines.append(
        f"  req/s {rate('requests'):9.1f}   resp/s {rate('responses'):9.1f}   "
        f"inflight {stats.get('inflight', 0)}"
    )
    lines.append(
        f"  errors {stats['errors']}   overloaded {stats['overloaded']}   "
        f"retries {stats['retries']}"
    )
    depths = stats.get("queue_depths", [])
    lines.append(
        "  queues "
        + (" ".join(str(d) for d in depths) if depths else "-")  # type: ignore[union-attr]
    )
    shard_pollution = " ".join(
        f"{shard['pollution']:.3f}" for shard in stats["shards"]  # type: ignore[union-attr,index]
    )
    lines.append(
        f"  pollution {float(snapshot.get('pollution', 0.0)):.3f}"
        f"   per-shard [{shard_pollution}]"
    )

    latency_rows: List[str] = []
    for label, name in _LATENCY_ROWS:
        buckets = _bucket_delta(
            _histogram_buckets(snapshot, name),
            _histogram_buckets(previous, name) if previous else None,
        )
        if buckets is None or sum(buckets.values()) <= 0:
            continue
        p50 = quantile_from_buckets(buckets, 50)
        p99 = quantile_from_buckets(buckets, 99)
        latency_rows.append(
            f"  {label:<7} p50 {_format_us(p50):>9}   p99 {_format_us(p99):>9}"
        )
    if latency_rows:
        lines.append("latency (this interval)")
        lines.extend(latency_rows)

    canary = stats.get("canary")
    if canary:
        mirrored = sum(entry["mirrored"] for entry in canary)  # type: ignore[union-attr,index]
        flips = sum(entry["flips"] for entry in canary)  # type: ignore[union-attr,index]
        fraction = canary[0]["fraction"]  # type: ignore[index]
        lines.append(
            f"canary fraction={fraction}   mirrored {mirrored}   flips {flips}"
        )
        for record in list(snapshot.get("canary_flips", []))[-3:]:  # type: ignore[call-overload]
            lines.append(
                f"  flip #{record['seq']} shard {record['shard']} "
                f"{record['dest']}: {record['primary']} -> {record['canary']}"
            )

    control = stats.get("control")
    if control:
        updates = sum(entry["updates"] for entry in control)  # type: ignore[union-attr,index]
        scales = " ".join(
            f"{entry['tau_scale']:.3g}" for entry in control  # type: ignore[union-attr,index]
        )
        lines.append(
            f"control mode={control[0]['mode']}   updates {updates}   "  # type: ignore[index]
            f"tau_scale [{scales}]"
        )
        for record in list(snapshot.get("control_updates", []))[-3:]:  # type: ignore[call-overload]
            lines.append(
                f"  update #{record['seq']} shard {record['shard']} "
                f"{record['reason']}: tau_scale "
                f"{record['tau_scale_before']:.3g} -> "
                f"{record['tau_scale_after']:.3g}"
            )

    decisions = snapshot.get("decisions")
    if decisions is not None:
        lines.append(f"decisions in window: {len(decisions)}")  # type: ignore[arg-type]
    return "\n".join(lines)


def iter_events(
    host: str,
    port: int,
    interval: float = 1.0,
    count: int = 0,
    timeout: float = 30.0,
) -> Iterator[Dict[str, object]]:
    """Yield parsed snapshots from a server's ``/events`` stream."""
    target = f"/events?interval={interval}"
    if count:
        target += f"&count={count}"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            (
                f"GET {target} HTTP/1.0\r\n"
                f"Host: {host}\r\n"
                "Accept: application/x-ndjson\r\n\r\n"
            ).encode("latin-1")
        )
        stream = sock.makefile("rb")
        status_line = stream.readline().decode("latin-1", "replace")
        if " 200 " not in status_line:
            raise ConnectionError(
                f"/events returned {status_line.strip() or 'nothing'!r}"
            )
        while True:  # discard response headers
            header = stream.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    count: int = 0,
    out: Optional[TextIO] = None,
    clear: Optional[bool] = None,
) -> int:
    """The ``mitos-repro top`` loop; returns a process exit code."""
    out = out if out is not None else sys.stdout
    if clear is None:
        clear = out.isatty()
    previous: Optional[Dict[str, object]] = None
    try:
        for snapshot in iter_events(host, port, interval=interval, count=count):
            screen = render(snapshot, previous)
            if clear:
                out.write(CLEAR)
            out.write(screen + "\n")
            if not clear:
                out.write("\n")
            out.flush()
            previous = snapshot
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except (ConnectionError, OSError) as error:
        print(f"top: connection failed: {error}", file=sys.stderr)
        return 1
    return 0
