"""A decision shard: one tracker + policy answering decide/apply requests.

Each shard owns an independent :class:`~repro.dift.tracker.DIFTTracker`
and propagation policy (MITOS by default).  The server routes requests to
shards by consistent-hashing the destination location, so one shard sees
every request about "its" locations and its propagation bookkeeping stays
coherent without cross-shard coordination.

The decision path is the vectorized Eq. 8 kernel:
:func:`repro.vector.kernel.decide_multi_batch` ranks candidates with the
exact gather tables and runs the same sequential Algorithm 2 tail as the
scalar code, so a served decision is bit-identical to what an offline
scalar replay would decide from the same (candidates, free slots,
pollution) inputs.  The shard keeps per-type under-marginal tables and
preseeds the policy's :class:`~repro.core.decision.MarginalCache` from
them (the warm-up the vector replay engine performs), growing both
whenever a new tag type or a larger copy count shows up.

Shard state is checkpointable through :mod:`repro.replay.checkpoint`:
the tracker snapshot plus its stats, keyed by the number of requests
applied, written atomically -- a restarted server restores the files and
resumes with byte-identical policy-visible state (copy counts, pollution,
shadow lists).  The marginal cache and gather tables are pure memos of
the params and are rebuilt lazily, which cannot change any decision.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decision import MultiDecision, TagCandidate
from repro.core.params import MitosParams
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.provenance import SchedulingPolicy
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker, IfpObserver
from repro.replay.checkpoint import (
    CheckpointError,
    checkpoint_state,
    previous_checkpoint_path,
    read_checkpoint,
    restore_checkpoint_state,
    write_checkpoint,
)
from repro.serve.protocol import (
    FRAME_DECIDE_RESP,
    RESP_ROW_DTYPE,
    ROW_FLAG_MARGINALS,
    ROW_FLAG_PROPAGATE,
    S_RESP_PREFIX,
    S_RESP_ROW,
    ApplyRequest,
    DecideRequest,
    ProtocolError,
    encode_error_frame,
    error_response,
    ok_response,
)
from repro.vector.kernel import (
    DEFAULT_MAX_COPIES,
    decide_multi_batch,
    decide_rows_batch,
    seed_marginal_cache,
    under_table_stack,
)

_INDIRECT = {
    "address_dep": FlowKind.ADDRESS_DEP,
    "control_dep": FlowKind.CONTROL_DEP,
}


class DecisionShard:
    """One independently-stateful decision unit behind the server.

    Not thread-safe: the server drives each shard from exactly one
    worker task.
    """

    def __init__(
        self,
        index: int,
        params: MitosParams,
        policy_factory: Callable[[], object],
        checkpoint_path: Optional[Path] = None,
        ifp_observer: Optional[IfpObserver] = None,
        max_table_copies: int = DEFAULT_MAX_COPIES,
    ):
        self.index = index
        self.params = params
        self.policy = policy_factory()
        self.tracker = DIFTTracker(
            params=params,
            policy=self.policy,  # type: ignore[arg-type]
            ifp_observer=ifp_observer,
        )
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.ifp_observer = ifp_observer
        #: requests applied to this shard's state (decide + apply); the
        #: checkpoint event index, so restore knows where serving resumed
        self.requests_applied = 0
        self.decisions_served = 0
        self.checkpoints_written = 0
        # exact under-marginal gather tables, grown on demand
        self._max_table_copies = max(1, max_table_copies)
        self._tag_types: Tuple[str, ...] = ()
        self._table_stack: Optional[np.ndarray] = None
        #: plain-list view of the table stack for the small-batch gather
        self._table_rows: Optional[List[List[float]]] = None
        self._type_index: Optional[Dict[str, int]] = None
        #: exact per-type o_t weights aligned with ``_tag_types`` -- the
        #: fused kernel's pollution-feedback gather table
        self._o_table: Optional[np.ndarray] = None
        #: True when the policy exposes the MITOS engine (batch kernel path)
        self._mitos = hasattr(self.policy, "engine")
        #: latest pollution estimate heard from each peer shard server
        #: (gossip over the serve protocol); soft state, never
        #: checkpointed -- a restarted shard re-learns beliefs from the
        #: next gossip round
        self.peer_pollution: Dict[int, float] = {}
        #: set when restore() had to fall back to the previous checkpoint
        self.restore_fallback: Optional[CheckpointError] = None
        # interning caches for the hot decide path: the working set of
        # distinct tags is small while every request names several, so
        # frozen-dataclass construction and name formatting amortize away
        self._tags: Dict[Tuple[str, int], Tag] = {}
        self._names: Dict[Tag, str] = {}
        # over_marginal memo for the batch decide path: the submarginal is
        # a pure function of (pollution, params) and pollution values
        # recur heavily (explicit-mode clients resend them, the feedback
        # loop walks the same o_T increments); bounded in decide_rows
        self._over_memo: Dict[float, float] = {}

    def _tag_for(self, tag_type: str, index: int) -> Tag:
        key = (tag_type, index)
        tag = self._tags.get(key)
        if tag is None:
            tag = self._tags[key] = Tag(tag_type, index)
        return tag

    def _name_of(self, tag: Tag) -> str:
        name = self._names.get(tag)
        if name is None:
            name = self._names[tag] = f"{tag.type}:{tag.index}"
        return name

    # -- gossip beliefs ---------------------------------------------------

    def receive_gossip(self, peer: int, pollution: float) -> None:
        """Record one peer's latest pollution estimate (last-write-wins)."""
        self.peer_pollution[int(peer)] = float(pollution)

    def believed_pollution(self) -> float:
        """Local pollution plus the latest value heard from each peer.

        The believed *global* pollution a stateful decision uses -- the
        multi-process analogue of
        :meth:`repro.distributed.node.SubsystemNode.believed_pollution`.
        With no peer beliefs this is exactly ``tracker.pollution()``, so
        a single-server deployment is bit-for-bit unchanged.
        """
        local = self.tracker.pollution()
        if not self.peer_pollution:
            return local
        return local + sum(self.peer_pollution.values())

    # -- Eq. 8 table management -----------------------------------------

    def _rebind_params(self, params: MitosParams) -> None:
        """Drop every params-derived memo after a parameter swap.

        The analogue of :class:`repro.core.decision.MarginalCache`'s
        identity binding (``cache.params is params``): when the policy
        engine's params object changes -- a canary promotion, an adaptive
        controller -- the flat under/over lookup planes and the over memo
        are pure functions of the *old* params and must be rebuilt, which
        happens lazily on the next request.  Tags and names are
        params-independent and survive.
        """
        self.params = params
        self._tag_types = ()
        self._table_stack = None
        self._table_rows = None
        self._type_index = None
        self._o_table = None
        self._over_memo.clear()

    def _ensure_tables(self, types: set, max_copies: int) -> None:
        """Grow the gather tables to cover ``types`` up to ``max_copies``."""
        engine = getattr(self.policy, "engine", None)
        if engine is not None and engine.params is not self.params:
            self._rebind_params(engine.params)
        rebuild = False
        if not types.issubset(self._tag_types):
            types = set(types)
            types.update(self._tag_types)
            self._tag_types = tuple(sorted(types))
            rebuild = True
        while max_copies > self._max_table_copies:
            self._max_table_copies *= 2
            rebuild = True
        if rebuild or self._table_stack is None:
            self._table_stack = under_table_stack(
                self._tag_types, self._max_table_copies, self.params
            )
            self._table_rows = self._table_stack.tolist()
            self._type_index = {
                tag_type: i for i, tag_type in enumerate(self._tag_types)
            }
            self._o_table = np.array(
                [self.params.o_of(tag_type) for tag_type in self._tag_types],
                dtype=np.float64,
            )
            cache = getattr(self.policy.engine, "marginal_cache", None)
            if cache is not None:
                seed_marginal_cache(
                    cache, self._tag_types, max_copies=self._max_table_copies
                )

    def _tables_for(
        self, candidates: Sequence[TagCandidate]
    ) -> Tuple[Optional[np.ndarray], Optional[Tuple[str, ...]]]:
        """The shared gather tables covering ``candidates``, grown as needed."""
        self._ensure_tables(
            {c.tag_type for c in candidates},
            max(c.copies for c in candidates),
        )
        return self._table_stack, self._tag_types

    # -- request handlers -------------------------------------------------

    def decide(self, request: DecideRequest) -> Dict[str, object]:
        """Answer one indirect-flow decision request.

        Explicit ``copies``/``pollution`` in the request are authoritative
        (the offline-equivalence mode); missing values are filled from the
        shard's live tracker state.  Either way the granted propagations
        are applied to the shard's shadow/counters, so successive
        stateful requests observe the updated copy counts.
        """
        tracker = self.tracker
        counter = tracker.counter
        copies_of = counter._counts.get
        try:
            candidates: List[TagCandidate] = []
            tag_for = self._tag_for
            for spec in request.candidates:
                tag = tag_for(spec.tag_type, spec.index)
                copies = (
                    spec.copies
                    if spec.copies is not None
                    else copies_of((spec.tag_type, spec.index), 0)
                )
                candidates.append(TagCandidate(tag, spec.tag_type, copies))
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from error
        pollution = (
            request.pollution
            if request.pollution is not None
            else self.believed_pollution()
        )
        stats = tracker.stats
        if request.tick >= stats.ticks:
            stats.ticks = request.tick + 1
        if request.kind == "address_dep":
            stats.ifp_address += 1
        else:
            stats.ifp_control += 1
        stats.ifp_candidates += len(candidates)
        details: Optional[MultiDecision]
        if not candidates:
            details = MultiDecision(free_slots=request.free_slots)
            selected: List[Tag] = []
        elif self._mitos:
            table_stack, tag_types = self._tables_for(candidates)
            details = decide_multi_batch(
                candidates,
                request.free_slots,
                pollution,
                self.params,
                table_stack=table_stack,
                tag_types=tag_types,
                table_rows=self._table_rows,
                type_index=self._type_index,
            )
            selected = [
                d.candidate.key  # type: ignore[misc]
                for d in details.decisions
                if d.propagate
            ]
        else:
            chosen, details = self.policy.select_with_details(  # type: ignore[attr-defined]
                candidates, request.free_slots
            )
            selected = [c.key for c in chosen]  # type: ignore[misc]
        # apply the granted propagations (the "propagation state" the
        # issue's stateful mode reads back on later requests)
        add_tag = tracker.shadow.add_tag
        destination = request.destination
        for tag in selected:
            outcome = add_tag(destination, tag)
            if outcome.added:
                stats.propagation_ops += 1
            if outcome.dropped is not None:
                stats.drops += 1
                stats.propagation_ops += 1
        stats.ifp_propagated += len(selected)
        stats.ifp_blocked += len(candidates) - len(selected)
        self.requests_applied += 1
        self.decisions_served += 1
        if self.ifp_observer is not None:
            event = FlowEvent(
                kind=_INDIRECT[request.kind],
                destination=destination,
                tick=request.tick,
                context=request.context or "serve.decide",
            )
            self.ifp_observer(event, candidates, details, selected, pollution)
        self._maybe_checkpoint()
        return self._decide_response(request, candidates, details, selected)

    def _decide_response(
        self,
        request: DecideRequest,
        candidates: Sequence[TagCandidate],
        details: Optional[MultiDecision],
        selected: Sequence[Tag],
    ) -> Dict[str, object]:
        name_of = self._name_of
        selected_names = [name_of(tag) for tag in selected]
        rows: List[Dict[str, object]] = []
        if details is not None:
            for decision in details.decisions:
                candidate = decision.candidate
                rows.append(
                    {
                        "tag": name_of(candidate.key),  # type: ignore[arg-type]
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": decision.marginal,
                        "under": decision.under_marginal,
                        "over": decision.over_marginal,
                        "propagate": decision.propagate,
                    }
                )
        else:
            chosen = set(selected_names)
            for candidate in candidates:
                name = name_of(candidate.key)  # type: ignore[arg-type]
                rows.append(
                    {
                        "tag": name,
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": None,
                        "under": None,
                        "over": None,
                        "propagate": name in chosen,
                    }
                )
        return ok_response(
            request.id,
            shard=self.index,
            propagated=selected_names,
            decisions=rows,
        )

    #: below this many gathered explicit candidates a queue drain skips
    #: the columnar kernel: the fixed NumPy pass costs more than it saves
    #: on tiny drains, and taking the scalar path keeps p50 flat at low
    #: offered load (decisions are identical either way -- pinned by the
    #: batch-permutation property tests, which force this to 0)
    columnar_min_cands: int = 48

    def _fuse_rows(
        self,
        rows: Sequence[tuple],
        over_of: Callable[[float], float],
        params: MitosParams,
    ) -> Optional[tuple]:
        """Scan + fuse a drain; ``None`` means take the sequential path.

        Classifies rows, gathers every explicit candidate into flat
        columns, runs **one** :func:`decide_rows_batch` pass, and packs
        one :data:`RESP_ROW_DTYPE` response blob.  A row is batchable
        when its decision is a pure function of the request: explicit
        pollution and every candidate's copies on the wire.  Field
        ranges are enforced by the column dtypes themselves
        (``np.array`` raises ``OverflowError`` outside u16/u32), and
        nothing in here mutates request-visible state -- only pure
        memos (over memo, gather tables) -- so *any* failure bails
        wholesale to the sequential path, which produces the exact
        per-row error frames.  Returns ``(plans, flat, props, order,
        blob)`` for the apply walk.
        """
        try:
            plans: List[Optional[int]] = []
            append_plan = plans.append
            flat: List[tuple] = []
            extend_flat = flat.extend
            row_sizes_l: List[int] = []
            free_l: List[int] = []
            pol_l: List[float] = []
            over0_l: List[float] = []
            batch_cands = 0
            for row in rows:
                pollution = row[7]
                # ``not >= 0`` (not ``< 0``) so NaN pollution also routes
                # to the scalar path, whose NaN behavior is the reference
                if pollution is None or not pollution >= 0:
                    append_plan(None)
                    continue
                cands = row[8]
                ok = True
                for s in cands:
                    if s[3] is None:
                        ok = False
                        break
                if not ok:
                    append_plan(None)
                    continue
                n = len(cands)
                append_plan(n)
                if n:
                    extend_flat(cands)
                    batch_cands += n
                    row_sizes_l.append(n)
                    free_l.append(row[6])
                    # +0.0 canonicalizes a wire -0.0 so the over memo
                    # (keyed by float equality, where -0.0 == 0.0) serves
                    # the same value regardless of batching order
                    pol = pollution + 0.0
                    pol_l.append(pol)
                    over0_l.append(over_of(pol))
            if not batch_cands or batch_cands < self.columnar_min_cands:
                return None
            # -- one fused kernel pass over every explicit candidate row
            m = batch_cands
            wire_t, types_t, idx_t, cps_t = zip(*flat)
            cps = np.array(cps_t, dtype=np.uint32)
            # negatives and out-of-u32 values raise OverflowError (the
            # wholesale bail); a tag index of 0 is invalid too, and the
            # scalar path answers it with the exact bad-request error
            idx = np.array(idx_t, dtype=np.uint32)
            if not idx.all():
                return None
            type_index = self._type_index
            max_copies = (
                self._max_table_copies if self._table_rows is not None else -1
            )
            codes = None
            if type_index is not None and int(cps.max()) <= max_copies:
                try:
                    codes = np.fromiter(
                        map(type_index.__getitem__, types_t),
                        dtype=np.intp,
                        count=m,
                    )
                except KeyError:
                    codes = None
            if codes is None:
                # new tag type or larger copy count: validate the way
                # the scalar path does before growing shared tables, so
                # an invalid type can never enter them
                for s in flat:
                    if not s[1]:
                        return None
                self._ensure_tables(set(types_t), int(cps.max()))
                type_index = self._type_index
                codes = np.fromiter(
                    map(type_index.__getitem__, types_t),
                    dtype=np.intp,
                    count=m,
                )
            row_sizes = np.asarray(row_sizes_l, dtype=np.intp)
            row_ids = np.repeat(
                np.arange(row_sizes.shape[0], dtype=np.intp), row_sizes
            )
            result = decide_rows_batch(
                codes,
                cps,
                row_ids,
                row_sizes,
                free_l,
                pol_l,
                np.asarray(over0_l, dtype=np.float64),
                self._table_stack,
                self._o_table,
                over_of,
                params=params,
            )
            if result is None:  # NaN rank keys; sorted() order is the law
                return None
            order = result.order
            props_l = result.props
            resp = np.empty(m, dtype=RESP_ROW_DTYPE)
            resp["type"] = np.array(wire_t, dtype=np.uint16)[order]
            resp["index"] = idx[order]
            resp["copies"] = cps[order]
            resp["flags"] = np.where(
                result.propagated,
                ROW_FLAG_PROPAGATE | ROW_FLAG_MARGINALS,
                ROW_FLAG_MARGINALS,
            )
            resp["marginal"] = result.marginals
            resp["under"] = result.unders
            resp["over"] = result.overs
            return (
                plans,
                flat,
                props_l,
                order.tolist(),
                memoryview(resp.tobytes()),
            )
        except Exception:  # noqa: BLE001 - the bail must stay total
            return None

    def decide_rows(self, rows: Sequence[tuple]) -> None:
        """Answer a batch of binary decide rows, packing responses directly.

        The zero-copy fast path behind the binary wire format: each row is
        ``(conn, id, destination, kind_code, tick, context, free_slots,
        pollution, candidates)`` with candidates as ``(wire_type_index,
        tag_type, tag_index, copies_or_None)`` tuples, exactly as the
        server's frame parser unpacked them -- no :class:`DecideRequest` /
        :class:`TagCandidate` / response-dict round trip.  DECIDE_RESP
        frames land directly in each row's per-connection ``conn.out``
        buffer.

        This is the *fused cross-request* path: every fully-explicit row
        of the drain (pollution and all candidate copies on the wire --
        the offline-equivalence traffic shape) is gathered into flat
        NumPy columns across requests and connections, ranked and cut by
        **one** :func:`repro.vector.kernel.decide_rows_batch` call
        against the shared gather tables, and scattered back as one
        :data:`~repro.serve.protocol.RESP_ROW_DTYPE` record blob sliced
        per row.  Explicit decisions are pure functions of the request,
        so batching them cannot observe (or miss) any state; everything
        *stateful* -- live-copy resolution, ``believed_pollution``,
        ``add_tag`` propagation effects, checkpoint cadence -- is still
        applied strictly in row order by the apply walk, so post-batch
        shard state is byte-identical to the sequential path.  Rows that
        read live state (missing pollution/copies), fail validation, or
        hit the NaN rank-key corner run through the scalar per-row path
        at their exact position in the drain.

        Decisions, stats mutations, tag applications, and checkpoint
        cadence are bit-identical to :meth:`decide` and to
        :meth:`_decide_rows_scalar` (the sequential reference): same
        gather tables, same stable ranking, same left-associated
        pollution feedback, same ``over_of`` memo, and the granted
        propagations apply ``shadow.add_tag``'s exact state mutations in
        the same rank order.  Only callable for MITOS policies with no
        ``ifp_observer`` -- the server routes everything else through
        :meth:`decide`.  A row that fails validation is answered with the
        same structured ``bad-request`` error the NDJSON path produces;
        anything unexpected gets an ``internal`` error frame.  Either
        way the batch continues.
        """
        engine = getattr(self.policy, "engine", None)
        if engine is not None and engine.params is not self.params:
            self._rebind_params(engine.params)
        over_memo = self._over_memo
        if len(over_memo) > 1 << 16:
            over_memo.clear()
        params = self.params
        tau_beta = params.effective_tau * params.beta
        n_r = params.N_R
        beta_exp = params.beta - 1.0

        def over_of(p: float) -> float:
            v = over_memo.get(p)
            if v is None:
                v = over_memo[p] = tau_beta * (p / n_r) ** beta_exp
            return v

        fused = self._fuse_rows(rows, over_of, params)
        if fused is None:
            self._decide_rows_scalar(rows)
            return
        plans, flat, props_l, order_l, blob = fused
        # -- apply walk, strictly in row order: pack responses, apply the
        # granted propagations, keep stats and checkpoint cadence -- the
        # exact mutation sequence of the scalar path
        tracker = self.tracker
        stats = tracker.stats
        counter = tracker.counter
        counts = counter._counts
        type_totals = counter._type_totals
        shadow = tracker.shadow
        lists = shadow._lists
        add_tag = shadow.add_tag
        hooks_off = counter.on_birth is None and counter.on_death is None
        tags = self._tags
        tag_cls = Tag
        lru = SchedulingPolicy.LRU
        pack_prefix = S_RESP_PREFIX.pack
        shard_index = self.index
        head_size = S_RESP_PREFIX.size - 4
        row_size = S_RESP_ROW.size
        every = self.checkpoint_every
        checkpointing = every is not None and self.checkpoint_path is not None
        scalar_rows = self._decide_rows_scalar
        bi = 0
        base = 0
        off = 0
        for plan, row in zip(plans, rows):
            if plan is None:
                scalar_rows((row,))
                continue
            conn = row[0]
            rid = row[1]
            out = conn.out
            start = len(out)
            n = plan
            try:
                tick = row[4]
                if tick >= stats.ticks:
                    stats.ticks = tick + 1
                if row[3]:
                    stats.ifp_control += 1
                else:
                    stats.ifp_address += 1
                stats.ifp_candidates += n
                out += pack_prefix(
                    head_size + row_size * n,
                    FRAME_DECIDE_RESP,
                    rid,
                    shard_index,
                    n,
                )
                if n:
                    k = props_l[bi]
                    out += blob[off:off + row_size * n]
                    if k:
                        destination = row[2]
                        for j in range(base, base + k):
                            s = flat[order_l[j]]
                            tag_type = s[1]
                            key = (tag_type, s[2])
                            tag = tags.get(key)
                            if tag is None:
                                tag = tags[key] = tag_cls(tag_type, s[2])
                            plist = lists.get(destination)
                            if (
                                plist is not None
                                and tag in plist._members
                            ):
                                # re-adding a present tag changes no
                                # state except under LRU (recency
                                # refresh); the overwhelmingly common
                                # steady-state case, so skip the whole
                                # add_tag call chain
                                if plist._scheduling is lru:
                                    add_tag(destination, tag)
                            elif (
                                hooks_off
                                and plist is not None
                                and len(plist._tags) < plist._capacity
                            ):
                                # add_tag's plain-insert branch, inlined
                                if not plist._tags:
                                    shadow._tainted += 1
                                plist._tags.append(tag)
                                plist._members.add(tag)
                                counts[key] = counts.get(key, 0) + 1
                                type_totals[tag_type] = (
                                    type_totals.get(tag_type, 0) + 1
                                )
                                counter._total_entries += 1
                                counter._pollution_dirty = True
                                shadow._entries += 1
                                stats.propagation_ops += 1
                            else:
                                outcome = add_tag(destination, tag)
                                if outcome.added:
                                    stats.propagation_ops += 1
                                if outcome.dropped is not None:
                                    stats.drops += 1
                                    stats.propagation_ops += 1
                    stats.ifp_propagated += k
                    stats.ifp_blocked += n - k
                self.requests_applied += 1
                self.decisions_served += 1
                if checkpointing and self.requests_applied % every == 0:
                    self.write_checkpoint()
            except ProtocolError as error:
                del out[start:]
                out += encode_error_frame(rid, error.code, error.message)
            except Exception as error:  # noqa: BLE001 - batch must survive
                del out[start:]
                out += encode_error_frame(rid, "internal", str(error))
            if n:
                bi += 1
                base += n
                off += row_size * n

    def _decide_rows_scalar(self, rows: Sequence[tuple]) -> None:
        """The sequential per-row decide path (PR 8's loop).

        :meth:`decide_rows` routes stateful, invalid, and corner-case
        rows here at their exact drain position, and falls back wholesale
        for small drains; the batch-permutation property tests drive it
        directly as the parity reference for the fused kernel.
        """
        engine = getattr(self.policy, "engine", None)
        if engine is not None and engine.params is not self.params:
            self._rebind_params(engine.params)
        tracker = self.tracker
        stats = tracker.stats
        counter = tracker.counter
        counts = counter._counts
        copies_of = counts.get
        type_totals = counter._type_totals
        shadow = tracker.shadow
        lists = shadow._lists
        add_tag = shadow.add_tag
        # with birth/death hooks unset, a non-full non-duplicate insert is
        # a plain append plus integer bookkeeping under every scheduling
        # policy -- inline it (the same fast path vector/flows.py takes)
        # and route duplicates/evictions/hooked counters through add_tag
        hooks_off = counter.on_birth is None and counter.on_death is None
        params = self.params
        o_of = params.o_of
        over_memo = self._over_memo
        if len(over_memo) > 1 << 16:
            # explicit-mode pollution is caller-chosen: keep the memo from
            # growing without bound under adversarial value churn
            over_memo.clear()
        # bit-identical to costs.over_marginal: multiplication is
        # left-associative, so hoisting tau_eff * beta preserves the
        # exact float result of the three-factor product
        tau_beta = params.effective_tau * params.beta
        n_r = params.N_R
        beta_exp = params.beta - 1.0

        def over_of(p: float) -> float:
            v = over_memo.get(p)
            if v is None:
                v = over_memo[p] = tau_beta * (p / n_r) ** beta_exp
            return v

        tags = self._tags
        tag_cls = Tag
        lru = SchedulingPolicy.LRU
        believed = self.believed_pollution
        pack_prefix = S_RESP_PREFIX.pack
        pack_row = S_RESP_ROW.pack
        shard_index = self.index
        head_size = S_RESP_PREFIX.size - 4
        row_size = S_RESP_ROW.size
        every = self.checkpoint_every
        checkpointing = every is not None and self.checkpoint_path is not None
        type_index = self._type_index
        table_rows = self._table_rows
        max_copies = self._max_table_copies if table_rows is not None else -1
        for row in rows:
            (
                conn, rid, destination, kind_code, tick, _context,
                free_slots, pollution, cands,
            ) = row
            out = conn.out
            start = len(out)
            try:
                if pollution is not None and pollution < 0:
                    # packed f64 can carry what NDJSON parse rejects:
                    # answer with the same structured error
                    raise ProtocolError(
                        "bad-request",
                        f"pollution must be >= 0, got {pollution}",
                    )
                n = len(cands)
                resolved = cands
                grow = False
                for spec in cands:
                    copies = spec[3]
                    if copies is None:
                        if resolved is cands:
                            resolved = [
                                (s[0], s[1], s[2],
                                 s[3] if s[3] is not None
                                 else copies_of((s[1], s[2]), 0))
                                for s in cands
                            ]
                        break
                for spec in resolved:
                    # same candidate validation (and error wording) as
                    # decide()'s eager Tag construction, hoisted before
                    # any state mutation
                    if spec[2] < 1:
                        raise ProtocolError(
                            "bad-request",
                            f"tag index must be >= 1, got {spec[2]}",
                        )
                    if not spec[1]:
                        raise ProtocolError(
                            "bad-request",
                            "tag type must be a non-empty string",
                        )
                    if spec[3] > max_copies or spec[1] not in type_index:
                        grow = True
                if grow and n:
                    self._ensure_tables(
                        {s[1] for s in resolved},
                        max(s[3] for s in resolved),
                    )
                    type_index = self._type_index
                    table_rows = self._table_rows
                    max_copies = self._max_table_copies
                if tick >= stats.ticks:
                    stats.ticks = tick + 1
                if kind_code:
                    stats.ifp_control += 1
                else:
                    stats.ifp_address += 1
                stats.ifp_candidates += n
                # +0.0 canonicalizes -0.0 (see decide_rows) so batched
                # and sequential execution share memoized over values
                pol = (
                    pollution if pollution is not None else believed()
                ) + 0.0
                over = over_of(pol)
                out += pack_prefix(
                    head_size + row_size * n,
                    FRAME_DECIDE_RESP,
                    rid,
                    shard_index,
                    n,
                )
                if n:
                    unders = [
                        table_rows[type_index[s[1]]][s[3]] for s in resolved
                    ]
                    if n == 1:
                        order = (0,)
                    elif n == 2:
                        # two candidates: the stable sort is a single
                        # comparison of the same float keys (adding over
                        # to both sides can round ties differently, so
                        # compare the sums, not the unders)
                        order = (
                            (0, 1)
                            if unders[0] + over <= unders[1] + over
                            else (1, 0)
                        )
                    else:
                        over_base = over
                        keys = [under + over_base for under in unders]
                        order = sorted(range(n), key=keys.__getitem__)
                    props = 0
                    current_pollution = pol
                    for i in order:
                        spec = resolved[i]
                        under = unders[i]
                        marginal = under + over
                        if props < free_slots and marginal <= 0:
                            out += pack_row(
                                spec[0], spec[2], spec[3], 3,
                                marginal, under, over,
                            )
                            props += 1
                            tag_type = spec[1]
                            key = (tag_type, spec[2])
                            tag = tags.get(key)
                            if tag is None:
                                tag = tags[key] = tag_cls(tag_type, spec[2])
                            plist = lists.get(destination)
                            if (
                                plist is not None
                                and tag in plist._members
                            ):
                                # re-adding a present tag changes no
                                # state except under LRU (recency
                                # refresh): skip the add_tag call chain
                                if plist._scheduling is lru:
                                    add_tag(destination, tag)
                            elif (
                                hooks_off
                                and plist is not None
                                and len(plist._tags) < plist._capacity
                            ):
                                # add_tag's plain-insert branch, inlined:
                                # no duplicate, no eviction, hooks unset
                                if not plist._tags:
                                    shadow._tainted += 1
                                plist._tags.append(tag)
                                plist._members.add(tag)
                                counts[key] = counts.get(key, 0) + 1
                                type_totals[tag_type] = (
                                    type_totals.get(tag_type, 0) + 1
                                )
                                counter._total_entries += 1
                                counter._pollution_dirty = True
                                shadow._entries += 1
                                stats.propagation_ops += 1
                            else:
                                outcome = add_tag(destination, tag)
                                if outcome.added:
                                    stats.propagation_ops += 1
                                if outcome.dropped is not None:
                                    stats.drops += 1
                                    stats.propagation_ops += 1
                            current_pollution += o_of(tag_type)
                            over = over_of(current_pollution)
                        else:
                            out += pack_row(
                                spec[0], spec[2], spec[3], 2,
                                marginal, under, over,
                            )
                    stats.ifp_propagated += props
                    stats.ifp_blocked += n - props
                self.requests_applied += 1
                self.decisions_served += 1
                if checkpointing and self.requests_applied % every == 0:
                    self.write_checkpoint()
            except ProtocolError as error:
                del out[start:]
                out += encode_error_frame(rid, error.code, error.message)
            except Exception as error:  # noqa: BLE001 - batch must survive
                del out[start:]
                out += encode_error_frame(rid, "internal", str(error))

    def apply(self, request: ApplyRequest) -> Dict[str, object]:
        """Run one raw flow event through the shard's tracker (stateful mode)."""
        try:
            event = FlowEvent(
                kind=FlowKind(request.kind),
                destination=request.destination,
                sources=request.sources,
                tick=request.tick,
                tag=Tag(*request.tag) if request.tag is not None else None,
                context=request.context,
            )
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from error
        self.tracker.process(event)
        self.requests_applied += 1
        self._maybe_checkpoint()
        return ok_response(request.id, shard=self.index, applied=request.kind)

    # -- checkpoint / restore ---------------------------------------------

    #: write a checkpoint every N applied requests (None = only on drain)
    checkpoint_every: Optional[int] = None

    def _maybe_checkpoint(self) -> None:
        every = self.checkpoint_every
        if (
            every is not None
            and self.checkpoint_path is not None
            and self.requests_applied % every == 0
        ):
            self.write_checkpoint()

    def checkpoint_payload(self) -> Dict[str, object]:
        """The full shard state as one checkpoint document."""
        return checkpoint_state(
            self.tracker, event_index=self.requests_applied
        )

    def write_checkpoint(self) -> Path:
        if self.checkpoint_path is None:
            raise ProtocolError(
                "bad-request",
                f"shard {self.index} has no checkpoint path configured",
            )
        target = write_checkpoint(
            self.checkpoint_path, self.checkpoint_payload(), keep_previous=True
        )
        self.checkpoints_written += 1
        return target

    def restore(self) -> bool:
        """Restore state from this shard's checkpoint file, if it exists.

        Returns True when a checkpoint was restored.  A truncated or
        corrupt latest checkpoint (typed :class:`CheckpointError` naming
        path and offset) falls back to the ``.prev`` file the previous
        write parked; the triggering error is kept on
        ``restore_fallback`` either way.  When both files are damaged
        the shard starts fresh and returns False -- a supervisor
        restarting a crashed shard must never die on a bad file.
        Gather tables and the marginal cache are left to rebuild
        lazily -- they are pure memos of the params and cannot change
        any decision.
        """
        if self.checkpoint_path is None:
            return False
        candidates = [self.checkpoint_path]
        previous = previous_checkpoint_path(self.checkpoint_path)
        if previous.exists():
            candidates.append(previous)
        for position, candidate in enumerate(candidates):
            if not candidate.exists():
                continue
            try:
                payload = read_checkpoint(candidate)
                restored_index = restore_checkpoint_state(
                    self.tracker, payload
                )
            except CheckpointError as error:
                if position == 0:
                    self.restore_fallback = error
                continue
            self.requests_applied = restored_index
            return True
        return False

    # -- introspection ----------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        tracker = self.tracker
        return {
            "shard": self.index,
            "requests_applied": self.requests_applied,
            "decisions_served": self.decisions_served,
            "checkpoints_written": self.checkpoints_written,
            "pollution": tracker.pollution(),
            "believed_pollution": self.believed_pollution(),
            "peer_beliefs": len(self.peer_pollution),
            "live_tags": tracker.counter.live_tags(),
            "tainted_locations": tracker.shadow.tainted_count(),
            "tracker": tracker.stats.as_dict(),
        }


def shard_error(request_id: object, error: ProtocolError) -> Dict[str, object]:
    """The error response for a request a shard refused."""
    return error_response(request_id, error.code, error.message)
