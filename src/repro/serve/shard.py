"""A decision shard: one tracker + policy answering decide/apply requests.

Each shard owns an independent :class:`~repro.dift.tracker.DIFTTracker`
and propagation policy (MITOS by default).  The server routes requests to
shards by consistent-hashing the destination location, so one shard sees
every request about "its" locations and its propagation bookkeeping stays
coherent without cross-shard coordination.

The decision path is the vectorized Eq. 8 kernel:
:func:`repro.vector.kernel.decide_multi_batch` ranks candidates with the
exact gather tables and runs the same sequential Algorithm 2 tail as the
scalar code, so a served decision is bit-identical to what an offline
scalar replay would decide from the same (candidates, free slots,
pollution) inputs.  The shard keeps per-type under-marginal tables and
preseeds the policy's :class:`~repro.core.decision.MarginalCache` from
them (the warm-up the vector replay engine performs), growing both
whenever a new tag type or a larger copy count shows up.

Shard state is checkpointable through :mod:`repro.replay.checkpoint`:
the tracker snapshot plus its stats, keyed by the number of requests
applied, written atomically -- a restarted server restores the files and
resumes with byte-identical policy-visible state (copy counts, pollution,
shadow lists).  The marginal cache and gather tables are pure memos of
the params and are rebuilt lazily, which cannot change any decision.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decision import MultiDecision, TagCandidate
from repro.core.params import MitosParams
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker, IfpObserver
from repro.replay.checkpoint import (
    CheckpointError,
    checkpoint_state,
    previous_checkpoint_path,
    read_checkpoint,
    restore_checkpoint_state,
    write_checkpoint,
)
from repro.serve.protocol import (
    ApplyRequest,
    DecideRequest,
    ProtocolError,
    error_response,
    ok_response,
)
from repro.vector.kernel import (
    DEFAULT_MAX_COPIES,
    decide_multi_batch,
    seed_marginal_cache,
    under_table_stack,
)

_INDIRECT = {
    "address_dep": FlowKind.ADDRESS_DEP,
    "control_dep": FlowKind.CONTROL_DEP,
}


class DecisionShard:
    """One independently-stateful decision unit behind the server.

    Not thread-safe: the server drives each shard from exactly one
    worker task.
    """

    def __init__(
        self,
        index: int,
        params: MitosParams,
        policy_factory: Callable[[], object],
        checkpoint_path: Optional[Path] = None,
        ifp_observer: Optional[IfpObserver] = None,
        max_table_copies: int = DEFAULT_MAX_COPIES,
    ):
        self.index = index
        self.params = params
        self.policy = policy_factory()
        self.tracker = DIFTTracker(
            params=params,
            policy=self.policy,  # type: ignore[arg-type]
            ifp_observer=ifp_observer,
        )
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.ifp_observer = ifp_observer
        #: requests applied to this shard's state (decide + apply); the
        #: checkpoint event index, so restore knows where serving resumed
        self.requests_applied = 0
        self.decisions_served = 0
        self.checkpoints_written = 0
        # exact under-marginal gather tables, grown on demand
        self._max_table_copies = max(1, max_table_copies)
        self._tag_types: Tuple[str, ...] = ()
        self._table_stack: Optional[np.ndarray] = None
        #: plain-list view of the table stack for the small-batch gather
        self._table_rows: Optional[List[List[float]]] = None
        self._type_index: Optional[Dict[str, int]] = None
        #: True when the policy exposes the MITOS engine (batch kernel path)
        self._mitos = hasattr(self.policy, "engine")
        #: latest pollution estimate heard from each peer shard server
        #: (gossip over the serve protocol); soft state, never
        #: checkpointed -- a restarted shard re-learns beliefs from the
        #: next gossip round
        self.peer_pollution: Dict[int, float] = {}
        #: set when restore() had to fall back to the previous checkpoint
        self.restore_fallback: Optional[CheckpointError] = None
        # interning caches for the hot decide path: the working set of
        # distinct tags is small while every request names several, so
        # frozen-dataclass construction and name formatting amortize away
        self._tags: Dict[Tuple[str, int], Tag] = {}
        self._names: Dict[Tag, str] = {}

    def _tag_for(self, tag_type: str, index: int) -> Tag:
        key = (tag_type, index)
        tag = self._tags.get(key)
        if tag is None:
            tag = self._tags[key] = Tag(tag_type, index)
        return tag

    def _name_of(self, tag: Tag) -> str:
        name = self._names.get(tag)
        if name is None:
            name = self._names[tag] = f"{tag.type}:{tag.index}"
        return name

    # -- gossip beliefs ---------------------------------------------------

    def receive_gossip(self, peer: int, pollution: float) -> None:
        """Record one peer's latest pollution estimate (last-write-wins)."""
        self.peer_pollution[int(peer)] = float(pollution)

    def believed_pollution(self) -> float:
        """Local pollution plus the latest value heard from each peer.

        The believed *global* pollution a stateful decision uses -- the
        multi-process analogue of
        :meth:`repro.distributed.node.SubsystemNode.believed_pollution`.
        With no peer beliefs this is exactly ``tracker.pollution()``, so
        a single-server deployment is bit-for-bit unchanged.
        """
        local = self.tracker.pollution()
        if not self.peer_pollution:
            return local
        return local + sum(self.peer_pollution.values())

    # -- Eq. 8 table management -----------------------------------------

    def _tables_for(
        self, candidates: Sequence[TagCandidate]
    ) -> Tuple[Optional[np.ndarray], Optional[Tuple[str, ...]]]:
        """The shared gather tables covering ``candidates``, grown as needed."""
        types = {c.tag_type for c in candidates}
        max_copies = max(c.copies for c in candidates)
        rebuild = False
        if not types.issubset(self._tag_types):
            types.update(self._tag_types)
            self._tag_types = tuple(sorted(types))
            rebuild = True
        while max_copies > self._max_table_copies:
            self._max_table_copies *= 2
            rebuild = True
        if rebuild or self._table_stack is None:
            self._table_stack = under_table_stack(
                self._tag_types, self._max_table_copies, self.params
            )
            self._table_rows = self._table_stack.tolist()
            self._type_index = {
                tag_type: i for i, tag_type in enumerate(self._tag_types)
            }
            cache = getattr(self.policy.engine, "marginal_cache", None)
            if cache is not None:
                seed_marginal_cache(
                    cache, self._tag_types, max_copies=self._max_table_copies
                )
        return self._table_stack, self._tag_types

    # -- request handlers -------------------------------------------------

    def decide(self, request: DecideRequest) -> Dict[str, object]:
        """Answer one indirect-flow decision request.

        Explicit ``copies``/``pollution`` in the request are authoritative
        (the offline-equivalence mode); missing values are filled from the
        shard's live tracker state.  Either way the granted propagations
        are applied to the shard's shadow/counters, so successive
        stateful requests observe the updated copy counts.
        """
        tracker = self.tracker
        counter = tracker.counter
        copies_of = counter._counts.get
        try:
            candidates: List[TagCandidate] = []
            tag_for = self._tag_for
            for spec in request.candidates:
                tag = tag_for(spec.tag_type, spec.index)
                copies = (
                    spec.copies
                    if spec.copies is not None
                    else copies_of((spec.tag_type, spec.index), 0)
                )
                candidates.append(TagCandidate(tag, spec.tag_type, copies))
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from error
        pollution = (
            request.pollution
            if request.pollution is not None
            else self.believed_pollution()
        )
        stats = tracker.stats
        if request.tick >= stats.ticks:
            stats.ticks = request.tick + 1
        if request.kind == "address_dep":
            stats.ifp_address += 1
        else:
            stats.ifp_control += 1
        stats.ifp_candidates += len(candidates)
        details: Optional[MultiDecision]
        if not candidates:
            details = MultiDecision(free_slots=request.free_slots)
            selected: List[Tag] = []
        elif self._mitos:
            table_stack, tag_types = self._tables_for(candidates)
            details = decide_multi_batch(
                candidates,
                request.free_slots,
                pollution,
                self.params,
                table_stack=table_stack,
                tag_types=tag_types,
                table_rows=self._table_rows,
                type_index=self._type_index,
            )
            selected = [
                d.candidate.key  # type: ignore[misc]
                for d in details.decisions
                if d.propagate
            ]
        else:
            chosen, details = self.policy.select_with_details(  # type: ignore[attr-defined]
                candidates, request.free_slots
            )
            selected = [c.key for c in chosen]  # type: ignore[misc]
        # apply the granted propagations (the "propagation state" the
        # issue's stateful mode reads back on later requests)
        add_tag = tracker.shadow.add_tag
        destination = request.destination
        for tag in selected:
            outcome = add_tag(destination, tag)
            if outcome.added:
                stats.propagation_ops += 1
            if outcome.dropped is not None:
                stats.drops += 1
                stats.propagation_ops += 1
        stats.ifp_propagated += len(selected)
        stats.ifp_blocked += len(candidates) - len(selected)
        self.requests_applied += 1
        self.decisions_served += 1
        if self.ifp_observer is not None:
            event = FlowEvent(
                kind=_INDIRECT[request.kind],
                destination=destination,
                tick=request.tick,
                context=request.context or "serve.decide",
            )
            self.ifp_observer(event, candidates, details, selected, pollution)
        self._maybe_checkpoint()
        return self._decide_response(request, candidates, details, selected)

    def _decide_response(
        self,
        request: DecideRequest,
        candidates: Sequence[TagCandidate],
        details: Optional[MultiDecision],
        selected: Sequence[Tag],
    ) -> Dict[str, object]:
        name_of = self._name_of
        selected_names = [name_of(tag) for tag in selected]
        rows: List[Dict[str, object]] = []
        if details is not None:
            for decision in details.decisions:
                candidate = decision.candidate
                rows.append(
                    {
                        "tag": name_of(candidate.key),  # type: ignore[arg-type]
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": decision.marginal,
                        "under": decision.under_marginal,
                        "over": decision.over_marginal,
                        "propagate": decision.propagate,
                    }
                )
        else:
            chosen = set(selected_names)
            for candidate in candidates:
                name = name_of(candidate.key)  # type: ignore[arg-type]
                rows.append(
                    {
                        "tag": name,
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": None,
                        "under": None,
                        "over": None,
                        "propagate": name in chosen,
                    }
                )
        return ok_response(
            request.id,
            shard=self.index,
            propagated=selected_names,
            decisions=rows,
        )

    def apply(self, request: ApplyRequest) -> Dict[str, object]:
        """Run one raw flow event through the shard's tracker (stateful mode)."""
        try:
            event = FlowEvent(
                kind=FlowKind(request.kind),
                destination=request.destination,
                sources=request.sources,
                tick=request.tick,
                tag=Tag(*request.tag) if request.tag is not None else None,
                context=request.context,
            )
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from error
        self.tracker.process(event)
        self.requests_applied += 1
        self._maybe_checkpoint()
        return ok_response(request.id, shard=self.index, applied=request.kind)

    # -- checkpoint / restore ---------------------------------------------

    #: write a checkpoint every N applied requests (None = only on drain)
    checkpoint_every: Optional[int] = None

    def _maybe_checkpoint(self) -> None:
        every = self.checkpoint_every
        if (
            every is not None
            and self.checkpoint_path is not None
            and self.requests_applied % every == 0
        ):
            self.write_checkpoint()

    def checkpoint_payload(self) -> Dict[str, object]:
        """The full shard state as one checkpoint document."""
        return checkpoint_state(
            self.tracker, event_index=self.requests_applied
        )

    def write_checkpoint(self) -> Path:
        if self.checkpoint_path is None:
            raise ProtocolError(
                "bad-request",
                f"shard {self.index} has no checkpoint path configured",
            )
        target = write_checkpoint(
            self.checkpoint_path, self.checkpoint_payload(), keep_previous=True
        )
        self.checkpoints_written += 1
        return target

    def restore(self) -> bool:
        """Restore state from this shard's checkpoint file, if it exists.

        Returns True when a checkpoint was restored.  A truncated or
        corrupt latest checkpoint (typed :class:`CheckpointError` naming
        path and offset) falls back to the ``.prev`` file the previous
        write parked; the triggering error is kept on
        ``restore_fallback`` either way.  When both files are damaged
        the shard starts fresh and returns False -- a supervisor
        restarting a crashed shard must never die on a bad file.
        Gather tables and the marginal cache are left to rebuild
        lazily -- they are pure memos of the params and cannot change
        any decision.
        """
        if self.checkpoint_path is None:
            return False
        candidates = [self.checkpoint_path]
        previous = previous_checkpoint_path(self.checkpoint_path)
        if previous.exists():
            candidates.append(previous)
        for position, candidate in enumerate(candidates):
            if not candidate.exists():
                continue
            try:
                payload = read_checkpoint(candidate)
                restored_index = restore_checkpoint_state(
                    self.tracker, payload
                )
            except CheckpointError as error:
                if position == 0:
                    self.restore_fallback = error
                continue
            self.requests_applied = restored_index
            return True
        return False

    # -- introspection ----------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        tracker = self.tracker
        return {
            "shard": self.index,
            "requests_applied": self.requests_applied,
            "decisions_served": self.decisions_served,
            "checkpoints_written": self.checkpoints_written,
            "pollution": tracker.pollution(),
            "believed_pollution": self.believed_pollution(),
            "peer_beliefs": len(self.peer_pollution),
            "live_tags": tracker.counter.live_tags(),
            "tainted_locations": tracker.shadow.tainted_count(),
            "tracker": tracker.stats.as_dict(),
        }


def shard_error(request_id: object, error: ProtocolError) -> Dict[str, object]:
    """The error response for a request a shard refused."""
    return error_response(request_id, error.code, error.message)
