"""The ``/events`` streaming admin plane: live NDJSON snapshots.

``GET /events`` on the admin port streams newline-delimited JSON: one
self-contained snapshot per interval, each carrying

* the server's counters and per-shard state (``stats`` -- requests,
  responses, errors, overloaded, retries, queue depths, in-flight,
  per-shard pollution/live-tags: a pollution time series at the stream's
  resolution),
* the full metrics registry export when an observability bundle is
  attached (``metrics`` -- the consumer diffs successive snapshots for
  rates and latency quantiles),
* a bounded tail of IFP decision traces with their Eq. 8 marginals
  (``decisions`` -- only records newer than the previous snapshot, so
  the stream is a delta feed over the ring buffer),
* canary decision-flip records (``canary_flips``), when a canary is
  configured,
* ``control.param_update`` records (``control_updates``), when online
  parameter adaptation is enabled -- each atomic parameter swap a shard
  controller applied since the previous snapshot.

:class:`DecisionTail` is the ring buffer behind the decision feed: an
``ifp_observer`` the server composes with the decision-trace recorder,
so it only exists (and only costs anything) when observability is on.

``mitos-repro top`` (:mod:`repro.serve.top`) is the reference consumer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.serve.protocol import format_location

#: how many decision records the tail keeps (ring buffer)
DEFAULT_DECISION_TAIL = 128


class DecisionTail:
    """Bounded ring buffer of recent IFP decisions with Eq. 8 marginals.

    The observer rides the tracker's ``ifp_observer`` hook, so each
    record captures exactly what the decision saw: pre-propagation
    pollution, the ranked candidates with their under/over marginals,
    and the propagated set.
    """

    def __init__(self, maxlen: int = DEFAULT_DECISION_TAIL):
        self._records: Deque[Dict[str, object]] = deque(maxlen=max(1, maxlen))
        self.seq = 0

    def observer(self, event, candidates, details, selected, pollution) -> None:
        self.seq += 1
        record: Dict[str, object] = {
            "seq": self.seq,
            "tick": event.tick,
            "kind": event.kind.value,
            "dest": format_location(event.destination),
            "context": event.context,
            "pollution": pollution,
            "free_slots": details.free_slots if details is not None else None,
            "propagated": [f"{t.type}:{t.index}" for t in selected],
        }
        if details is not None:
            record["candidates"] = [
                {
                    "tag": f"{d.candidate.key.type}:{d.candidate.key.index}",
                    "copies": d.candidate.copies,
                    "marginal": d.marginal,
                    "under": d.under_marginal,
                    "over": d.over_marginal,
                    "propagate": d.propagate,
                }
                for d in details.decisions
            ]
        else:
            record["candidates"] = [
                {
                    "tag": f"{c.key.type}:{c.key.index}",
                    "copies": c.copies,
                    "marginal": None,
                    "under": None,
                    "over": None,
                    "propagate": c.key in selected,
                }
                for c in candidates
            ]
        self._records.append(record)

    def records_since(self, since_seq: int) -> List[Dict[str, object]]:
        """Records newer than ``since_seq`` (stream cursors use this)."""
        return [r for r in self._records if r["seq"] > since_seq]  # type: ignore[operator]

    def __len__(self) -> int:
        return len(self._records)


def build_snapshot(
    server,
    seq: int,
    decision_cursor: int = 0,
    flip_cursor: int = 0,
    control_cursor: int = 0,
) -> Dict[str, object]:
    """One self-contained ``/events`` snapshot for ``server``.

    ``decision_cursor`` / ``flip_cursor`` / ``control_cursor`` are the
    highest record sequence numbers the consumer has already seen; the
    snapshot carries only newer records plus updated cursors
    (``decision_seq`` / ``flip_seq`` / ``control_seq``), so
    per-connection state stays on the connection.
    """
    stats = server.stats()
    snapshot: Dict[str, object] = {
        "seq": seq,
        "uptime_seconds": stats["uptime_seconds"],
        "stats": stats,
        "pollution": sum(shard["pollution"] for shard in stats["shards"]),
    }
    obs = server.obs
    if obs is not None:
        server.refresh_gauges()
        snapshot["metrics"] = obs.metrics.as_dict()
    tail: Optional[DecisionTail] = getattr(server, "decision_tail", None)
    if tail is not None:
        snapshot["decisions"] = tail.records_since(decision_cursor)
        snapshot["decision_seq"] = tail.seq
    canaries = getattr(server, "canaries", None)
    if canaries:
        flips: List[Dict[str, object]] = []
        flip_seq = flip_cursor
        for canary in canaries:
            flips.extend(canary.flip_records(flip_cursor))
            flip_seq = max(flip_seq, canary.flip_seq)
        flips.sort(key=lambda r: r["seq"])  # type: ignore[arg-type,return-value]
        snapshot["canary_flips"] = flips
        snapshot["flip_seq"] = flip_seq
    if getattr(server, "controllers", None) is not None:
        snapshot["control_updates"] = server.control_records_since(
            control_cursor
        )
        snapshot["control_seq"] = server._control_seq
    return snapshot
