"""Blocking client for the MITOS decision service.

A thin, dependency-free library over the serve wire protocols: open a
socket, send requests, match responses by ``id``.  Matching by id
matters -- shards answer independently, so responses for one connection
are **not** guaranteed to come back in submission order once requests
hash to different shards.

Two wire formats (``wire_format=``):

* ``"ndjson"`` (default): one JSON object per line, byte-identical to
  every earlier release;
* ``"binary"``: the length-prefixed frame format from
  :mod:`repro.serve.protocol` -- the client sends the magic preamble and
  an empty ``hello`` on connect, interns destination / tag-type /
  context strings into per-connection tables (``STR_ADD`` frames ride
  immediately before the first decide frame that uses a new string),
  and packs decide requests with :func:`encode_decide_frame`.  Anything
  that does not fit the packed ranges (non-integer ids, negative
  copies, huge ticks) transparently falls back to a JSON envelope
  frame, so every payload accepted on NDJSON is accepted here with the
  exact same response.

Two usage shapes:

* one-shot convenience (``decide`` / ``apply`` / ``ping`` / ``stats``):
  send one request, block until its response arrives;
* pipelined (``submit`` then ``collect``): flood the socket with many
  requests and collect all responses -- what the closed-loop load
  generator uses to keep every shard busy.

With ``auto_reconnect=True`` a one-shot request that hits a
``ConnectionResetError``/EOF transparently reopens the socket and
resends the same frame -- same payload, **same id** (the id counter is
per-client, not per-connection), so id continuity is preserved across
the reconnect and the retried response matches exactly as if the
connection had never dropped.  Retries are bounded; only connection
loss triggers them (a timeout does not -- the server may still answer,
and re-sending a state-mutating request would double-apply it).
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.serve.protocol import (
    CTX_NONE,
    KIND_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    S_LEN,
    TABLE_CONTEXTS,
    TABLE_DESTS,
    TABLE_TAG_TYPES,
    decode_response_frame,
    encode_decide_frame,
    encode_hello,
    encode_json_frame,
    encode_message,
    encode_preamble,
    encode_str_add,
)

#: (tag_type, index) or (tag_type, index, copies)
CandidateLike = Union[Tuple[str, int], Tuple[str, int, int], Sequence[object]]

#: decide payloads with exactly these keys are eligible for binary packing;
#: anything else rides a JSON envelope so server-side validation matches
#: NDJSON field-for-field
_DECIDE_KEYS = frozenset(
    (
        "op",
        "id",
        "dest",
        "free_slots",
        "candidates",
        "kind",
        "tick",
        "context",
        "pollution",
    )
)
_CAND_KEYS = frozenset(("type", "index", "copies"))


class ServeClientError(RuntimeError):
    """The server answered with a structured error response."""

    def __init__(self, code: str, message: str, response: Dict[str, object]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.response = response


class ServeClient:
    """One TCP connection to a running decision server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        timeout: float = 30.0,
        auto_reconnect: bool = False,
        reconnect_attempts: int = 3,
        reconnect_backoff: float = 0.05,
        wire_format: str = "ndjson",
    ):
        if wire_format not in ("ndjson", "binary"):
            raise ValueError(
                f"wire_format must be 'ndjson' or 'binary', got {wire_format!r}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        #: transparently reopen + resend one-shot requests on reset/EOF
        self.auto_reconnect = auto_reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self.wire_format = wire_format
        self._binary = wire_format == "binary"
        #: successful reconnects performed over this client's lifetime
        self.reconnects = 0
        #: shard count / binary-only flag reported by the hello ack
        self.server_shards: Optional[int] = None
        self.server_binary_only = False
        # the id counter and pending map live on the client, not the
        # connection: ids stay monotone across reconnects (id continuity)
        self._ids = itertools.count(1)
        #: responses that arrived while waiting for a different id
        self._pending: Dict[object, Dict[str, object]] = {}
        self._recv_buf = b""
        # per-connection string tables (binary mode): the client owns
        # them -- interned here, announced to the server via STR_ADD
        self._tables: Tuple[List[str], List[str], List[str]] = ([], [], [])
        self._table_ids: Tuple[
            Dict[str, int], Dict[str, int], Dict[str, int]
        ] = ({}, {}, {})
        #: STR_ADD frames not yet on the wire (flushed before the next send)
        self._table_frames: List[bytes] = []
        #: strings interned since the last STR_ADD flush, per table
        self._new_entries: Tuple[List[str], List[str], List[str]] = (
            [],
            [],
            [],
        )
        self._sock = self._connect()
        if self._binary:
            self._handshake()

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # the server's asyncio transport disables Nagle already; do the
        # same here so pipelined bursts are not held back by delayed ACKs
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def reconnect(self) -> None:
        """Reopen the connection (bounded attempts with backoff).

        Already-collected pending responses stay valid; a partially
        received line is discarded (the server never splits a response
        across connections).  The id counter is untouched, so requests
        issued after the reconnect continue the same id sequence.  In
        binary mode the string tables are per-connection state: they are
        cleared and the hello handshake is redone, so later decide
        frames re-intern their strings against the fresh tables.
        """
        self.close()
        self._recv_buf = b""
        last_error: Optional[Exception] = None
        for attempt in range(max(1, self.reconnect_attempts)):
            if attempt:
                time.sleep(self.reconnect_backoff * (2 ** (attempt - 1)))
            try:
                self._sock = self._connect()
                if self._binary:
                    self._handshake()
            except OSError as error:
                last_error = error
                continue
            self.reconnects += 1
            return
        raise ConnectionError(
            f"reconnect to {self.host}:{self.port} failed after "
            f"{max(1, self.reconnect_attempts)} attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- binary wire format ------------------------------------------------

    def _handshake(self) -> None:
        """Send the magic preamble + an empty hello, consume the ack.

        Tables always start empty on a fresh connection -- the server's
        copy dies with the socket, so reconnects must not carry over
        interned ids.
        """
        self._recv_buf = b""
        for table in self._tables:
            del table[:]
        for ids in self._table_ids:
            ids.clear()
        del self._table_frames[:]
        for entries in self._new_entries:
            del entries[:]
        self._sock.sendall(encode_preamble() + encode_hello())
        ack = decode_response_frame(self._read_frame(), ())
        if not ack.get("hello"):
            raise ConnectionError(f"binary hello rejected: {ack!r}")
        self.server_shards = int(ack["shards"])  # type: ignore[arg-type]
        self.server_binary_only = bool(ack.get("binary_only"))

    def _read_frame(self) -> bytes:
        """One length-prefixed frame body off the socket (binary mode)."""
        while True:
            if len(self._recv_buf) >= 4:
                (length,) = S_LEN.unpack_from(self._recv_buf)
                if not 0 < length <= MAX_FRAME_BYTES:
                    raise ServeClientError(
                        "bad-response", f"bad frame length {length}", {}
                    )
                if len(self._recv_buf) >= 4 + length:
                    body = self._recv_buf[4:4 + length]
                    self._recv_buf = self._recv_buf[4 + length:]
                    return body
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._recv_buf += chunk

    def _intern(self, table: int, name: str) -> int:
        ids = self._table_ids[table]
        index = ids.get(name)
        if index is None:
            entries = self._tables[table]
            index = len(entries)
            entries.append(name)
            ids[name] = index
            self._new_entries[table].append(name)
        return index

    def _flush_new_entries(self) -> None:
        """Turn freshly interned strings into pending STR_ADD frames."""
        for table, entries in enumerate(self._new_entries):
            if entries:
                self._table_frames.append(encode_str_add(table, entries))
                del entries[:]

    def _encode_decide(self, payload: Dict[str, object]) -> Optional[bytes]:
        """Pack a decide payload into a binary frame, or None to fall back.

        Fallback (a JSON envelope frame) keeps the server's NDJSON
        validation in the loop for anything the packed format cannot
        express -- out-of-range ints, negative copies, stray keys --
        so error responses stay field-for-field identical to NDJSON.
        """
        request_id = payload.get("id")
        if (
            type(request_id) is not int
            or not 0 <= request_id < 1 << 64
            or not _DECIDE_KEYS.issuperset(payload)
        ):
            return None
        kind = payload.get("kind", "address_dep")
        kind_code = KIND_CODES.get(kind)  # type: ignore[arg-type]
        raw_candidates = payload.get("candidates")
        if kind_code is None or type(raw_candidates) is not list:
            return None
        pollution = payload.get("pollution")
        if pollution is not None and (
            type(pollution) not in (int, float) or pollution < 0
        ):
            # a packed f64 would happily carry bools and negatives that
            # NDJSON parse rejects; route them through the envelope
            return None
        try:
            candidates: List[Tuple[int, int, int]] = []
            for spec in raw_candidates:
                if type(spec) is not dict or not _CAND_KEYS.issuperset(spec):
                    return None
                copies = spec.get("copies")
                if copies is None:
                    copies = -1
                elif type(copies) is not int or copies < 0:
                    return None
                candidates.append(
                    (
                        self._intern(TABLE_TAG_TYPES, spec["type"]),
                        spec["index"],
                        copies,
                    )
                )
            dest_index = self._intern(TABLE_DESTS, payload["dest"])
            context = payload.get("context", "")
            if context == "":
                context_index = CTX_NONE
            else:
                context_index = self._intern(TABLE_CONTEXTS, context)
            frame = encode_decide_frame(
                request_id,
                dest_index,
                kind_code,
                payload.get("tick", 0),  # type: ignore[arg-type]
                context_index,
                payload.get("free_slots", 0),  # type: ignore[arg-type]
                payload.get("pollution"),  # type: ignore[arg-type]
                candidates,
            )
        except (ProtocolError, KeyError, TypeError):
            return None
        finally:
            # strings interned before a failure are already in the
            # client tables; announce them regardless so table state
            # never diverges from the server's
            self._flush_new_entries()
        return frame

    def _encode_request(self, payload: Dict[str, object]) -> bytes:
        """Payload -> wire bytes for this connection's format.

        Called per send attempt (not once per request): after a
        reconnect the string tables restart empty, so binary frames
        must be re-packed against the fresh tables.
        """
        if not self._binary:
            return encode_message(payload)
        frame = None
        if payload.get("op") == "decide":
            frame = self._encode_decide(payload)
        if frame is None:
            frame = encode_json_frame(payload)
        if self._table_frames:
            frame = b"".join((*self._table_frames, frame))
            del self._table_frames[:]
        return frame

    # -- response plumbing -------------------------------------------------

    def _read_response(self) -> Dict[str, object]:
        if self._binary:
            return decode_response_frame(
                self._read_frame(), self._tables[TABLE_TAG_TYPES]
            )
        while True:
            newline = self._recv_buf.find(b"\n")
            if newline >= 0:
                line = self._recv_buf[:newline]
                self._recv_buf = self._recv_buf[newline + 1 :]
                return json.loads(line)
            if len(self._recv_buf) > MAX_FRAME_BYTES:
                raise ServeClientError(
                    "bad-response", "oversized response frame", {}
                )
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._recv_buf += chunk

    def _wait_for(self, request_id: object) -> Dict[str, object]:
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._pending[response.get("id")] = response

    @staticmethod
    def _checked(response: Dict[str, object]) -> Dict[str, object]:
        if not response.get("ok", False):
            raise ServeClientError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
                response,
            )
        return response

    def _roundtrip(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One request, one response; reconnect-and-resend on loss.

        Only :class:`ConnectionError` (reset, broken pipe, server EOF)
        triggers the transparent retry, and only with
        ``auto_reconnect``; the resent frame carries the original id,
        so the response matches as if nothing happened.
        """
        payload = dict(payload)
        payload.setdefault("id", next(self._ids))
        request_id = payload["id"]
        attempts = (
            max(1, self.reconnect_attempts) + 1 if self.auto_reconnect else 1
        )
        for attempt in range(attempts):
            try:
                self._sock.sendall(self._encode_request(payload))
                return self._wait_for(request_id)
            except ConnectionError:
                if attempt + 1 >= attempts:
                    raise
                self.reconnect()
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one raw payload and return its response un-checked.

        Structured error responses come back as dictionaries (``ok:
        false``) instead of raising -- what the cluster router uses to
        distinguish retryable codes from terminal ones.
        """
        return self._roundtrip(payload)

    # -- one-shot requests -------------------------------------------------

    def decide(
        self,
        destination: str,
        free_slots: int,
        candidates: Iterable[CandidateLike],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """Submit one decision request and block for its response.

        Candidates are ``(tag_type, index)`` or ``(tag_type, index,
        copies)`` tuples; omitting copies (and ``pollution``) asks the
        server to fill them from its live shard state (stateful mode),
        providing them makes the decision a pure function of the request
        (explicit mode -- what offline-equivalence checks use).
        """
        request = self.decide_payload(
            destination,
            free_slots,
            candidates,
            pollution=pollution,
            kind=kind,
            tick=tick,
            context=context,
        )
        return self._checked(self._roundtrip(request))

    def apply(
        self,
        kind: str,
        destination: str,
        sources: Sequence[str] = (),
        tag: Optional[Tuple[str, int]] = None,
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """Feed one raw flow event into the destination's shard (stateful mode)."""
        request: Dict[str, object] = {
            "op": "apply",
            "kind": kind,
            "dest": destination,
            "sources": list(sources),
            "tick": tick,
        }
        if tag is not None:
            request["tag"] = [tag[0], tag[1]]
        if context:
            request["context"] = context
        return self._checked(self._roundtrip(request))

    def ping(self) -> Dict[str, object]:
        return self._checked(self._roundtrip({"op": "ping"}))

    def stats(self) -> Dict[str, object]:
        return self._checked(self._roundtrip({"op": "stats"}))

    def checkpoint(self) -> Dict[str, object]:
        """Ask the server to write a checkpoint for every shard now."""
        return self._checked(self._roundtrip({"op": "checkpoint"}))

    def gossip(self, peer: int, pollution: float) -> Dict[str, object]:
        """Deliver one peer's pollution estimate to this server's shards."""
        return self._checked(
            self._roundtrip(
                {"op": "gossip", "peer": peer, "pollution": pollution}
            )
        )

    # -- pipelined submission ---------------------------------------------

    @staticmethod
    def decide_payload(
        destination: str,
        free_slots: int,
        candidates: Iterable[CandidateLike],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """The wire payload for a decide request (no id assigned yet)."""
        specs: List[Dict[str, object]] = []
        for candidate in candidates:
            parts = list(candidate)
            if len(parts) not in (2, 3):
                raise ValueError(
                    "candidates must be (type, index[, copies]) tuples, "
                    f"got {candidate!r}"
                )
            spec: Dict[str, object] = {"type": parts[0], "index": parts[1]}
            if len(parts) == 3 and parts[2] is not None:
                spec["copies"] = parts[2]
            specs.append(spec)
        request: Dict[str, object] = {
            "op": "decide",
            "dest": destination,
            "free_slots": free_slots,
            "candidates": specs,
            "kind": kind,
            "tick": tick,
        }
        if pollution is not None:
            request["pollution"] = pollution
        if context:
            request["context"] = context
        return request

    @staticmethod
    def encode_with_id(
        payload: Dict[str, object], request_id: object
    ) -> bytes:
        """Pre-encode a payload with an explicit id (bulk submission)."""
        return encode_message(dict(payload, id=request_id))

    def submit(self, payload: Dict[str, object]) -> object:
        """Send a raw request payload without waiting; returns its id.

        With ``auto_reconnect`` a send that finds the connection dead
        reopens it and resends this frame (earlier in-flight requests
        on the dead connection are *not* replayed -- their ``collect``
        surfaces the loss).
        """
        payload = dict(payload)
        payload.setdefault("id", next(self._ids))
        try:
            self._sock.sendall(self._encode_request(payload))
        except ConnectionError:
            if not self.auto_reconnect:
                raise
            self.reconnect()
            # re-encode: binary string tables restarted with the socket
            self._sock.sendall(self._encode_request(payload))
        return payload["id"]

    def collect(self, request_id: object) -> Dict[str, object]:
        """Block for the response to a previously submitted request.

        A connection lost while waiting means the outstanding response
        is gone for good; with ``auto_reconnect`` the socket is
        reopened (so the client stays usable) but the loss still
        raises -- pipelined submissions are not transparently replayed.
        """
        try:
            return self._checked(self._wait_for(request_id))
        except ConnectionError:
            if self.auto_reconnect:
                self.reconnect()
            raise

    def raw_roundtrip(self, line: bytes) -> Dict[str, object]:
        """Send pre-encoded bytes and return the next response (fuzzing aid).

        No id matching and no ok-check: the caller gets whatever the
        server says, including structured protocol errors.
        """
        self._sock.sendall(line)
        return self._read_response()
