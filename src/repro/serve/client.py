"""Blocking client for the MITOS decision service.

A thin, dependency-free library over the NDJSON protocol: open a socket,
send requests, match responses by ``id``.  Matching by id matters --
shards answer independently, so responses for one connection are **not**
guaranteed to come back in submission order once requests hash to
different shards.

Two usage shapes:

* one-shot convenience (``decide`` / ``apply`` / ``ping`` / ``stats``):
  send one request, block until its response arrives;
* pipelined (``submit`` then ``collect``): flood the socket with many
  requests and collect all responses -- what the closed-loop load
  generator uses to keep every shard busy.

With ``auto_reconnect=True`` a one-shot request that hits a
``ConnectionResetError``/EOF transparently reopens the socket and
resends the same frame -- same payload, **same id** (the id counter is
per-client, not per-connection), so id continuity is preserved across
the reconnect and the retried response matches exactly as if the
connection had never dropped.  Retries are bounded; only connection
loss triggers them (a timeout does not -- the server may still answer,
and re-sending a state-mutating request would double-apply it).
"""

from __future__ import annotations

import itertools
import json
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.serve.protocol import MAX_FRAME_BYTES, encode_message

#: (tag_type, index) or (tag_type, index, copies)
CandidateLike = Union[Tuple[str, int], Tuple[str, int, int], Sequence[object]]


class ServeClientError(RuntimeError):
    """The server answered with a structured error response."""

    def __init__(self, code: str, message: str, response: Dict[str, object]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.response = response


class ServeClient:
    """One TCP connection to a running decision server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        timeout: float = 30.0,
        auto_reconnect: bool = False,
        reconnect_attempts: int = 3,
        reconnect_backoff: float = 0.05,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: transparently reopen + resend one-shot requests on reset/EOF
        self.auto_reconnect = auto_reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        #: successful reconnects performed over this client's lifetime
        self.reconnects = 0
        # the id counter and pending map live on the client, not the
        # connection: ids stay monotone across reconnects (id continuity)
        self._ids = itertools.count(1)
        #: responses that arrived while waiting for a different id
        self._pending: Dict[object, Dict[str, object]] = {}
        self._recv_buf = b""
        self._sock = self._connect()

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        # the server's asyncio transport disables Nagle already; do the
        # same here so pipelined bursts are not held back by delayed ACKs
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def reconnect(self) -> None:
        """Reopen the connection (bounded attempts with backoff).

        Already-collected pending responses stay valid; a partially
        received line is discarded (the server never splits a response
        across connections).  The id counter is untouched, so requests
        issued after the reconnect continue the same id sequence.
        """
        self.close()
        self._recv_buf = b""
        last_error: Optional[Exception] = None
        for attempt in range(max(1, self.reconnect_attempts)):
            if attempt:
                time.sleep(self.reconnect_backoff * (2 ** (attempt - 1)))
            try:
                self._sock = self._connect()
            except OSError as error:
                last_error = error
                continue
            self.reconnects += 1
            return
        raise ConnectionError(
            f"reconnect to {self.host}:{self.port} failed after "
            f"{max(1, self.reconnect_attempts)} attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _read_response(self) -> Dict[str, object]:
        while True:
            newline = self._recv_buf.find(b"\n")
            if newline >= 0:
                line = self._recv_buf[:newline]
                self._recv_buf = self._recv_buf[newline + 1 :]
                return json.loads(line)
            if len(self._recv_buf) > MAX_FRAME_BYTES:
                raise ServeClientError(
                    "bad-response", "oversized response frame", {}
                )
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._recv_buf += chunk

    def _wait_for(self, request_id: object) -> Dict[str, object]:
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._pending[response.get("id")] = response

    @staticmethod
    def _checked(response: Dict[str, object]) -> Dict[str, object]:
        if not response.get("ok", False):
            raise ServeClientError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
                response,
            )
        return response

    def _roundtrip(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One request, one response; reconnect-and-resend on loss.

        Only :class:`ConnectionError` (reset, broken pipe, server EOF)
        triggers the transparent retry, and only with
        ``auto_reconnect``; the resent frame carries the original id,
        so the response matches as if nothing happened.
        """
        payload = dict(payload)
        payload.setdefault("id", next(self._ids))
        request_id = payload["id"]
        frame = encode_message(payload)
        attempts = (
            max(1, self.reconnect_attempts) + 1 if self.auto_reconnect else 1
        )
        for attempt in range(attempts):
            try:
                self._sock.sendall(frame)
                return self._wait_for(request_id)
            except ConnectionError:
                if attempt + 1 >= attempts:
                    raise
                self.reconnect()
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one raw payload and return its response un-checked.

        Structured error responses come back as dictionaries (``ok:
        false``) instead of raising -- what the cluster router uses to
        distinguish retryable codes from terminal ones.
        """
        return self._roundtrip(payload)

    # -- one-shot requests -------------------------------------------------

    def decide(
        self,
        destination: str,
        free_slots: int,
        candidates: Iterable[CandidateLike],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """Submit one decision request and block for its response.

        Candidates are ``(tag_type, index)`` or ``(tag_type, index,
        copies)`` tuples; omitting copies (and ``pollution``) asks the
        server to fill them from its live shard state (stateful mode),
        providing them makes the decision a pure function of the request
        (explicit mode -- what offline-equivalence checks use).
        """
        request = self.decide_payload(
            destination,
            free_slots,
            candidates,
            pollution=pollution,
            kind=kind,
            tick=tick,
            context=context,
        )
        return self._checked(self._roundtrip(request))

    def apply(
        self,
        kind: str,
        destination: str,
        sources: Sequence[str] = (),
        tag: Optional[Tuple[str, int]] = None,
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """Feed one raw flow event into the destination's shard (stateful mode)."""
        request: Dict[str, object] = {
            "op": "apply",
            "kind": kind,
            "dest": destination,
            "sources": list(sources),
            "tick": tick,
        }
        if tag is not None:
            request["tag"] = [tag[0], tag[1]]
        if context:
            request["context"] = context
        return self._checked(self._roundtrip(request))

    def ping(self) -> Dict[str, object]:
        return self._checked(self._roundtrip({"op": "ping"}))

    def stats(self) -> Dict[str, object]:
        return self._checked(self._roundtrip({"op": "stats"}))

    def checkpoint(self) -> Dict[str, object]:
        """Ask the server to write a checkpoint for every shard now."""
        return self._checked(self._roundtrip({"op": "checkpoint"}))

    def gossip(self, peer: int, pollution: float) -> Dict[str, object]:
        """Deliver one peer's pollution estimate to this server's shards."""
        return self._checked(
            self._roundtrip(
                {"op": "gossip", "peer": peer, "pollution": pollution}
            )
        )

    # -- pipelined submission ---------------------------------------------

    @staticmethod
    def decide_payload(
        destination: str,
        free_slots: int,
        candidates: Iterable[CandidateLike],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """The wire payload for a decide request (no id assigned yet)."""
        specs: List[Dict[str, object]] = []
        for candidate in candidates:
            parts = list(candidate)
            if len(parts) not in (2, 3):
                raise ValueError(
                    "candidates must be (type, index[, copies]) tuples, "
                    f"got {candidate!r}"
                )
            spec: Dict[str, object] = {"type": parts[0], "index": parts[1]}
            if len(parts) == 3 and parts[2] is not None:
                spec["copies"] = parts[2]
            specs.append(spec)
        request: Dict[str, object] = {
            "op": "decide",
            "dest": destination,
            "free_slots": free_slots,
            "candidates": specs,
            "kind": kind,
            "tick": tick,
        }
        if pollution is not None:
            request["pollution"] = pollution
        if context:
            request["context"] = context
        return request

    @staticmethod
    def encode_with_id(
        payload: Dict[str, object], request_id: object
    ) -> bytes:
        """Pre-encode a payload with an explicit id (bulk submission)."""
        return encode_message(dict(payload, id=request_id))

    def submit(self, payload: Dict[str, object]) -> object:
        """Send a raw request payload without waiting; returns its id.

        With ``auto_reconnect`` a send that finds the connection dead
        reopens it and resends this frame (earlier in-flight requests
        on the dead connection are *not* replayed -- their ``collect``
        surfaces the loss).
        """
        payload = dict(payload)
        payload.setdefault("id", next(self._ids))
        frame = encode_message(payload)
        try:
            self._sock.sendall(frame)
        except ConnectionError:
            if not self.auto_reconnect:
                raise
            self.reconnect()
            self._sock.sendall(frame)
        return payload["id"]

    def collect(self, request_id: object) -> Dict[str, object]:
        """Block for the response to a previously submitted request.

        A connection lost while waiting means the outstanding response
        is gone for good; with ``auto_reconnect`` the socket is
        reopened (so the client stays usable) but the loss still
        raises -- pipelined submissions are not transparently replayed.
        """
        try:
            return self._checked(self._wait_for(request_id))
        except ConnectionError:
            if self.auto_reconnect:
                self.reconnect()
            raise

    def raw_roundtrip(self, line: bytes) -> Dict[str, object]:
        """Send pre-encoded bytes and return the next response (fuzzing aid).

        No id matching and no ok-check: the caller gets whatever the
        server says, including structured protocol errors.
        """
        self._sock.sendall(line)
        return self._read_response()
