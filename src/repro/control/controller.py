"""The adaptive controller: cadence, atomic apply, update history.

:class:`AdaptiveController` owns one estimator and one *apply* target.
Every ``options.every`` decisions it folds the window's observations
into a :class:`~repro.control.estimator.ControlSignal`, asks the
estimator for a proposal, and -- when one comes back -- applies it
**atomically**: the new frozen :class:`~repro.core.params.MitosParams`
is bound in a single reference swap.  Consumers notice lazily through
identity checks (``cache.params is not self.params`` in
:class:`~repro.core.engine.MitosEngine`, ``engine.params is not
self.params`` at the top of every
:meth:`~repro.serve.shard.DecisionShard` decide entry point), so a
decision computed mid-swap sees either the old point or the new one,
never a mix.

Each applied update is recorded as a :class:`ParamUpdate` in a bounded
ring (the ``control.param_update`` event the serve ``/events`` stream
and ``top`` render) and handed to an optional ``on_update`` callback
for plane-specific plumbing (obs counters, decision tails).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.control.estimator import ControlSignal, make_estimator
from repro.core.params import MitosParams
from repro.options import ControlOptions


def type_copy_totals(counter) -> Dict[str, int]:
    """Live copies per tag type, off a tracker's TagCopyCounter.

    O(number of live tags); run on the controller cadence, never per
    decision.
    """
    totals: Dict[str, int] = {}
    for (tag_type, _), count in counter._counts.items():
        if count:
            totals[tag_type] = totals.get(tag_type, 0) + count
    return totals


@dataclass(frozen=True)
class ParamUpdate:
    """One applied parameter swap (the ``control.param_update`` event)."""

    seq: int
    decisions: int
    mode: str
    reason: str
    pollution_fraction: float
    tau_scale_before: float
    tau_scale_after: float
    u: Dict[str, float]
    o: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "event": "control.param_update",
            "seq": self.seq,
            "decisions": self.decisions,
            "mode": self.mode,
            "reason": self.reason,
            "pollution_fraction": self.pollution_fraction,
            "tau_scale_before": self.tau_scale_before,
            "tau_scale_after": self.tau_scale_after,
            "u": dict(self.u),
            "o": dict(self.o),
        }


class AdaptiveController:
    """Re-estimates MITOS parameters on a fixed decision cadence.

    ``apply`` is the atomic swap target -- a callable taking the new
    :class:`MitosParams`; ``None`` keeps the swap local (``.params`` is
    still updated, which is what the unit tests and the bench's offline
    loop read).  The controller itself is plane-agnostic: replay feeds
    it through :class:`~repro.control.plugin.ControlPlugin`, the serve
    drain loop calls :meth:`step_tracker` between batches.
    """

    def __init__(
        self,
        params: MitosParams,
        options: ControlOptions,
        *,
        apply: Optional[Callable[[MitosParams], None]] = None,
        on_update: Optional[Callable[[ParamUpdate], None]] = None,
    ):
        self.options = options
        self.params = params
        #: the configured operating point: clamp anchor for the
        #: estimator AND the cost model the steering signal is measured
        #: in (see :meth:`base_pollution`)
        self.base_params = params
        self.estimator = make_estimator(options, params)
        self.updates: Deque[ParamUpdate] = deque(maxlen=options.history)
        self.update_seq = 0
        self._apply = apply
        self._on_update = on_update
        self._last_decisions = 0
        self._last_propagated = 0
        self._last_blocked = 0

    # -- cadence -----------------------------------------------------------

    def due(self, decisions: int) -> bool:
        """Has a full cadence window elapsed since the last step?"""
        return decisions - self._last_decisions >= self.options.every

    # -- stepping ----------------------------------------------------------

    def step(
        self,
        *,
        decisions: int,
        pollution_fraction: float,
        propagated: int = 0,
        blocked: int = 0,
        type_copies: Optional[Dict[str, int]] = None,
    ) -> Optional[ParamUpdate]:
        """One cadence-checked controller step; ``None`` = held.

        ``propagated``/``blocked`` are *cumulative* totals -- the
        controller differences them into window deltas itself.
        """
        if not self.due(decisions):
            return None
        signal = ControlSignal(
            decisions=decisions,
            pollution_fraction=pollution_fraction,
            propagated=propagated - self._last_propagated,
            blocked=blocked - self._last_blocked,
            type_copies=type_copies or {},
        )
        self._last_decisions = decisions
        self._last_propagated = propagated
        self._last_blocked = blocked
        proposal = self.estimator.propose(self.params, signal)
        if proposal is None:
            return None
        new_params, reason = proposal
        update = ParamUpdate(
            seq=self.update_seq + 1,
            decisions=decisions,
            mode=self.estimator.mode,
            reason=reason,
            pollution_fraction=pollution_fraction,
            tau_scale_before=self.params.tau_scale,
            tau_scale_after=new_params.tau_scale,
            u=dict(new_params.u),
            o=dict(new_params.o),
        )
        self.update_seq = update.seq
        self.params = new_params
        if self._apply is not None:
            self._apply(new_params)
        self.updates.append(update)
        if self._on_update is not None:
            self._on_update(update)
        return update

    def base_pollution(self, tracker) -> float:
        """A tracker's weighted pollution under the *base* o weights.

        The steering signal is always measured in the configured cost
        model, never the adapted one: if the controller measured with
        the weights it is itself raising, an o_t increase would inflate
        its own over-budget signal -- a self-reinforcing loop that never
        converges.  Adapted weights still shape *decisions* (the policy
        charges the over-taint term with them); the budget they steer
        toward stays fixed.
        """
        return tracker.counter.weighted_pollution(self.base_params.o)

    def step_tracker(
        self, tracker, *, extra_pollution: float = 0.0
    ) -> Optional[ParamUpdate]:
        """Step from a live DIFT tracker's own counters.

        ``extra_pollution`` adds to the tracker-local base-weighted
        pollution -- the serve/cluster path passes the shard's summed
        gossip beliefs so every shard controller steers by the fleet
        estimate, not just its slice.
        """
        stats = tracker.stats
        decisions = stats.ifp_address + stats.ifp_control
        if not self.due(decisions):
            return None
        observed = self.base_pollution(tracker) + extra_pollution
        return self.step(
            decisions=decisions,
            pollution_fraction=observed / self.base_params.N_R,
            propagated=stats.ifp_propagated,
            blocked=stats.ifp_blocked,
            type_copies=type_copy_totals(tracker.counter),
        )

    # -- introspection -----------------------------------------------------

    def updates_since(self, seq: int) -> List[Dict[str, object]]:
        """Update records newer than ``seq`` (the /events cursor read)."""
        return [u.as_dict() for u in self.updates if u.seq > seq]

    def stats_payload(self) -> Dict[str, object]:
        """What ``/stats`` and the bench report embed."""
        return {
            "mode": self.options.mode,
            "every": self.options.every,
            "target_pollution": self.options.target_pollution,
            "updates": self.update_seq,
            "tau_scale": self.params.tau_scale,
        }


def bind_policy(controller: AdaptiveController, tracker) -> None:
    """Point a controller's atomic swap at a live tracker + MITOS policy.

    The single-reference swap: the tracker (pollution weighting, tag
    retention) and the policy engine (Eq. 8 + MarginalCache) both move
    to the new frozen params; everything derived rebinds itself on the
    next identity check.
    """
    engine = getattr(tracker.policy, "engine", None)
    if engine is None:
        raise ValueError(
            "online parameter adaptation requires the mitos policy "
            f"(got {type(tracker.policy).__name__})"
        )

    def apply(params: MitosParams) -> None:
        tracker.params = params
        engine.params = params

    controller._apply = apply


__all__ = [
    "AdaptiveController",
    "ParamUpdate",
    "bind_policy",
    "type_copy_totals",
]
