"""Parameter estimators: the pure decision rules behind the controller.

Both estimators map a window's :class:`ControlSignal` to a proposed
:class:`~repro.core.params.MitosParams` (or ``None`` for "hold").  They
carry no clock, no I/O and no randomness beyond a seeded
``random.Random``, so a given observation sequence always produces the
same parameter trajectory -- which is what the canned-trace unit tests
pin and what makes ``bench-adapt`` reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.params import MitosParams
from repro.options import ControlOptions

#: relative hysteresis band around the pollution target inside which the
#: EWMA estimator holds (avoids flapping on a converged loop)
DEADBAND = 0.1


@dataclass(frozen=True)
class ControlSignal:
    """One cadence window's observed state.

    ``propagated``/``blocked`` are window deltas; ``pollution_fraction``
    is the weighted pollution over ``N_R`` at the window's end;
    ``type_copies`` is the live per-tag-type copy census.
    """

    decisions: int
    pollution_fraction: float
    propagated: int = 0
    blocked: int = 0
    type_copies: Mapping[str, int] = field(default_factory=dict)


def _clamp(value: float, low: float, high: float) -> float:
    return min(high, max(low, value))


class EwmaEstimator:
    """EWMA/gradient baseline: steer pollution to a budget.

    The observed pollution fraction is smoothed with an EWMA; when the
    smoothed value leaves the ``+-DEADBAND`` band around
    ``target_pollution`` the estimator takes one bounded multiplicative
    step:

    * **over budget** -- ``tau_scale *= (1 + step)`` (a global brake:
      Eq. 8's overtainting marginal scales with ``tau * tau_scale``),
      and, with ``adapt_weights``, the tag types whose weighted copy
      share exceeds the uniform share get ``u_t *= (1 - weight_step)``
      (their flows are what pollutes) and ``o_t *= (1 + weight_step)``
      (the pollution estimate prices their copies up);
    * **under budget** -- ``tau_scale /= (1 + step)``, and the types
      *below* the uniform share get ``u_t *= (1 + weight_step)`` to
      recover recall on rare flows first.

    Every quantity is clamped to the options' safety bounds relative to
    the initial parameter point.
    """

    mode = "ewma"

    def __init__(self, options: ControlOptions, params: MitosParams):
        self.options = options
        self.ewma: Optional[float] = None
        self._base_scale = params.tau_scale
        #: per-type anchors the weight clamps are relative to
        self._base_u: Dict[str, float] = dict(params.u)
        self._base_o: Dict[str, float] = dict(params.o)

    def _bounds(self, base: float) -> Tuple[float, float]:
        options = self.options
        return base * options.weight_min, base * options.weight_max

    def propose(
        self, params: MitosParams, signal: ControlSignal
    ) -> Optional[Tuple[MitosParams, str]]:
        options = self.options
        observed = signal.pollution_fraction
        self.ewma = (
            observed
            if self.ewma is None
            else options.ewma_alpha * observed
            + (1.0 - options.ewma_alpha) * self.ewma
        )
        ratio = self.ewma / options.target_pollution
        if 1.0 - DEADBAND <= ratio <= 1.0 + DEADBAND:
            return None
        over = ratio > 1.0
        scale = _clamp(
            params.tau_scale * (1.0 + options.step)
            if over
            else params.tau_scale / (1.0 + options.step),
            self._base_scale * options.scale_min,
            self._base_scale * options.scale_max,
        )
        new_u: Dict[str, float] = dict(params.u)
        new_o: Dict[str, float] = dict(params.o)
        if options.adapt_weights and signal.type_copies:
            weighted = {
                tag_type: params.o_of(tag_type) * count
                for tag_type, count in signal.type_copies.items()
            }
            total = sum(weighted.values())
            if total > 0.0:
                uniform = 1.0 / len(weighted)
                for tag_type, mass in sorted(weighted.items()):
                    share = mass / total
                    base_u = self._base_u.get(tag_type, 1.0)
                    base_o = self._base_o.get(tag_type, 1.0)
                    if over and share > uniform:
                        new_u[tag_type] = _clamp(
                            params.u_of(tag_type) * (1.0 - options.weight_step),
                            *self._bounds(base_u),
                        )
                        new_o[tag_type] = _clamp(
                            params.o_of(tag_type) * (1.0 + options.weight_step),
                            *self._bounds(base_o),
                        )
                    elif not over and share < uniform:
                        new_u[tag_type] = _clamp(
                            params.u_of(tag_type) * (1.0 + options.weight_step),
                            *self._bounds(base_u),
                        )
        changed = (
            scale != params.tau_scale
            or new_u != dict(params.u)
            or new_o != dict(params.o)
        )
        if not changed:
            return None
        proposal = params.with_updates(tau_scale=scale, u=new_u, o=new_o)
        return proposal, ("over-budget" if over else "under-budget")


class TauBandit:
    """Seeded epsilon-greedy bandit over a discretized ``tau_scale`` grid.

    The RL-flavored variant: ``grid`` arms log-spaced over
    ``[scale_min, scale_max] * tau_scale``.  At each cadence step the
    arm in force is rewarded for the window just observed --
    ``-overshoot`` past the pollution budget, minus a block-rate
    penalty while under budget (blocking with headroom is pure recall
    loss) -- then the next arm is drawn epsilon-greedily from a seeded
    ``random.Random``, so the whole trajectory is a deterministic
    function of the trace.
    """

    mode = "bandit"

    #: weight of the under-budget block-rate penalty in the reward
    BLOCK_PENALTY = 0.5

    def __init__(self, options: ControlOptions, params: MitosParams):
        self.options = options
        self._rng = random.Random(options.seed)
        low = math.log(options.scale_min)
        high = math.log(options.scale_max)
        count = options.grid
        self.arms: List[float] = [
            params.tau_scale
            * math.exp(low + (high - low) * index / (count - 1))
            for index in range(count)
        ]
        self.pulls = [0] * count
        self.mean_reward = [0.0] * count
        #: arm currently in force (starts nearest the configured scale)
        self.active = min(
            range(count),
            key=lambda i: abs(self.arms[i] - params.tau_scale),
        )

    def _reward(self, signal: ControlSignal) -> float:
        target = self.options.target_pollution
        overshoot = max(0.0, signal.pollution_fraction / target - 1.0)
        reward = -overshoot
        total = signal.propagated + signal.blocked
        if overshoot == 0.0 and total > 0:
            reward -= self.BLOCK_PENALTY * (signal.blocked / total)
        return reward

    def propose(
        self, params: MitosParams, signal: ControlSignal
    ) -> Optional[Tuple[MitosParams, str]]:
        arm = self.active
        self.pulls[arm] += 1
        self.mean_reward[arm] += (
            self._reward(signal) - self.mean_reward[arm]
        ) / self.pulls[arm]
        unplayed = [i for i, pulls in enumerate(self.pulls) if pulls == 0]
        if unplayed:
            chosen = unplayed[0]
        elif self._rng.random() < self.options.epsilon:
            chosen = self._rng.randrange(len(self.arms))
        else:
            chosen = max(
                range(len(self.arms)),
                key=lambda i: (self.mean_reward[i], -i),
            )
        self.active = chosen
        scale = self.arms[chosen]
        if scale == params.tau_scale:
            return None
        return params.with_updates(tau_scale=scale), f"bandit-arm-{chosen}"


def make_estimator(options: ControlOptions, params: MitosParams):
    """The estimator the options name (shared by every plane)."""
    if options.mode == "bandit":
        return TauBandit(options, params)
    return EwmaEstimator(options, params)


__all__ = [
    "ControlSignal",
    "EwmaEstimator",
    "TauBandit",
    "make_estimator",
    "DEADBAND",
]
