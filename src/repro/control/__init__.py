"""Online parameter adaptation: closing the loop on tau, u_t, o_t.

MITOS (the paper) fixes its cost parameters offline; production traffic
drifts.  This package is the feedback layer that re-estimates the
decision boundary from the live signals the rest of the repo already
emits -- the weighted pollution (Eq. 8's shared cost signal), the
per-tag-type copy mix, and the propagate/block outcome counts -- and
applies new :class:`~repro.core.params.MitosParams` atomically to a
running policy.  The MarginalCache and the serve shard's decision
tables are identity-bound to their params, so a swap invalidates
everything derived without any kernel surgery.

Two estimators, both deterministic given the observed trace:

* :class:`~repro.control.estimator.EwmaEstimator` -- the EWMA/gradient
  baseline: track the pollution fraction with an EWMA, take bounded
  multiplicative steps on ``tau_scale`` (and optionally on the per-type
  ``u_t``/``o_t`` weights) toward a configured pollution budget;
* :class:`~repro.control.estimator.TauBandit` -- the RL-flavored
  variant grounded in the Sahabandu et al. RL-for-DIFT-games line: a
  seeded epsilon-greedy bandit over a discretized ``tau_scale`` grid,
  rewarded per window for staying inside the budget without blocking.

See docs/CONTROL.md for the estimator math, cadence, safety bounds and
the bench methodology behind ``mitos-repro bench-adapt``.
"""

from repro.control.bench import (
    count_decision_flips,
    run_adapt_bench,
    run_arm,
    write_adapt_bench,
)
from repro.control.controller import (
    AdaptiveController,
    ParamUpdate,
    type_copy_totals,
)
from repro.control.estimator import ControlSignal, EwmaEstimator, TauBandit
from repro.control.plugin import ControlPlugin

__all__ = [
    "AdaptiveController",
    "ControlPlugin",
    "ControlSignal",
    "EwmaEstimator",
    "ParamUpdate",
    "TauBandit",
    "count_decision_flips",
    "run_adapt_bench",
    "run_arm",
    "type_copy_totals",
    "write_adapt_bench",
]
