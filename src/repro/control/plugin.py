"""Replay-plane wiring: the controller as a replay plugin.

:class:`ControlPlugin` steps an :class:`AdaptiveController` from the
replay loop: after every event it checks (two integer adds and a
compare) whether a full decision-cadence window elapsed and, when it
did, runs one controller step off the tracker's own counters.  The
plugin is deliberately **unsupervised** -- injected plugin faults
retrying a controller step would fork the parameter trajectory, and the
controller is part of the harness, not the workload under test.

Disabled control builds no plugin at all, so the replay fast path --
the <5% overhead gate -- never sees this module.
"""

from __future__ import annotations

from repro.control.controller import AdaptiveController, bind_policy
from repro.replay.replayer import Plugin


class ControlPlugin(Plugin):
    """Steps the adaptive controller on the replay decision cadence."""

    name = "control"
    #: controller steps must not be retried/quarantined as event faults
    supervised = False

    def __init__(self, controller: AdaptiveController, tracker):
        self.controller = controller
        self.tracker = tracker
        bind_policy(controller, tracker)

    def on_event(self, event) -> None:
        stats = self.tracker.stats
        if self.controller.due(stats.ifp_address + stats.ifp_control):
            self.controller.step_tracker(self.tracker)


__all__ = ["ControlPlugin"]
