"""``mitos-repro bench-adapt``: fixed vs adaptive MITOS under drift.

Three replays of the same drifting recording
(:func:`~repro.workloads.drift.drifting_recording`):

1. **baseline** -- ``propagate-all``, the recall denominator (what a
   cost-blind tracker detects, and the pollution ceiling);
2. **fixed** -- MITOS with the calibrated parameters, never updated:
   the boundary that was right for the calm phase over-pollutes once
   the flood phase ramps tag copies;
3. **adaptive** -- the same parameters plus an
   :class:`~repro.control.AdaptiveController` steering ``tau_scale``
   (and optionally the per-type weights) toward a pollution budget.

Every replay records its per-decision propagated tag sets through the
tracker's ``ifp_observer`` hook, so the report can count *decision
flips* -- IFP decisions where the adaptive run kept/blocked a different
tag set than the fixed run -- alongside detection recall (attack bytes
detected relative to the baseline) and the pollution trajectory (mean /
peak / final weighted pollution as a fraction of ``N_R``).

The headline number is ``adaptive_wins``: on a drifting workload the
adaptive run must beat the fixed run on pollution or on recall (it
typically wins pollution -- that is the budget it steers to -- while
giving up little or no recall).  Defaults for the cadence and budget
are derived from the fixed run when not given: cadence ~24 updates over
the trace, budget at half the fixed run's mean pollution, so the bench
stays meaningful across workload sizes.  ``BENCH_adapt.json`` plus a
``results/bench_trend.jsonl`` line are the artifacts CI tracks; see
docs/CONTROL.md for the methodology.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.params import MitosParams
from repro.options import ControlOptions
from repro.replay.record import Recording

#: per-decision capture: (propagated tag names, candidate count, pollution)
ArmRecord = Tuple[frozenset, int, float]


def run_arm(
    recording: Recording,
    params: MitosParams,
    *,
    policy: str = "mitos",
    control: Optional[ControlOptions] = None,
    label: str = "",
) -> Tuple[Dict[str, object], List[ArmRecord]]:
    """One replay arm; returns its summary and per-decision records.

    The observer fires once per policy-routed flow event in recording
    order, so two arms over the same recording yield index-aligned
    record streams -- which is what makes the flip count well-defined.
    """
    from repro.builders import build_faros_system

    system = build_faros_system(
        params=params, policy=policy, control=control, label=label or policy
    )
    records: List[ArmRecord] = []
    tracker = system.tracker
    base_o = params.o  # the arms are only comparable in ONE cost model:
    # the adaptive arm re-weights o_t at runtime, so the observer
    # re-measures pollution under the base weights instead of taking the
    # (current-weight) value the hook passes.  Read the counter through
    # the tracker -- reset() swaps in a fresh one.

    def observer(event, candidates, details, selected, pollution) -> None:
        records.append(
            (
                frozenset(f"{tag.type}:{tag.index}" for tag in selected),
                len(candidates),
                tracker.counter.weighted_pollution(base_o),
            )
        )

    system.tracker.ifp_observer = observer
    result = system.replay(recording)
    metrics = result.metrics
    stats = result.tracker_stats
    pollution_series = [record[2] for record in records]
    n_r = params.N_R
    summary: Dict[str, object] = {
        "label": label or policy,
        "policy": policy,
        "decisions": len(records),
        "ifp_decisions": int(stats.get("ifp_address", 0))
        + int(stats.get("ifp_control", 0)),
        "detected_bytes": metrics.detected_bytes,
        "ifp_candidates": metrics.ifp_candidates,
        "ifp_propagated": metrics.ifp_propagated,
        "ifp_blocked": metrics.ifp_blocked,
        "final_pollution_fraction": (
            tracker.counter.weighted_pollution(base_o) / n_r
        ),
        "mean_pollution_fraction": (
            sum(pollution_series) / len(pollution_series) / n_r
            if pollution_series
            else 0.0
        ),
        "peak_pollution_fraction": (
            max(pollution_series) / n_r if pollution_series else 0.0
        ),
        "param_updates": (
            system.controller.update_seq if system.controller else 0
        ),
        "tau_scale_final": system.tracker.params.tau_scale,
    }
    return summary, records


def count_decision_flips(
    fixed: List[ArmRecord], adaptive: List[ArmRecord]
) -> int:
    """IFP decisions whose propagated tag set differs between the arms."""
    flips = sum(
        1 for (a, _, _), (b, _, _) in zip(fixed, adaptive) if a != b
    )
    # streams are index-aligned over the same recording; a length skew
    # would itself be a divergence, count every unpaired decision
    return flips + abs(len(fixed) - len(adaptive))


def run_adapt_bench(
    *,
    quick: bool = False,
    seed: int = 0,
    mode: str = "ewma",
    every: Optional[int] = None,
    target: Optional[float] = None,
) -> Dict[str, object]:
    """The full fixed-vs-adaptive comparison; returns the report dict."""
    from repro.experiments.common import experiment_params
    from repro.workloads.drift import drifting_recording

    recording = drifting_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick)

    baseline, _ = run_arm(
        recording, params, policy="propagate-all", label="baseline"
    )
    fixed, fixed_records = run_arm(
        recording, params, policy="mitos", label="fixed"
    )

    if every is None:
        # ~24 controller steps across the trace regardless of its size;
        # the cadence counts the tracker's IFP decision total, not the
        # (sparser) policy-routed observer events
        every = max(8, int(fixed["ifp_decisions"]) // 24)  # type: ignore[arg-type]
    if target is None:
        # budget at half the fixed run's mean pollution: tight enough
        # that the fixed boundary is provably over it during the flood
        # phase, loose enough that steering there costs little recall
        target = max(
            1e-9, float(fixed["mean_pollution_fraction"]) / 2  # type: ignore[arg-type]
        )
    control = ControlOptions(
        enabled=True,
        mode=mode,
        every=every,
        target_pollution=target,
        seed=seed,
    )
    adaptive, adaptive_records = run_arm(
        recording, params, policy="mitos", control=control, label="adaptive"
    )

    base_detected = int(baseline["detected_bytes"])  # type: ignore[arg-type]

    def recall(arm: Dict[str, object]) -> float:
        if base_detected == 0:
            return 1.0
        return int(arm["detected_bytes"]) / base_detected  # type: ignore[arg-type]

    fixed_recall = recall(fixed)
    adaptive_recall = recall(adaptive)
    pollution_win = float(adaptive["mean_pollution_fraction"]) < float(  # type: ignore[arg-type]
        fixed["mean_pollution_fraction"]  # type: ignore[arg-type]
    )
    recall_win = adaptive_recall > fixed_recall
    return {
        "benchmark": "adapt",
        "workload": "drift",
        "quick": quick,
        "seed": seed,
        "recording_events": len(recording),
        "mode": mode,
        "every": every,
        "target_pollution": target,
        "baseline": baseline,
        "fixed": fixed,
        "adaptive": adaptive,
        "recall": {"fixed": fixed_recall, "adaptive": adaptive_recall},
        "decision_flips": count_decision_flips(
            fixed_records, adaptive_records
        ),
        "adaptive_wins": {
            "pollution": pollution_win,
            "recall": recall_win,
            "any": pollution_win or recall_win,
        },
    }


def write_adapt_bench(
    path: Union[str, Path], report: Dict[str, object]
) -> Path:
    """Write the ``BENCH_adapt.json`` document CI uploads."""
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target


__all__ = [
    "count_decision_flips",
    "run_adapt_bench",
    "run_arm",
    "write_adapt_bench",
]
