"""The MITOS-specialized tag cache.

"Recently accessed information can be stored in a MITOS-specialized
series of caches to mask memory latency."  (Section VI)

A classic set-associative cache over *locations* (the keys of the tag
state), modeled at the level the cycle model needs: hit/miss accounting
with LRU replacement per set.  Contents are just presence -- the
authoritative tag state lives in the tracker/segmented memory; the cache
decides whether an access pays the hit or miss latency.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class TagCache:
    """Set-associative, LRU-per-set presence cache over location keys."""

    def __init__(self, sets: int = 64, ways: int = 4):
        if sets < 1 or ways < 1:
            raise ValueError(f"sets and ways must be >= 1, got {sets}x{ways}")
        self.sets = sets
        self.ways = ways
        #: per-set LRU list of location keys (last = most recent)
        self._lines: List[List[str]] = [[] for _ in range(sets)]
        self.stats = CacheStats()

    def _set_of(self, location_key: str) -> int:
        return zlib.crc32(location_key.encode()) % self.sets

    def access(self, location_key: str) -> bool:
        """Touch a location; returns True on hit, False on miss (fills)."""
        lines = self._lines[self._set_of(location_key)]
        if location_key in lines:
            lines.remove(location_key)
            lines.append(location_key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(lines) >= self.ways:
            lines.pop(0)
        lines.append(location_key)
        return False

    def contains(self, location_key: str) -> bool:
        """Presence check without statistics or LRU effects."""
        return location_key in self._lines[self._set_of(location_key)]

    def invalidate(self, location_key: str) -> bool:
        lines = self._lines[self._set_of(location_key)]
        if location_key in lines:
            lines.remove(location_key)
            return True
        return False

    def flush(self) -> None:
        self._lines = [[] for _ in range(self.sets)]

    @property
    def occupancy(self) -> int:
        return sum(len(lines) for lines in self._lines)

    def utilization(self) -> Dict[str, float]:
        return {
            "occupancy": self.occupancy,
            "capacity": self.sets * self.ways,
            "hit_rate": self.stats.hit_rate,
        }
