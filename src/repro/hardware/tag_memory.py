"""Segmented tag memory with authenticated swap.

"Tag information can be stored in dictionary-like structures that reside
in a segmented portion of main memory ... Because the segmented portion
of memory is limited in size, it may need to be swapped.  We can perform
this action by relying on the OS to swap the information for us, in
which case it must be stored encrypted and cryptographically signed."
(Section VI)

The model: tag state lives in fixed-size :class:`TagPage` objects inside
a bounded resident set.  When the set is full, the least-recently-used
page is *sealed* (keystream-encrypted and MACed with a device key) and
handed to the untrusted OS; touching it later unseals and verifies.  A
tampering OS is detected, not obeyed.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dift.tags import Tag


class SwapError(Exception):
    """Swapped page failed authentication or was lost by the OS."""


@dataclass
class TagPage:
    """One page of tag state: a bounded map of location -> tag keys."""

    page_id: int
    entries: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def put(self, location_key: str, tags: List[Tag]) -> None:
        self.entries[location_key] = [tag.key for tag in tags]

    def get(self, location_key: str) -> Optional[List[Tuple[str, int]]]:
        return self.entries.get(location_key)

    def serialize(self) -> bytes:
        payload = {
            "page_id": self.page_id,
            "entries": {k: v for k, v in sorted(self.entries.items())},
        }
        return json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def deserialize(cls, blob: bytes) -> "TagPage":
        payload = json.loads(blob.decode())
        entries = {
            key: [tuple(item) for item in value]
            for key, value in payload["entries"].items()
        }
        return cls(page_id=payload["page_id"], entries=entries)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA256-counter keystream (a stand-in for the device's AES-CTR)."""
    stream = bytearray()
    counter = 0
    while len(stream) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "little"))
        stream.extend(block.digest())
        counter += 1
    return bytes(stream[:length])


@dataclass(frozen=True)
class SealedPage:
    """What the untrusted OS holds: ciphertext + MAC + nonce."""

    page_id: int
    nonce: bytes
    ciphertext: bytes
    mac: bytes


class SegmentedTagMemory:
    """Bounded resident set of tag pages with seal/unseal swap."""

    def __init__(self, resident_pages: int = 8, device_key: bytes = b"mitos-dev-key"):
        if resident_pages < 1:
            raise ValueError(f"resident_pages must be >= 1, got {resident_pages}")
        self.resident_limit = resident_pages
        self._device_key = device_key
        #: resident pages in LRU order (last = most recent)
        self._resident: Dict[int, TagPage] = {}
        #: pages held by the "OS" after swap-out
        self._swapped: Dict[int, SealedPage] = {}
        self._nonce_counter = 0
        self.swap_outs = 0
        self.swap_ins = 0

    # -- sealing -----------------------------------------------------------

    def _seal(self, page: TagPage) -> SealedPage:
        self._nonce_counter += 1
        nonce = self._nonce_counter.to_bytes(8, "little")
        plaintext = page.serialize()
        stream = _keystream(self._device_key, nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(
            self._device_key, nonce + ciphertext, hashlib.sha256
        ).digest()
        return SealedPage(
            page_id=page.page_id, nonce=nonce, ciphertext=ciphertext, mac=mac
        )

    def _unseal(self, sealed: SealedPage) -> TagPage:
        expected = hmac.new(
            self._device_key, sealed.nonce + sealed.ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, sealed.mac):
            raise SwapError(
                f"page {sealed.page_id} failed authentication (OS tampering?)"
            )
        stream = _keystream(
            self._device_key, sealed.nonce, len(sealed.ciphertext)
        )
        plaintext = bytes(c ^ s for c, s in zip(sealed.ciphertext, stream))
        return TagPage.deserialize(plaintext)

    # -- page access -----------------------------------------------------------

    def page(self, page_id: int) -> TagPage:
        """Fetch a page, swapping in (and evicting) as needed."""
        if page_id in self._resident:
            page = self._resident.pop(page_id)
            self._resident[page_id] = page  # refresh LRU position
            return page
        if page_id in self._swapped:
            page = self._unseal(self._swapped.pop(page_id))
            self.swap_ins += 1
        else:
            page = TagPage(page_id=page_id)
        self._make_room()
        self._resident[page_id] = page
        return page

    def _make_room(self) -> None:
        while len(self._resident) >= self.resident_limit:
            victim_id = next(iter(self._resident))
            victim = self._resident.pop(victim_id)
            self._swapped[victim_id] = self._seal(victim)
            self.swap_outs += 1

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._resident

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def swapped_count(self) -> int:
        return len(self._swapped)

    # -- adversarial OS hooks (for the security tests) ---------------------------

    def os_view(self, page_id: int) -> Optional[SealedPage]:
        """What the OS can see of a swapped page (ciphertext only)."""
        return self._swapped.get(page_id)

    def os_tamper(self, page_id: int, flip_byte: int = 0) -> None:
        """Model a malicious OS flipping a ciphertext byte."""
        sealed = self._swapped.get(page_id)
        if sealed is None:
            raise KeyError(f"page {page_id} is not swapped out")
        mutated = bytearray(sealed.ciphertext)
        mutated[flip_byte % len(mutated)] ^= 0xFF
        self._swapped[page_id] = SealedPage(
            page_id=sealed.page_id,
            nonce=sealed.nonce,
            ciphertext=bytes(mutated),
            mac=sealed.mac,
        )

    def os_drop(self, page_id: int) -> None:
        """Model a malicious OS discarding a swapped page."""
        self._swapped.pop(page_id, None)
