"""The assembled hardware MITOS component.

:class:`MitosHardware` composes the MSR file, tag cache, segmented tag
memory and cycle model around a software-identical DIFT tracker: taint
semantics are exactly those of :class:`~repro.dift.tracker.DIFTTracker`
(so hardware and software agree bit-for-bit on every decision), while the
hardware layers account for what the SoC sketch would *cost*:

* every event's operand locations go through the tag cache,
* location state is homed on pages of the segmented memory; page
  pressure causes sealed swaps,
* every indirect-flow decision and every propagation is charged to the
  cycle model.

Usage::

    hw = MitosHardware.configure(params)          # trusted loader path
    for event in recording:
        hw.process(event)
    print(hw.report.cycles_per_decision)
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence

from repro.core.decision import MultiDecision, TagCandidate
from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift.flows import FlowEvent
from repro.dift.shadow import Location
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.hardware.commit import CycleModel, CycleReport
from repro.hardware.msr import MitosMsrFile
from repro.hardware.tag_cache import TagCache
from repro.hardware.tag_memory import SegmentedTagMemory

#: locations per tag page (the dictionary-structure granularity)
LOCATIONS_PER_PAGE = 64


def location_key(location: Location) -> str:
    """Canonical string key of a location (cache/page addressing)."""
    return repr(location)


def page_of(location: Location) -> int:
    """Stable location -> page mapping."""
    return zlib.crc32(location_key(location).encode()) // LOCATIONS_PER_PAGE % (1 << 16)


class MitosHardware:
    """Cycle-modeled hardware MITOS wrapping a software-identical tracker."""

    def __init__(
        self,
        msr: MitosMsrFile,
        cache: Optional[TagCache] = None,
        tag_memory: Optional[SegmentedTagMemory] = None,
        cycle_model: Optional[CycleModel] = None,
    ):
        if not msr.locked:
            raise ValueError(
                "MSR file must be locked by the trusted loader before use"
            )
        self.msr = msr
        self.params: MitosParams = msr.to_params()
        self.cache = cache if cache is not None else TagCache()
        self.tag_memory = (
            tag_memory if tag_memory is not None else SegmentedTagMemory()
        )
        self.cycle_model = cycle_model if cycle_model is not None else CycleModel()
        self.report = CycleReport()
        self.policy = MitosPolicy(self.params)
        self.tracker = DIFTTracker(
            params=self.params,
            policy=self.policy,
            ifp_observer=self._on_decision,
            direct_via_policy=False,
        )

    @classmethod
    def configure(
        cls,
        params: MitosParams,
        cache: Optional[TagCache] = None,
        tag_memory: Optional[SegmentedTagMemory] = None,
        cycle_model: Optional[CycleModel] = None,
    ) -> "MitosHardware":
        """The trusted-loader path: encode params into MSRs and lock."""
        msr = MitosMsrFile()
        msr.load_params(params)
        msr.lock()
        return cls(msr, cache=cache, tag_memory=tag_memory, cycle_model=cycle_model)

    # -- cost accounting -----------------------------------------------------

    def _touch(self, location: Location) -> None:
        """One tag-state access: cache, then (on miss) the segmented memory."""
        key = location_key(location)
        if self.cache.access(key):
            self.report.cache_hits += 1
            self.report.charge("cache_hit", 1, self.cycle_model.cache_hit_cycles)
            return
        self.report.cache_misses += 1
        self.report.charge("cache_miss", 1, self.cycle_model.cache_miss_cycles)
        swap_outs_before = self.tag_memory.swap_outs
        swap_ins_before = self.tag_memory.swap_ins
        page = self.tag_memory.page(page_of(location))
        page.put(key, list(self.tracker.shadow.tags_at(location)))
        swaps = (
            self.tag_memory.swap_outs - swap_outs_before
            + self.tag_memory.swap_ins - swap_ins_before
        )
        if swaps:
            self.report.swaps += swaps
            self.report.charge("swap", swaps, self.cycle_model.swap_cycles)

    def _on_decision(
        self,
        event: FlowEvent,
        candidates: Sequence[TagCandidate],
        details: Optional[MultiDecision],
        selected: Sequence[Tag],
        pollution: float,
    ) -> None:
        decisions = len(candidates)
        self.report.decisions += decisions
        self.report.charge(
            "decision", decisions, self.cycle_model.decision_cycles
        )
        self.report.propagations += len(selected)
        self.report.charge(
            "propagate", len(selected), self.cycle_model.propagate_cycles
        )

    # -- the commit-stage entry point ------------------------------------------

    def process(self, event: FlowEvent) -> None:
        """Commit one instruction's taint effect through the hardware."""
        for source in event.sources:
            self._touch(source)
        self._touch(event.destination)
        self.tracker.process(event)

    def process_many(self, events: Sequence[FlowEvent]) -> None:
        for event in events:
            self.process(event)

    # -- verification hook ---------------------------------------------------

    def agrees_with_software(self, software: DIFTTracker) -> bool:
        """Bit-exact agreement of taint state with a software tracker."""
        return (
            self.tracker.counter.snapshot() == software.counter.snapshot()
        )
