"""Model-specific registers holding the MITOS configuration.

"Configuration parameters for the MITOS algorithm can be saved in newly
added model specific registers, allowing an interface to a trusted OS
module or platform loader to set up the interfaces."  (Section VI)

Registers hold fixed-point encodings of the real-valued inputs (hardware
has no floats in config space); the trusted loader writes them during
platform init and then *locks* the file -- post-lock writes fault, which
is what keeps a compromised OS from re-weighting the cost function.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.params import MitosParams

#: fixed-point scale: 16 fractional bits
FIXED_POINT_SHIFT = 16
FIXED_POINT_ONE = 1 << FIXED_POINT_SHIFT

#: register addresses (model-specific register numbers)
MSR_ALPHA = 0x4D0
MSR_BETA = 0x4D1
MSR_TAU = 0x4D2
MSR_TAU_SCALE = 0x4D3
MSR_R = 0x4D4
MSR_M_PROV = 0x4D5
MSR_LOCK = 0x4DF

#: base address of the per-tag-type weight banks (u then o)
MSR_U_BANK = 0x4E0
MSR_O_BANK = 0x4F0
WEIGHT_BANK_SIZE = 16


class MsrLockedError(Exception):
    """Write to a locked MSR file (the trusted-loader protection)."""


def to_fixed(value: float) -> int:
    """Encode a non-negative real as Q*.16 fixed point."""
    if value < 0:
        raise ValueError(f"fixed-point encoding is unsigned, got {value}")
    return round(value * FIXED_POINT_ONE)


def from_fixed(raw: int) -> float:
    """Decode a Q*.16 fixed-point register value."""
    return raw / FIXED_POINT_ONE


class MitosMsrFile:
    """The MITOS register file with trusted-loader locking.

    Tag types are mapped to weight-bank slots on first use (hardware
    indexes banks by small integers, not strings); the mapping itself is
    part of the locked configuration.
    """

    def __init__(self) -> None:
        self._registers: Dict[int, int] = {}
        self._type_slots: Dict[str, int] = {}
        self._locked = False

    # -- raw register access ------------------------------------------------

    @property
    def locked(self) -> bool:
        return self._locked

    def read(self, address: int) -> int:
        return self._registers.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if self._locked:
            raise MsrLockedError(
                f"MSR {address:#x} written after lock (untrusted writer?)"
            )
        if value < 0:
            raise ValueError(f"MSR values are unsigned, got {value}")
        self._registers[address] = value

    def lock(self) -> None:
        """End of trusted platform init: configuration becomes immutable."""
        self._registers[MSR_LOCK] = 1
        self._locked = True

    # -- typed configuration --------------------------------------------------

    def slot_for(self, tag_type: str) -> int:
        """Weight-bank slot of a tag type, allocating before lock."""
        if tag_type in self._type_slots:
            return self._type_slots[tag_type]
        if self._locked:
            raise MsrLockedError(
                f"tag type {tag_type!r} not configured before lock"
            )
        slot = len(self._type_slots)
        if slot >= WEIGHT_BANK_SIZE:
            raise ValueError(
                f"weight banks hold {WEIGHT_BANK_SIZE} tag types"
            )
        self._type_slots[tag_type] = slot
        return slot

    def load_params(self, params: MitosParams) -> None:
        """Trusted-loader path: encode a full parameter set."""
        self.write(MSR_ALPHA, to_fixed(params.alpha))
        self.write(MSR_BETA, to_fixed(params.beta))
        self.write(MSR_TAU, to_fixed(params.tau))
        self.write(MSR_TAU_SCALE, to_fixed(params.tau_scale))
        self.write(MSR_R, params.R)
        self.write(MSR_M_PROV, params.M_prov)
        for tag_type, weight in params.u.items():
            self.write(MSR_U_BANK + self.slot_for(tag_type), to_fixed(weight))
        for tag_type, weight in params.o.items():
            self.write(MSR_O_BANK + self.slot_for(tag_type), to_fixed(weight))

    def to_params(self) -> MitosParams:
        """Decode the register file back into model parameters.

        Quantization note: real-valued inputs round-trip with <= 2^-17
        absolute error -- the fidelity cost of a hardware register file.
        """
        u = {
            tag_type: from_fixed(self.read(MSR_U_BANK + slot))
            for tag_type, slot in self._type_slots.items()
            if MSR_U_BANK + slot in self._registers
        }
        o = {
            tag_type: from_fixed(self.read(MSR_O_BANK + slot))
            for tag_type, slot in self._type_slots.items()
            if MSR_O_BANK + slot in self._registers
        }
        return MitosParams(
            alpha=from_fixed(self.read(MSR_ALPHA)),
            beta=from_fixed(self.read(MSR_BETA)),
            tau=from_fixed(self.read(MSR_TAU)),
            tau_scale=from_fixed(self.read(MSR_TAU_SCALE)),
            R=self.read(MSR_R),
            M_prov=self.read(MSR_M_PROV),
            u=u,
            o=o,
        )

    def dump(self) -> Iterator[Tuple[int, int]]:
        """(address, value) pairs in address order (debug/attestation)."""
        return iter(sorted(self._registers.items()))
