"""Hardware MITOS: the Section VI SoC design sketch, made executable.

The paper sketches moving MITOS into hardware: configuration in
model-specific registers set up by a trusted loader, tag state in a
segmented portion of main memory reserved at platform init (like the SGX
enclave page cache), a MITOS-specialized cache masking tag-memory
latency, decisions taken at the commit stage of the core, and swapped-out
tag pages encrypted and signed because the OS is untrusted.

This package is a cycle-level *model* of that design -- enough to answer
the questions the sketch raises (what does a decision cost with a warm
vs. cold tag cache? what does swapping cost? what can a tampering OS
do?), not an RTL implementation.
"""

from repro.hardware.msr import MitosMsrFile, MsrLockedError
from repro.hardware.tag_memory import (
    SegmentedTagMemory,
    SwapError,
    TagPage,
)
from repro.hardware.tag_cache import TagCache
from repro.hardware.commit import CycleModel, CycleReport
from repro.hardware.soc import MitosHardware

__all__ = [
    "MitosMsrFile",
    "MsrLockedError",
    "SegmentedTagMemory",
    "TagPage",
    "SwapError",
    "TagCache",
    "CycleModel",
    "CycleReport",
    "MitosHardware",
]
