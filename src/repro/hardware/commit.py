"""Commit-stage decision latency model.

"For out of order cores, we look at the commit stage in the CPU, as to
capture the proper architectural state ...  The decision on whether to
propagate tag information is then performed by hardware."  (Section VI)

:class:`CycleModel` prices each hardware action; :class:`CycleReport`
accumulates what a run cost.  The decision itself is a two-term sum and
a comparison (the paper's O(1) claim), so its price is a small constant;
the variable costs are the tag-state accesses behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CycleModel:
    """Latency (cycles) of each modeled hardware action.

    Defaults are loosely scaled to a contemporary core: L1-like tag-cache
    hit, LLC/DRAM-like miss, the Eq. 8 arithmetic as a short fixed-point
    pipeline, and a swap as a page-sized DMA plus crypto.
    """

    decision_cycles: int = 4
    cache_hit_cycles: int = 2
    cache_miss_cycles: int = 40
    propagate_cycles: int = 3
    swap_cycles: int = 5_000

    def __post_init__(self) -> None:
        for name in (
            "decision_cycles",
            "cache_hit_cycles",
            "cache_miss_cycles",
            "propagate_cycles",
            "swap_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class CycleReport:
    """Accumulated cycle cost of one hardware run."""

    decisions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    propagations: int = 0
    swaps: int = 0
    total_cycles: int = 0
    by_action: Dict[str, int] = field(default_factory=dict)

    def charge(self, action: str, count: int, cycles_each: int) -> None:
        cost = count * cycles_each
        self.total_cycles += cost
        self.by_action[action] = self.by_action.get(action, 0) + cost

    @property
    def cycles_per_decision(self) -> float:
        if self.decisions == 0:
            return 0.0
        return self.total_cycles / self.decisions

    def as_dict(self) -> Dict[str, float]:
        return {
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "propagations": self.propagations,
            "swaps": self.swaps,
            "total_cycles": self.total_cycles,
            "cycles_per_decision": self.cycles_per_decision,
        }
