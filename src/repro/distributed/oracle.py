"""The exact-pollution decision oracle and its agreement bookkeeping.

The distributed story -- the in-process cluster *simulation*
(:mod:`repro.distributed.cluster`) and the multi-process shard fleet
(:mod:`repro.cluster`) -- measures staleness the same way: compare each
per-candidate IFP decision against what MITOS would have decided with
the **exact global pollution** in hand.  Equation 8's decision rule is
"propagate iff the marginal cost is non-positive", so the oracle is one
``marginal_cost`` evaluation per candidate.

Both consumers share this module so "oracle agreement" means exactly one
thing repo-wide, whether it comes from a simulated gossip round or from
a live fleet that just lost a shard to SIGKILL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.costs import marginal_cost
from repro.core.params import MitosParams


def oracle_propagate(
    copies: int,
    exact_pollution: float,
    tag_type: str,
    params: MitosParams,
) -> bool:
    """Would MITOS propagate this candidate given exact global pollution?

    Equation 8 with the real pollution instead of a (possibly stale)
    believed value: propagate when the marginal cost of one more copy is
    non-positive.
    """
    return marginal_cost(copies, exact_pollution, tag_type, params) <= 0


@dataclass
class AgreementTally:
    """Running per-candidate agreement between an oracle and live decisions."""

    hits: int = 0
    total: int = 0
    propagated: int = 0
    blocked: int = 0

    def observe(self, oracle: bool, actual: bool) -> None:
        """Record one candidate's (oracle decision, actual decision) pair."""
        self.total += 1
        if oracle == actual:
            self.hits += 1
        if actual:
            self.propagated += 1
        else:
            self.blocked += 1

    @property
    def agreement(self) -> float:
        """Fraction of decisions matching the oracle (1.0 when empty)."""
        if self.total == 0:
            return 1.0
        return self.hits / self.total

    def as_dict(self) -> Dict[str, object]:
        return {
            "agreement": self.agreement,
            "hits": self.hits,
            "total": self.total,
            "propagated": self.propagated,
            "blocked": self.blocked,
        }


__all__ = ["oracle_propagate", "AgreementTally"]
