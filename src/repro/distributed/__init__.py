"""Multi-subsystem DIFT: gossiped pollution estimates (Section IV-B scalability)."""

from repro.distributed.gossip import GossipState, PollutionGossip
from repro.distributed.node import SubsystemNode
from repro.distributed.cluster import Cluster, ClusterResult
from repro.distributed.oracle import AgreementTally, oracle_propagate

__all__ = [
    "SubsystemNode",
    "PollutionGossip",
    "GossipState",
    "Cluster",
    "ClusterResult",
    "AgreementTally",
    "oracle_propagate",
]
