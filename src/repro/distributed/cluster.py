"""Cluster simulation: a recording sharded across subsystem nodes.

Events are routed to nodes by destination location (a stable hash), so
each node tracks its own shard of the address space -- the "different
(sub)systems" of the paper's tag-differentiation assumption.  Between
every ``gossip_interval`` events a gossip round spreads local pollution
values; MITOS decisions on each node use the (stale) believed global
pollution.

:meth:`Cluster.run` reports decision agreement against an oracle that
always sees the exact global pollution, quantifying how much staleness
costs -- the paper's scalability claim made measurable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.params import MitosParams
from repro.distributed.gossip import PollutionGossip
from repro.distributed.oracle import AgreementTally, oracle_propagate
from repro.distributed.node import SubsystemNode
from repro.dift.flows import FlowEvent
from repro.replay.record import Recording

if TYPE_CHECKING:  # type hints only; faults stays an optional dependency
    from repro.faults.injector import FaultInjector


@dataclass
class ClusterResult:
    """Outcome of one sharded replay."""

    nodes: int
    events: int
    gossip_rounds: int
    gossip_messages: int
    mean_estimate_error: float
    max_estimate_error: float
    #: fraction of per-candidate IFP decisions matching the exact-pollution oracle
    oracle_agreement: float
    per_node_events: Dict[int, int] = field(default_factory=dict)
    propagated: int = 0
    blocked: int = 0
    messages_lost: int = 0
    node_restarts: int = 0


class Cluster:
    """N subsystem nodes + gossip, replaying one recording."""

    def __init__(
        self,
        params: MitosParams,
        n_nodes: int = 4,
        gossip_interval: int = 200,
        fanout: int = 2,
        seed: int = 0,
        direct_via_policy: bool = False,
        node_params: Optional[Sequence[MitosParams]] = None,
        loss_rate: float = 0.0,
        gossip_retries: int = 0,
        injector: Optional["FaultInjector"] = None,
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if gossip_interval < 1:
            raise ValueError(f"gossip_interval must be >= 1, got {gossip_interval}")
        if node_params is not None and len(node_params) != n_nodes:
            raise ValueError(
                f"node_params must supply one MitosParams per node "
                f"({n_nodes}), got {len(node_params)}"
            )
        self.params = params
        self.node_params = (
            list(node_params) if node_params is not None else [params] * n_nodes
        )
        self.nodes = [
            SubsystemNode(
                i, self.node_params[i], direct_via_policy=direct_via_policy
            )
            for i in range(n_nodes)
        ]
        self.gossip = PollutionGossip(
            self.nodes,
            fanout=fanout,
            seed=seed,
            loss_rate=loss_rate,
            max_retries=gossip_retries,
            injector=injector,
        )
        self.injector = injector
        self.gossip_interval = gossip_interval
        #: how often belief errors are sampled -- independent of gossip, so
        #: "never gossips" measures as large error rather than no error
        self.error_sample_interval = max(1, min(50, gossip_interval))

    def route(self, event: FlowEvent) -> SubsystemNode:
        """Stable destination-hash sharding.

        Uses CRC32 of the location repr rather than ``hash()``: Python
        salts string hashes per process, which would make the sharding --
        and therefore the whole run -- non-reproducible.
        """
        digest = zlib.crc32(repr(event.destination).encode())
        return self.nodes[digest % len(self.nodes)]

    def run(self, recording: Recording) -> ClusterResult:
        """Replay the recording across the cluster with periodic gossip."""
        tally = AgreementTally()

        def watch(node: SubsystemNode):
            def observer(event, candidates, details, selected, pollution):
                exact = self.gossip.true_global_pollution()
                selected_keys = {tag for tag in selected}
                for candidate in candidates:
                    oracle = oracle_propagate(
                        candidate.copies, exact, candidate.tag_type, node.params
                    )
                    tally.observe(oracle, candidate.key in selected_keys)

            return observer

        for node in self.nodes:
            node.tracker.ifp_observer = watch(node)

        injector = self.injector
        errors_seen: List[float] = []
        for index, event in enumerate(recording):
            if index > 0 and index % self.gossip_interval == 0:
                self.gossip.round()
            if index > 0 and index % self.error_sample_interval == 0:
                errors_seen.extend(self.gossip.record_errors())
            if injector is not None and injector.node_crashes(index):
                victim = self.nodes[injector.pick(len(self.nodes), "crash", index)]
                victim.restart()
            self.route(event).process(event)

        mean_error = (
            sum(errors_seen) / len(errors_seen) if errors_seen else 0.0
        )
        max_error = max(errors_seen) if errors_seen else 0.0
        return ClusterResult(
            nodes=len(self.nodes),
            events=len(recording),
            gossip_rounds=self.gossip.state.rounds,
            gossip_messages=self.gossip.state.messages_sent,
            mean_estimate_error=mean_error,
            max_estimate_error=max_error,
            oracle_agreement=tally.agreement,
            per_node_events={n.node_id: n.events_processed for n in self.nodes},
            propagated=tally.propagated,
            blocked=tally.blocked,
            messages_lost=self.gossip.state.messages_lost,
            node_restarts=sum(n.restarts for n in self.nodes),
        )


def run_sharded(
    recording: Recording,
    params: MitosParams,
    n_nodes: int,
    gossip_interval: int,
    seed: int = 0,
    direct_via_policy: bool = False,
    loss_rate: float = 0.0,
    gossip_retries: int = 0,
    injector: Optional["FaultInjector"] = None,
) -> ClusterResult:
    """Convenience wrapper used by the ablation bench and fault sweep."""
    cluster = Cluster(
        params,
        n_nodes=n_nodes,
        gossip_interval=gossip_interval,
        seed=seed,
        direct_via_policy=direct_via_policy,
        loss_rate=loss_rate,
        gossip_retries=gossip_retries,
        injector=injector,
    )
    return cluster.run(recording)
