"""Pollution gossip: how the global Eq. 8 signal spreads between subsystems.

Each round, every node pushes its *local* pollution value to a bounded
random subset of peers (seeded fan-out).  Receivers record the value as
their latest belief about that peer.  Beliefs therefore lag reality by up
to the gossip interval -- the staleness the distributed ablation sweeps.

:class:`GossipState` tracks message counts and convergence statistics so
experiments can report communication cost alongside decision quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.distributed.node import SubsystemNode


@dataclass
class GossipState:
    """Counters over the lifetime of one gossip process."""

    rounds: int = 0
    messages_sent: int = 0
    last_round_errors: List[float] = field(default_factory=list)


class PollutionGossip:
    """Seeded push gossip of local pollution values."""

    def __init__(
        self,
        nodes: Sequence[SubsystemNode],
        fanout: int = 2,
        seed: int = 0,
    ):
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.nodes = list(nodes)
        self.fanout = min(fanout, max(1, len(self.nodes) - 1))
        self._rng = random.Random(seed)
        self.state = GossipState()

    def round(self) -> None:
        """One gossip round: every node pushes to ``fanout`` random peers."""
        for sender in self.nodes:
            peers = [n for n in self.nodes if n.node_id != sender.node_id]
            if not peers:
                continue
            targets = self._rng.sample(peers, min(self.fanout, len(peers)))
            value = sender.local_pollution()
            for target in targets:
                target.receive_gossip(sender.node_id, value)
                self.state.messages_sent += 1
        self.state.rounds += 1

    def broadcast(self) -> None:
        """Full synchronization: everyone learns everyone's exact value."""
        values = [(n.node_id, n.local_pollution()) for n in self.nodes]
        for node in self.nodes:
            for peer_id, value in values:
                node.receive_gossip(peer_id, value)
        self.state.rounds += 1
        self.state.messages_sent += len(self.nodes) * (len(self.nodes) - 1)

    def true_global_pollution(self) -> float:
        return sum(n.local_pollution() for n in self.nodes)

    def record_errors(self) -> List[float]:
        """Per-node belief errors against the live ground truth."""
        truth = self.true_global_pollution()
        errors = [n.estimate_error(truth) for n in self.nodes]
        self.state.last_round_errors = errors
        return errors

    def max_error(self) -> float:
        errors = self.record_errors()
        return max(errors) if errors else 0.0
