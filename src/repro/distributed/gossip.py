"""Pollution gossip: how the global Eq. 8 signal spreads between subsystems.

Each round, every node pushes its *local* pollution value to a bounded
random subset of peers (seeded fan-out).  Receivers record the value as
their latest belief about that peer.  Beliefs therefore lag reality by up
to the gossip interval -- the staleness the distributed ablation sweeps.

:class:`GossipState` tracks message counts and convergence statistics so
experiments can report communication cost alongside decision quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.distributed.node import SubsystemNode

if TYPE_CHECKING:  # type hints only; faults stays an optional dependency
    from repro.faults.injector import FaultInjector


@dataclass
class GossipState:
    """Counters over the lifetime of one gossip process."""

    rounds: int = 0
    messages_sent: int = 0
    messages_lost: int = 0
    messages_retried: int = 0
    last_round_errors: List[float] = field(default_factory=list)


class PollutionGossip:
    """Seeded push gossip of local pollution values.

    ``loss_rate`` makes each send attempt time out with that probability
    (drawn from a *separate* RNG, so peer selection is byte-identical to
    the lossless configuration); ``max_retries`` re-sends a timed-out
    message up to that many extra times within the round.  Every attempt
    counts toward ``messages_sent`` -- retries are real communication
    cost.  A :class:`~repro.faults.FaultInjector` can replace the loss
    RNG for replay-deterministic fault campaigns.
    """

    def __init__(
        self,
        nodes: Sequence[SubsystemNode],
        fanout: int = 2,
        seed: int = 0,
        loss_rate: float = 0.0,
        max_retries: int = 0,
        injector: Optional["FaultInjector"] = None,
    ):
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.nodes = list(nodes)
        self.fanout = min(fanout, max(1, len(self.nodes) - 1))
        self._rng = random.Random(seed)
        # independent stream: losses must not perturb peer selection
        self._loss_rng = random.Random(seed ^ 0x5EED)
        self.loss_rate = loss_rate
        self.max_retries = max_retries
        self.injector = injector
        self.state = GossipState()

    def _attempt_lost(self, sender_id: int, target_id: int, attempt: int) -> bool:
        """Whether one send attempt times out."""
        if self.injector is not None:
            return self.injector.message_lost(
                self.state.rounds, sender_id, target_id, attempt
            )
        if self.loss_rate > 0.0:
            return self._loss_rng.random() < self.loss_rate
        return False

    def _deliver(self, sender: SubsystemNode, target: SubsystemNode, value: float) -> None:
        """Send with per-attempt timeout + bounded retry."""
        for attempt in range(self.max_retries + 1):
            self.state.messages_sent += 1
            if not self._attempt_lost(sender.node_id, target.node_id, attempt):
                target.receive_gossip(sender.node_id, value)
                return
            self.state.messages_lost += 1
            if attempt < self.max_retries:
                self.state.messages_retried += 1

    def round(self) -> None:
        """One gossip round: every node pushes to ``fanout`` random peers."""
        for sender in self.nodes:
            peers = [n for n in self.nodes if n.node_id != sender.node_id]
            if not peers:
                continue
            targets = self._rng.sample(peers, min(self.fanout, len(peers)))
            value = sender.local_pollution()
            for target in targets:
                self._deliver(sender, target, value)
        self.state.rounds += 1

    def broadcast(self) -> None:
        """Full synchronization: everyone learns everyone's exact value."""
        values = [(n.node_id, n.local_pollution()) for n in self.nodes]
        for node in self.nodes:
            for peer_id, value in values:
                node.receive_gossip(peer_id, value)
        self.state.rounds += 1
        self.state.messages_sent += len(self.nodes) * (len(self.nodes) - 1)

    def true_global_pollution(self) -> float:
        return sum(n.local_pollution() for n in self.nodes)

    def record_errors(self) -> List[float]:
        """Per-node belief errors against the live ground truth."""
        truth = self.true_global_pollution()
        errors = [n.estimate_error(truth) for n in self.nodes]
        self.state.last_round_errors = errors
        return errors

    def max_error(self) -> float:
        errors = self.record_errors()
        return max(errors) if errors else 0.0
