"""A subsystem node: local tracker + belief about global pollution.

The paper argues MITOS scales to large distributed systems because the
decision rule needs only (i) *local* information -- the copy count of the
candidate tag -- and (ii) a *globally shared estimate* of memory pollution
(Eq. 8's right-hand term), which can be "kept in a globally available
variable for all potential subsystems".

A :class:`SubsystemNode` owns one DIFT tracker for its share of the
system.  Its MITOS policy reads pollution from the node's *belief*: its
own live pollution plus the last value gossiped by every peer -- possibly
stale, which is exactly the robustness the ablation quantifies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift.detector import ConfluenceDetector
from repro.dift.flows import FlowEvent
from repro.dift.tracker import DIFTTracker


class SubsystemNode:
    """One subsystem running MITOS against a gossiped pollution estimate."""

    def __init__(
        self,
        node_id: int,
        params: MitosParams,
        detector: Optional[ConfluenceDetector] = None,
        direct_via_policy: bool = False,
    ):
        self.node_id = node_id
        self.params = params
        #: last known local pollution of each peer (node_id -> value)
        self.peer_pollution: Dict[int, float] = {}
        self.policy = MitosPolicy(params, pollution_source=self.believed_pollution)
        self.tracker = DIFTTracker(
            params=params,
            policy=self.policy,
            detector=detector,
            direct_via_policy=direct_via_policy,
        )
        # the tracker constructor rebinds MitosPolicy to its own counter;
        # restore the node-level belief as the pollution source
        self.policy.bind_pollution_source(self.believed_pollution)
        self.events_processed = 0
        self.restarts = 0

    def local_pollution(self) -> float:
        """This node's true, live contribution to global pollution."""
        return self.tracker.pollution()

    def believed_pollution(self) -> float:
        """Local truth plus last-gossiped peer values (the Eq. 8 input)."""
        return self.local_pollution() + sum(self.peer_pollution.values())

    def receive_gossip(self, peer_id: int, pollution_value: float) -> None:
        """Update the belief about one peer."""
        if peer_id == self.node_id:
            return
        self.peer_pollution[peer_id] = pollution_value

    def process(self, event: FlowEvent) -> None:
        self.tracker.process(event)
        self.events_processed += 1

    def estimate_error(self, true_global: float) -> float:
        """Absolute error of the believed pollution vs. ground truth."""
        return abs(self.believed_pollution() - true_global)

    def restart(self) -> None:
        """Crash-and-restart: lose all taint state and peer beliefs.

        Models a subsystem process dying and rejoining: its shadow memory
        is gone, and so is everything it learned from gossip -- beliefs
        must be re-learned in subsequent rounds.  The pollution source
        binding survives (it is the node's own method).
        """
        self.tracker.reset()
        self.peer_pollution.clear()
        self.restarts += 1
        self.policy.bind_pollution_source(self.believed_pollution)
