"""Control-flow graph and post-dominator analysis for control-dep scoping.

A control dependency exists between a conditional branch and every
instruction executed *before control re-converges* -- i.e. before the
branch's immediate post-dominator.  This is the standard scoping used by
DYTAN-style implementations of control-flow taint: within the scope, every
write is influenced by the branch condition.

We build the CFG over instruction indices, add a virtual exit node, and use
:func:`networkx.immediate_dominators` on the reversed graph (post-dominance
is dominance in the reverse CFG).  :meth:`ControlFlowGraph.control_scope`
returns, per branch, the set of instructions strictly between the branch
and its immediate post-dominator on any path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.isa.instructions import Instruction, Op, Program

#: virtual exit node id (program instruction indices are >= 0)
EXIT = -1


def successors(index: int, instruction: Instruction, length: int) -> List[int]:
    """Static successor indices of an instruction (EXIT for program end)."""
    op = instruction.op
    if op is Op.HALT:
        return [EXIT]
    if op is Op.JMP:
        target = int(instruction.operands[0])  # type: ignore[arg-type]
        return [target if target < length else EXIT]
    nxt = index + 1 if index + 1 < length else EXIT
    if instruction.is_branch:
        target = int(instruction.operands[2])  # type: ignore[arg-type]
        taken = target if target < length else EXIT
        return sorted({taken, nxt}, key=lambda n: (n == EXIT, n))
    return [nxt]


class ControlFlowGraph:
    """CFG + immediate post-dominators for one program."""

    def __init__(self, program: Program):
        self.program = program
        self.graph = nx.DiGraph()
        length = len(program.instructions)
        self.graph.add_node(EXIT)
        for index, instruction in enumerate(program.instructions):
            self.graph.add_node(index)
            for succ in successors(index, instruction, length):
                self.graph.add_edge(index, succ)
        self._ipostdom = self._compute_ipostdom()
        self._scopes: Dict[int, FrozenSet[int]] = {}

    def _compute_ipostdom(self) -> Dict[int, int]:
        """Immediate post-dominators = immediate dominators of the reverse CFG."""
        reverse = self.graph.reverse(copy=True)
        # nodes unreachable from EXIT in reverse (infinite loops) have no
        # post-dominator; restrict to the reachable subgraph
        reachable = nx.descendants(reverse, EXIT) | {EXIT}
        sub = reverse.subgraph(reachable)
        idom = nx.immediate_dominators(sub, EXIT)
        return {node: dom for node, dom in idom.items() if node != EXIT}

    def ipostdom(self, index: int) -> int:
        """Immediate post-dominator of instruction ``index`` (EXIT possible).

        Raises ``KeyError`` for instructions that never reach program exit
        (e.g. inside an infinite loop) -- such branches get whole-rest-of-
        program scope via :meth:`control_scope`.
        """
        return self._ipostdom[index]

    def control_scope(self, branch_index: int) -> FrozenSet[int]:
        """Instruction indices control-dependent on the branch at ``branch_index``.

        The scope is every instruction reachable from the branch without
        passing through its immediate post-dominator, excluding the branch
        itself and the post-dominator.  Cached per branch.
        """
        if branch_index in self._scopes:
            return self._scopes[branch_index]
        instruction = self.program.instructions[branch_index]
        if not instruction.is_branch:
            scope: FrozenSet[int] = frozenset()
            self._scopes[branch_index] = scope
            return scope
        join = self._ipostdom.get(branch_index)
        visited: Set[int] = set()
        stack = [
            succ
            for succ in self.graph.successors(branch_index)
            if succ != join and succ != EXIT
        ]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            for succ in self.graph.successors(node):
                if succ != join and succ != EXIT and succ not in visited:
                    stack.append(succ)
        scope = frozenset(visited)
        self._scopes[branch_index] = scope
        return scope

    def scope_join(self, branch_index: int) -> int:
        """The convergence point ending the branch's control scope."""
        return self._ipostdom.get(branch_index, EXIT)

    def branches(self) -> List[int]:
        """Indices of all conditional branches in the program."""
        return [
            index
            for index, instruction in enumerate(self.program.instructions)
            if instruction.is_branch
        ]

    def edges(self) -> List[Tuple[int, int]]:
        return list(self.graph.edges())
