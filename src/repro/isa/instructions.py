"""Instruction set of the trace-producing machine.

A deliberately small RISC-style ISA that still exhibits every flow class
the paper cares about:

* register/immediate moves (copy dependencies / untainting constants),
* ALU ops (computation dependencies),
* loads/stores with register-indirect addressing (address dependencies),
* compare-and-branch (control dependencies, scoped via post-dominators),
* port I/O against devices (taint sources and sinks),
* HALT/NOP/JMP plumbing.

Sixteen general-purpose registers ``r0`` .. ``r15``.  Branch targets are
labels resolved by the assembler to instruction indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

REGISTER_COUNT = 16
REGISTER_NAMES = tuple(f"r{i}" for i in range(REGISTER_COUNT))


class Op(enum.Enum):
    """Opcodes, with their operand shapes documented inline."""

    MOVI = "movi"  # MOVI rd, imm        rd := imm (untaints rd)
    MOV = "mov"    # MOV rd, rs          rd := rs (copy dep)
    ADD = "add"    # ADD rd, rs1, rs2    computation dep
    SUB = "sub"
    MUL = "mul"
    XOR = "xor"
    AND = "and"
    OR = "or"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"  # ADDI rd, rs, imm    computation dep (single source)
    LB = "lb"      # LB rd, rs, imm      rd := mem[rs + imm] (copy + address dep)
    SB = "sb"      # SB rs, ra, imm      mem[ra + imm] := rs (copy + address dep)
    BEQ = "beq"    # BEQ rs1, rs2, label control dep on (rs1, rs2)
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"    # JMP label           unconditional
    IN = "in"      # IN rd, port         read byte from device (taint source)
    OUT = "out"    # OUT rs, port        write byte to device (taint sink)
    NOP = "nop"
    HALT = "halt"


#: conditional branches (the control-dependency sources)
CONDITIONAL_BRANCHES = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})

#: three-register ALU operations
ALU_OPS = frozenset({Op.ADD, Op.SUB, Op.MUL, Op.XOR, Op.AND, Op.OR, Op.SHL, Op.SHR})

#: expected operand counts per opcode
OPERAND_COUNTS: Dict[Op, int] = {
    Op.MOVI: 2,
    Op.MOV: 2,
    Op.ADD: 3,
    Op.SUB: 3,
    Op.MUL: 3,
    Op.XOR: 3,
    Op.AND: 3,
    Op.OR: 3,
    Op.SHL: 3,
    Op.SHR: 3,
    Op.ADDI: 3,
    Op.LB: 3,
    Op.SB: 3,
    Op.BEQ: 3,
    Op.BNE: 3,
    Op.BLT: 3,
    Op.BGE: 3,
    Op.JMP: 1,
    Op.IN: 2,
    Op.OUT: 2,
    Op.NOP: 0,
    Op.HALT: 0,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``operands`` are register names (``"r3"``), integers (immediates,
    ports, resolved branch targets), matching the shapes documented on
    :class:`Op`.
    """

    op: Op
    operands: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        expected = OPERAND_COUNTS[self.op]
        if len(self.operands) != expected:
            raise ValueError(
                f"{self.op.value} expects {expected} operands, "
                f"got {len(self.operands)}"
            )

    @property
    def is_branch(self) -> bool:
        return self.op in CONDITIONAL_BRANCHES

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        args = ", ".join(str(o) for o in self.operands)
        return f"{self.op.value} {args}".strip()


@dataclass
class Program:
    """An assembled program: instructions, labels, and initial data image."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    #: initial memory contents: {address: bytes}
    data: Dict[int, bytes] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def label_at(self, name: str) -> int:
        if name not in self.labels:
            raise KeyError(f"unknown label {name!r}")
        return self.labels[name]
