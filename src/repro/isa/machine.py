"""The trace-producing register machine.

Executes a :class:`~repro.isa.instructions.Program` and emits one
:class:`~repro.dift.flows.FlowEvent` per taint-relevant effect -- the same
contract PANDA's instrumented replay gives FAROS:

* ``MOVI``                -> ``CLEAR`` of the destination register,
* ``MOV``                 -> ``COPY`` register-to-register,
* ALU ops                 -> ``COMPUTE`` of the operand registers,
* ``LB``/``SB``           -> data ``COPY`` plus an ``ADDRESS_DEP`` from the
  address register (the paper's Fig. 4/5 scenario),
* conditional branches    -> a control scope: every write executed before
  the branch's immediate post-dominator additionally emits a
  ``CONTROL_DEP`` from the branch's condition registers,
* ``IN``                  -> ``CLEAR`` + (if the device says so) ``INSERT``
  of the source tag,
* ``OUT``                 -> ``COPY`` to the device's sink location.

Event ordering per instruction is: direct flows, then address deps, then
control deps -- so indirect tags are layered on top of the freshly written
value's taint rather than being clobbered by it.

32-bit wrapping arithmetic.  The machine never inspects taint; all policy
lives in the DIFT layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.dift import flows
from repro.dift.flows import FlowEvent
from repro.dift.shadow import Location, mem, reg
from repro.isa.cfg import EXIT, ControlFlowGraph
from repro.isa.devices import Device, NullDevice
from repro.isa.errors import ExecutionLimitExceeded, InvalidInstructionError
from repro.isa.instructions import ALU_OPS, Instruction, Op, Program
from repro.isa.memory import Memory

_MASK32 = 0xFFFFFFFF

EventSink = Callable[[FlowEvent], None]

_ALU_FUNCS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.XOR: lambda a, b: a ^ b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.SHL: lambda a, b: a << (b & 31),
    Op.SHR: lambda a, b: a >> (b & 31),
}

_BRANCH_FUNCS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}


class Machine:
    """Executes programs and streams flow events to a sink."""

    def __init__(
        self,
        program: Program,
        memory_size: int = 1 << 16,
        devices: Optional[Mapping[int, Device]] = None,
        event_sink: Optional[EventSink] = None,
        max_steps: int = 1_000_000,
        emit_address_deps: bool = True,
        emit_control_deps: bool = True,
        start_tick: int = 0,
        memory: Optional[Memory] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else Memory(memory_size)
        for address, blob in program.data.items():
            self.memory.write_bytes(address, blob)
        self.devices: Dict[int, Device] = dict(devices or {})
        self.registers: Dict[str, int] = {f"r{i}": 0 for i in range(16)}
        self.pc = 0
        self.tick = start_tick
        self.halted = False
        self.steps = 0
        self.max_steps = max_steps
        self.emit_address_deps = emit_address_deps
        self.emit_control_deps = emit_control_deps
        self.cfg = ControlFlowGraph(program)
        #: active control scopes: list of (join_index, condition_registers)
        self._control_stack: List[Tuple[int, Tuple[str, ...]]] = []
        self.trace: List[FlowEvent] = []
        self._sink: EventSink = event_sink or self.trace.append

    # -- event plumbing -----------------------------------------------------

    def _emit(self, event: FlowEvent) -> None:
        self._sink(event)

    def _emit_control_deps(self, destination: Location, context: str) -> None:
        if not self.emit_control_deps or not self._control_stack:
            return
        sources: List[Location] = []
        seen = set()
        for _join, condition_registers in self._control_stack:
            for name in condition_registers:
                if name not in seen:
                    seen.add(name)
                    sources.append(reg(name))
        self._emit(
            flows.control_dep(
                tuple(sources), destination, tick=self.tick, context=context
            )
        )

    # -- device access -------------------------------------------------------

    def device(self, port: int) -> Device:
        if port not in self.devices:
            self.devices[port] = NullDevice()
        return self.devices[port]

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> int:
        """Run until HALT or the step budget; returns steps executed."""
        budget = max_steps if max_steps is not None else self.max_steps
        executed = 0
        while not self.halted:
            if executed >= budget:
                raise ExecutionLimitExceeded(
                    f"exceeded {budget} steps at pc={self.pc}"
                )
            self.step()
            executed += 1
        return executed

    def step(self) -> None:
        """Execute exactly one instruction."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program.instructions):
            self.halted = True
            self._control_stack.clear()
            return
        # leaving control scopes: pop every frame whose join point we reached
        while self._control_stack and self._control_stack[-1][0] == self.pc:
            self._control_stack.pop()
        instruction = self.program.instructions[self.pc]
        self._execute(instruction)
        self.tick += 1
        self.steps += 1

    def _reg_value(self, name: object) -> int:
        return self.registers[str(name)]

    def _set_reg(self, name: object, value: int) -> None:
        self.registers[str(name)] = value & _MASK32

    def _execute(self, instruction: Instruction) -> None:
        op = instruction.op
        ops = instruction.operands
        next_pc = self.pc + 1
        context = op.value

        if op is Op.HALT:
            self.halted = True
            self._control_stack.clear()
            return
        if op is Op.NOP:
            pass
        elif op is Op.MOVI:
            rd, imm = ops
            self._set_reg(rd, int(imm))  # type: ignore[arg-type]
            self._emit(flows.clear(reg(str(rd)), tick=self.tick, context=context))
            self._emit_control_deps(reg(str(rd)), context)
        elif op is Op.MOV:
            rd, rs = ops
            self._set_reg(rd, self._reg_value(rs))
            self._emit(
                flows.copy(reg(str(rs)), reg(str(rd)), tick=self.tick, context=context)
            )
            self._emit_control_deps(reg(str(rd)), context)
        elif op in ALU_OPS:
            rd, rs1, rs2 = ops
            value = _ALU_FUNCS[op](self._reg_value(rs1), self._reg_value(rs2))
            self._set_reg(rd, value)
            self._emit(
                flows.compute(
                    (reg(str(rs1)), reg(str(rs2))),
                    reg(str(rd)),
                    tick=self.tick,
                    context=context,
                )
            )
            self._emit_control_deps(reg(str(rd)), context)
        elif op is Op.ADDI:
            rd, rs, imm = ops
            self._set_reg(rd, self._reg_value(rs) + int(imm))  # type: ignore[arg-type]
            self._emit(
                flows.compute(
                    (reg(str(rs)),), reg(str(rd)), tick=self.tick, context=context
                )
            )
            self._emit_control_deps(reg(str(rd)), context)
        elif op is Op.LB:
            rd, rs, imm = ops
            address = (self._reg_value(rs) + int(imm)) & _MASK32  # type: ignore[arg-type]
            self._set_reg(rd, self.memory.read_byte(address))
            self._emit(
                flows.copy(mem(address), reg(str(rd)), tick=self.tick, context=context)
            )
            if self.emit_address_deps:
                self._emit(
                    flows.address_dep(
                        reg(str(rs)), reg(str(rd)), tick=self.tick, context=context
                    )
                )
            self._emit_control_deps(reg(str(rd)), context)
        elif op is Op.SB:
            rs, ra, imm = ops
            address = (self._reg_value(ra) + int(imm)) & _MASK32  # type: ignore[arg-type]
            self.memory.write_byte(address, self._reg_value(rs))
            self._emit(
                flows.copy(reg(str(rs)), mem(address), tick=self.tick, context=context)
            )
            if self.emit_address_deps:
                self._emit(
                    flows.address_dep(
                        reg(str(ra)), mem(address), tick=self.tick, context=context
                    )
                )
            self._emit_control_deps(mem(address), context)
        elif op in _BRANCH_FUNCS:
            rs1, rs2, target = ops
            taken = _BRANCH_FUNCS[op](self._reg_value(rs1), self._reg_value(rs2))
            branch_index = self.pc
            if taken:
                next_pc = int(target)  # type: ignore[arg-type]
            if self.emit_control_deps:
                scope = self.cfg.control_scope(branch_index)
                if scope:
                    join = self.cfg.scope_join(branch_index)
                    frame = (join, (str(rs1), str(rs2)))
                    # loops re-execute their own branch every iteration;
                    # avoid stacking identical frames
                    if join != EXIT and (
                        not self._control_stack
                        or self._control_stack[-1] != frame
                    ):
                        self._control_stack.append(frame)
        elif op is Op.JMP:
            next_pc = int(ops[0])  # type: ignore[arg-type]
        elif op is Op.IN:
            rd, port = ops
            value, tag = self.device(int(port)).read()  # type: ignore[arg-type]
            self._set_reg(rd, value)
            self._emit(flows.clear(reg(str(rd)), tick=self.tick, context="in"))
            if tag is not None:
                self._emit(
                    flows.insert(reg(str(rd)), tag, tick=self.tick, context="in")
                )
            self._emit_control_deps(reg(str(rd)), "in")
        elif op is Op.OUT:
            rs, port = ops
            sink = self.device(int(port)).write(self._reg_value(rs))  # type: ignore[arg-type]
            if sink is not None:
                self._emit(
                    flows.copy(reg(str(rs)), sink, tick=self.tick, context="out")
                )
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidInstructionError(f"unimplemented opcode {op}")

        if next_pc >= len(self.program.instructions):
            self.halted = True
            self._control_stack.clear()
        else:
            self.pc = next_pc

    # -- inspection -----------------------------------------------------------

    def register_dump(self) -> Dict[str, int]:
        return dict(self.registers)

    def memory_bytes(self, address: int, length: int) -> bytes:
        return self.memory.read_bytes(address, length)
