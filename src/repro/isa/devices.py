"""I/O devices: the machine's taint sources and sinks.

Devices model the paper's tag-insertion points (Section III): bytes read
from the network carry *netflow* tags, bytes read from files carry *file*
tags, and so on.  A device's :meth:`~Device.read` returns ``(value, tag)``
-- the tag (or ``None`` for untainted data) is what the machine turns into
an ``INSERT`` flow event.  :meth:`~Device.write` consumes a byte and may
return a sink location so the machine can emit the outgoing copy flow
(e.g. bytes written to a file remain trackable).
"""

from __future__ import annotations

import abc
from typing import Hashable, List, Optional, Tuple

from repro.dift.shadow import Location
from repro.dift.tags import Tag, TagAllocator, TagTypes


class Device(abc.ABC):
    """One port-mapped I/O endpoint."""

    name: str = "device"

    def read(self) -> Tuple[int, Optional[Tag]]:
        """Return ``(byte, tag-or-None)``; EOF reads return ``(0, None)``."""
        return 0, None

    def write(self, value: int) -> Optional[Location]:
        """Consume a byte; return the sink location, if trackable."""
        return None


class NullDevice(Device):
    """Reads zeros, discards writes."""

    name = "null"


class NetworkDevice(Device):
    """A network connection delivering a payload of tainted bytes.

    All bytes of one connection share one *netflow* tag (a DIFT tags per
    connection, not per packet).  Bytes written back are recorded as the
    outbound stream.
    """

    name = "network"

    def __init__(
        self,
        payload: bytes,
        allocator: TagAllocator,
        origin: Hashable = ("10.245.44.43", 443),
        tag_type: str = TagTypes.NETFLOW,
    ):
        self.payload = payload
        self.tag = allocator.fresh(tag_type, origin=origin)
        self.origin = origin
        self._cursor = 0
        self.sent: List[int] = []
        self._out_offset = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.payload)

    @property
    def bytes_delivered(self) -> int:
        return self._cursor

    def read(self) -> Tuple[int, Optional[Tag]]:
        if self.exhausted:
            return 0, None
        value = self.payload[self._cursor]
        self._cursor += 1
        return value, self.tag

    def write(self, value: int) -> Optional[Location]:
        self.sent.append(value & 0xFF)
        location: Location = ("net_out", (self.origin, self._out_offset))
        self._out_offset += 1
        return location


class FileDevice(Device):
    """A file readable and writable byte-by-byte, tagging reads by file id."""

    name = "file"

    def __init__(
        self,
        file_id: int,
        data: bytes,
        allocator: TagAllocator,
        tag_type: str = TagTypes.FILE,
    ):
        self.file_id = file_id
        self.data = data
        self.tag = allocator.fresh(tag_type, origin=("file", file_id))
        self._cursor = 0
        self.written = bytearray()

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.data)

    def read(self) -> Tuple[int, Optional[Tag]]:
        if self.exhausted:
            return 0, None
        value = self.data[self._cursor]
        self._cursor += 1
        return value, self.tag

    def write(self, value: int) -> Optional[Location]:
        offset = len(self.written)
        self.written.append(value & 0xFF)
        return ("file", (self.file_id, offset))


class OutputDevice(Device):
    """Write-only sink that keeps everything it receives (e.g. a console)."""

    def __init__(self, name: str = "out"):
        self.name = name
        self.received: List[int] = []

    def write(self, value: int) -> Optional[Location]:
        offset = len(self.received)
        self.received.append(value & 0xFF)
        return ("dev", (self.name, offset))
