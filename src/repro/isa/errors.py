"""Faults raised by the ISA substrate."""

from __future__ import annotations


class MachineFault(Exception):
    """Base class for everything the machine or assembler can raise."""


class SegmentationFault(MachineFault):
    """Memory access outside the address space."""

    def __init__(self, address: int, size: int):
        super().__init__(f"address {address:#x} outside memory of {size} bytes")
        self.address = address
        self.size = size


class InvalidInstructionError(MachineFault):
    """Malformed instruction or operand at execution time."""


class AssemblerError(MachineFault):
    """Syntax or semantic error in assembly text."""

    def __init__(self, message: str, line_number: int | None = None):
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


class ExecutionLimitExceeded(MachineFault):
    """The machine ran past its step budget (runaway program guard)."""
