"""A small RISC-like machine standing in for QEMU/PANDA instruction streams.

The MITOS evaluation consumes instruction-level traces produced by PANDA's
whole-system record/replay.  This package provides the equivalent substrate
at laptop scale: a byte-addressable register machine
(:class:`~repro.isa.machine.Machine`) with a text assembler, devices that
model taint sources (network, files, process memory), and CFG /
post-dominator analysis used to scope control dependencies the standard
(DYTAN-style) way.

The machine's sole output contract is a stream of
:class:`~repro.dift.flows.FlowEvent` objects -- exactly what the DIFT layer
consumes -- so any workload expressible as a program exercises the same
propagation code paths the paper's stack did.
"""

from repro.isa.errors import (
    AssemblerError,
    InvalidInstructionError,
    MachineFault,
    SegmentationFault,
)
from repro.isa.memory import Memory
from repro.isa.instructions import Instruction, Op, Program
from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.devices import FileDevice, NetworkDevice, NullDevice, OutputDevice

__all__ = [
    "MachineFault",
    "SegmentationFault",
    "InvalidInstructionError",
    "AssemblerError",
    "Memory",
    "Instruction",
    "Op",
    "Program",
    "assemble",
    "Machine",
    "NetworkDevice",
    "FileDevice",
    "NullDevice",
    "OutputDevice",
]
