"""Two-pass text assembler for the ISA.

Syntax, one statement per line::

    ; comment
    label:
        movi r0, 0x100      ; registers r0..r15, decimal or 0x hex imms
        lb   r1, r0, 0      ; rd, base, offset
        beq  r1, r2, done   ; branch targets are labels
    done:
        halt

Directives::

    .org  ADDRESS           ; set the data cursor
    .byte V1, V2, ...       ; emit raw bytes at the cursor
    .ascii "text"           ; emit ASCII bytes at the cursor
    .zero N                 ; emit N zero bytes

Directives build the program's initial data image (``Program.data``);
instructions build its text.  Labels may prefix an instruction on the same
line (``loop: addi r1, r1, 1``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.isa.errors import AssemblerError
from repro.isa.instructions import (
    CONDITIONAL_BRANCHES,
    OPERAND_COUNTS,
    REGISTER_NAMES,
    Instruction,
    Op,
    Program,
)

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: operand slots that hold a branch target label, per opcode
_LABEL_SLOTS = {op: (2,) for op in CONDITIONAL_BRANCHES}
_LABEL_SLOTS[Op.JMP] = (0,)

#: operand slots that must hold registers, per opcode
_REGISTER_SLOTS: Dict[Op, Tuple[int, ...]] = {
    Op.MOVI: (0,),
    Op.MOV: (0, 1),
    Op.ADDI: (0, 1),
    Op.LB: (0, 1),
    Op.SB: (0, 1),
    Op.BEQ: (0, 1),
    Op.BNE: (0, 1),
    Op.BLT: (0, 1),
    Op.BGE: (0, 1),
    Op.IN: (0,),
    Op.OUT: (0,),
    Op.JMP: (),
    Op.NOP: (),
    Op.HALT: (),
}
for _alu in (Op.ADD, Op.SUB, Op.MUL, Op.XOR, Op.AND, Op.OR, Op.SHL, Op.SHR):
    _REGISTER_SLOTS[_alu] = (0, 1, 2)


def _strip_comment(line: str) -> str:
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif ch == ";" and not in_string:
            return line[:i]
    return line


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"expected integer, got {token!r}", line_number)


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text.strip() else []


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises :class:`AssemblerError` with the offending line number on any
    syntax problem, unknown opcode, bad register, duplicate label, or
    unresolved branch target.
    """
    instructions: List[Tuple[Op, List[object], int]] = []
    labels: Dict[str, int] = {}
    data: Dict[int, bytes] = {}
    cursor = 0

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        # leading labels (possibly several, possibly alone on the line)
        while ":" in line:
            head, _, rest = line.partition(":")
            head = head.strip()
            if not _LABEL_RE.match(head):
                break
            if head in labels:
                raise AssemblerError(f"duplicate label {head!r}", line_number)
            labels[head] = len(instructions)
            line = rest.strip()
        if not line:
            continue
        if line.startswith("."):
            cursor = _assemble_directive(line, data, cursor, line_number)
            continue
        mnemonic, _, operand_text = line.partition(" ")
        try:
            op = Op(mnemonic.lower())
        except ValueError:
            raise AssemblerError(f"unknown opcode {mnemonic!r}", line_number)
        operands = _split_operands(operand_text)
        if len(operands) != OPERAND_COUNTS[op]:
            raise AssemblerError(
                f"{op.value} expects {OPERAND_COUNTS[op]} operands, "
                f"got {len(operands)}",
                line_number,
            )
        parsed: List[object] = []
        for slot, token in enumerate(operands):
            if slot in _REGISTER_SLOTS.get(op, ()):
                if token not in REGISTER_NAMES:
                    raise AssemblerError(
                        f"operand {slot} of {op.value} must be a register, "
                        f"got {token!r}",
                        line_number,
                    )
                parsed.append(token)
            elif slot in _LABEL_SLOTS.get(op, ()):
                parsed.append(token)  # resolved in the second pass
            else:
                parsed.append(_parse_int(token, line_number))
        instructions.append((op, parsed, line_number))

    # second pass: resolve branch labels to instruction indices
    resolved: List[Instruction] = []
    for op, operands, line_number in instructions:
        final: List[object] = []
        for slot, value in enumerate(operands):
            if slot in _LABEL_SLOTS.get(op, ()):
                assert isinstance(value, str)
                if value not in labels:
                    raise AssemblerError(
                        f"undefined label {value!r}", line_number
                    )
                final.append(labels[value])
            else:
                final.append(value)
        resolved.append(Instruction(op, tuple(final)))

    return Program(
        instructions=tuple(resolved), labels=labels, data=data, source=source
    )


def _assemble_directive(
    line: str, data: Dict[int, bytes], cursor: int, line_number: int
) -> int:
    """Process one directive line, returning the new data cursor."""
    name, _, arg_text = line.partition(" ")
    name = name.lower()
    if name == ".org":
        return _parse_int(arg_text.strip(), line_number)
    if name == ".byte":
        values = [
            _parse_int(tok, line_number) for tok in _split_operands(arg_text)
        ]
        if not values:
            raise AssemblerError(".byte needs at least one value", line_number)
        for value in values:
            if not 0 <= value <= 255:
                raise AssemblerError(
                    f".byte value {value} out of range", line_number
                )
        blob = bytes(values)
    elif name == ".ascii":
        text = arg_text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError('.ascii needs a "quoted" string', line_number)
        blob = text[1:-1].encode("ascii")
    elif name == ".zero":
        count = _parse_int(arg_text.strip(), line_number)
        if count < 0:
            raise AssemblerError(".zero count must be >= 0", line_number)
        blob = bytes(count)
    else:
        raise AssemblerError(f"unknown directive {name!r}", line_number)
    data[cursor] = data.get(cursor, b"") + blob if cursor in data else blob
    return cursor + len(blob)
