"""Byte-addressable memory for the ISA machine."""

from __future__ import annotations

from repro.isa.errors import SegmentationFault


class Memory:
    """A flat byte-addressable address space with bounds checking."""

    def __init__(self, size: int = 1 << 16):
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self._size = size
        self._bytes = bytearray(size)

    @property
    def size(self) -> int:
        return self._size

    def _check(self, address: int, length: int = 1) -> None:
        if address < 0 or address + length > self._size:
            raise SegmentationFault(address, self._size)

    def read_byte(self, address: int) -> int:
        self._check(address)
        return self._bytes[address]

    def write_byte(self, address: int, value: int) -> None:
        self._check(address)
        self._bytes[address] = value & 0xFF

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, length)
        return bytes(self._bytes[address : address + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        self._bytes[address : address + len(data)] = data

    def read_word(self, address: int) -> int:
        """Little-endian 32-bit read."""
        self._check(address, 4)
        return int.from_bytes(self._bytes[address : address + 4], "little")

    def write_word(self, address: int, value: int) -> None:
        """Little-endian 32-bit write."""
        self._check(address, 4)
        self._bytes[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little"
        )

    def fill(self, address: int, length: int, value: int = 0) -> None:
        self._check(address, length)
        self._bytes[address : address + length] = bytes([value & 0xFF]) * length
