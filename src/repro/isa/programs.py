"""Canonical programs exercising each flow class.

These are the micro-kernels the paper's discussion revolves around:

* :func:`lookup_table_translate` -- Fig. 1's address-dependency example
  (format conversion through a lookup table),
* :func:`rc4_like_decode` -- a data-keyed table-lookup decode loop, the
  indirect-flow-heavy shape of RC4/encoding stages in the Metasploit
  payloads of Section V-C,
* :func:`tainted_branch_copy` -- the classic control-dependency example
  ``a = 0; if (b == 1) { a = 1; }`` from the introduction,
* :func:`memcpy_program` / :func:`checksum_program` -- pure direct-flow
  kernels (copy / computation dependencies),
* :func:`network_download` / :func:`file_copy` -- device-driven taint
  insertion loops.

Each builder returns an assembled :class:`~repro.isa.instructions.Program`;
the register conventions are internal to each program.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.instructions import Program


def lookup_table_translate(
    input_addr: int, table_addr: int, output_addr: int, length: int
) -> Program:
    """Fig. 1: ``output[i] = table[input[i]]`` over ``length`` bytes.

    The inner load's address is data-dependent on the (tainted) input
    byte, so every output byte is reached only through an address
    dependency -- the exact blindspot motivating MITOS.
    """
    return assemble(
        f"""
        ; Fig. 1 address-dependency example
        movi r0, {input_addr}
        movi r1, {output_addr}
        movi r2, {length}
        movi r3, {table_addr}
        movi r8, 1
loop:   beq  r2, r7, done
        lb   r4, r0, 0      ; tainted input byte
        add  r5, r3, r4     ; table base + byte: r5 inherits the taint
        lb   r6, r5, 0      ; address dep: r5 -> loaded byte
        sb   r6, r1, 0
        addi r0, r0, 1
        addi r1, r1, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def rc4_like_decode(
    src_addr: int, dst_addr: int, length: int, sbox_addr: int
) -> Program:
    """Data-keyed keystream decode: ``dst[i] = src[i] ^ sbox[j]``, ``j += src[i]``.

    The keystream index depends on the ciphertext, so the decode output is
    only fully taintable through address dependencies -- the shape of the
    RC4-encoded Metasploit stagers in the paper's case study.
    """
    return assemble(
        f"""
        ; RC4-like decode loop (address-dependency heavy)
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r2, {length}
        movi r3, {sbox_addr}
        movi r8, 1
        movi r9, 0          ; j
        movi r10, 255
loop:   beq  r2, r7, done
        lb   r4, r0, 0      ; ciphertext byte
        add  r9, r9, r4     ; j += byte (j now tainted)
        and  r9, r9, r10
        add  r5, r3, r9     ; sbox + j
        lb   r6, r5, 0      ; keystream byte via tainted address
        xor  r4, r4, r6     ; plaintext
        sb   r4, r1, 0
        addi r0, r0, 1
        addi r1, r1, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def tainted_branch_copy(src_addr: int, dst_addr: int, length: int) -> Program:
    """Control-dependency kernel: ``dst[i] = (src[i] != 0) ? 1 : 0``.

    The stored value is written by a constant move whose execution is
    decided by the tainted byte -- information flows only through the
    control dependency, the paper's introductory example.
    """
    return assemble(
        f"""
        ; control-dependency copy: a = 0; if (b != 0) a = 1
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r2, {length}
        movi r8, 1
loop:   beq  r2, r7, done
        lb   r4, r0, 0      ; tainted byte b
        movi r5, 0          ; a = 0
        bne  r4, r7, set1   ; tainted condition
        jmp  store
set1:   movi r5, 1          ; a = 1 (control-dependent write)
store:  sb   r5, r1, 0
        addi r0, r0, 1
        addi r1, r1, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def memcpy_program(src_addr: int, dst_addr: int, length: int) -> Program:
    """Plain byte copy loop -- direct copy dependencies only."""
    return assemble(
        f"""
        ; memcpy: direct flows only
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r2, {length}
        movi r8, 1
loop:   beq  r2, r7, done
        lb   r4, r0, 0
        sb   r4, r1, 0
        addi r0, r0, 1
        addi r1, r1, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def checksum_program(src_addr: int, length: int) -> Program:
    """Sum all bytes into r5 -- computation dependencies only."""
    return assemble(
        f"""
        ; checksum: computation dependencies
        movi r0, {src_addr}
        movi r2, {length}
        movi r5, 0
        movi r8, 1
loop:   beq  r2, r7, done
        lb   r4, r0, 0
        add  r5, r5, r4
        addi r0, r0, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def network_download(buffer_addr: int, length: int, port: int = 0) -> Program:
    """Read ``length`` bytes from a network device into a buffer."""
    return assemble(
        f"""
        ; download loop: taint insertion from the network device
        movi r0, {buffer_addr}
        movi r2, {length}
        movi r8, 1
loop:   beq  r2, r7, done
        in   r4, {port}
        sb   r4, r0, 0
        addi r0, r0, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def rle_decode(src_addr: int, dst_addr: int, pairs: int) -> Program:
    """Run-length decoding: ``(count, value)`` pairs expand to runs.

    The paper lists compression/decompression among the operations where
    "indirect flows are expected to be the rule rather than the
    exception": here the *value* flows directly, but each run's *length*
    -- and therefore which output bytes exist at all -- flows only
    through the tainted loop condition (control dependencies).
    """
    return assemble(
        f"""
        ; RLE decode: per-pair inner loop guarded by a tainted count
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r2, {pairs}
        movi r8, 1
pair:   beq  r2, r7, done
        lb   r3, r0, 0      ; run length (tainted)
        lb   r4, r0, 1      ; run value (tainted)
        addi r0, r0, 2
emit:   beq  r3, r7, next   ; tainted loop condition
        sb   r4, r1, 0
        addi r1, r1, 1
        sub  r3, r3, r8
        jmp  emit
next:   sub  r2, r2, r8
        jmp  pair
done:   halt
        """
    )


def header_parse(src_addr: int, dst_addr: int) -> Program:
    """A protocol-header switch: per-type handlers fill an output field.

    The "switch statements" shape from Section II: the tainted type byte
    decides which handler runs, so the parsed field carries control
    dependencies from the header even when the handler stores a constant.
    """
    return assemble(
        f"""
        ; switch (header.type) {{ case 1: ...; case 2: ...; default: ... }}
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r9, 1
        movi r10, 2
        lb   r4, r0, 0      ; type byte (tainted)
        beq  r4, r9, t1
        beq  r4, r10, t2
        movi r5, 0xEE       ; default: unknown-type marker
        jmp  store
t1:     lb   r5, r0, 1      ; type 1: field A
        jmp  store
t2:     lb   r5, r0, 2      ; type 2: field B
store:  sb   r5, r1, 0
        halt
        """
    )


def stack_churn(
    src_addr: int, stack_base: int, iterations: int
) -> Program:
    """The stack-pointer-tainting scenario (Section IV-B1 / Slowinska-Bos).

    A tainted byte (e.g. a variable-sized array's length) flows into the
    stack pointer; every subsequent push/pop then carries an address
    dependency from the tainted pointer, so an
    unconditionally-propagating DIFT taints *everything on the stack* --
    "the stack is heavily accessed" -- and system entropy collapses.
    MITOS caps the pointer tag's propagation once its marginal cost turns
    positive.
    """
    return assemble(
        f"""
        ; stack-pointer tainting: sp += tainted length byte
        movi r0, {src_addr}
        movi r10, {stack_base}
        movi r12, 15
        lb   r4, r0, 0      ; tainted length byte
        and  r4, r4, r12    ; bound the offset
        add  r10, r10, r4   ; the stack pointer is now tainted
        movi r2, {iterations}
        movi r8, 1
loop:   beq  r2, r7, done
        movi r5, 0          ; the pushed value itself is clean...
        sb   r5, r10, 0     ; ...so the push taints only via the sp addr dep
        lb   r6, r10, 0     ; pop/peek: address dep again
        addi r10, r10, 1    ; sp keeps its taint through the arithmetic
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def file_copy(
    length: int, in_port: int = 1, out_port: int = 2
) -> Program:
    """Stream ``length`` bytes from one file device to another."""
    return assemble(
        f"""
        ; file-to-file copy through registers
        movi r2, {length}
        movi r8, 1
loop:   beq  r2, r7, done
        in   r4, {in_port}
        out  r4, {out_port}
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )
