"""Disassembler: programs back to assembly text.

Round-trips with :mod:`repro.isa.assembler`: ``assemble(disassemble(p))``
reproduces ``p``'s instructions exactly (labels are regenerated as
``L<index>``; data images are re-emitted as ``.org``/``.byte``
directives).  Used for trace debugging and by the round-trip property
tests.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.isa.instructions import CONDITIONAL_BRANCHES, Instruction, Op, Program

#: operand slots that hold an instruction-index target, per opcode
_TARGET_SLOTS = {op: 2 for op in CONDITIONAL_BRANCHES}
_TARGET_SLOTS[Op.JMP] = 0


def _branch_targets(program: Program) -> Set[int]:
    targets: Set[int] = set()
    for instruction in program.instructions:
        slot = _TARGET_SLOTS.get(instruction.op)
        if slot is not None:
            targets.add(int(instruction.operands[slot]))  # type: ignore[arg-type]
    return targets


def disassemble(program: Program) -> str:
    """Render a program as assemblable text."""
    lines: List[str] = []
    for address in sorted(program.data):
        lines.append(f".org {address}")
        blob = program.data[address]
        for start in range(0, len(blob), 8):
            chunk = blob[start : start + 8]
            values = ", ".join(str(b) for b in chunk)
            lines.append(f".byte {values}")
    labels: Dict[int, str] = {
        index: f"L{index}" for index in _branch_targets(program)
    }
    for index, instruction in enumerate(program.instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append("    " + _render(instruction, labels))
    # a target just past the last instruction (loop exits) is a trailing
    # label; the assembler resolves it to index == len(instructions)
    end = len(program.instructions)
    if end in labels:
        lines.append(f"{labels[end]}:")
    return "\n".join(lines) + "\n"


def _render(instruction: Instruction, labels: Dict[int, str]) -> str:
    slot = _TARGET_SLOTS.get(instruction.op)
    parts: List[str] = []
    for position, operand in enumerate(instruction.operands):
        if slot is not None and position == slot:
            parts.append(labels[int(operand)])  # type: ignore[arg-type]
        else:
            parts.append(str(operand))
    if not parts:
        return instruction.op.value
    return f"{instruction.op.value} " + ", ".join(parts)
