"""Seeded crash schedules for the multi-process cluster harness.

The fault injector (:mod:`repro.faults.injector`) perturbs an event
*stream*; a :class:`CrashSchedule` perturbs a *fleet*: it names the
request indices at which whole shard processes die mid-load.  Schedules
are plain data, built either explicitly (tests pinning a scenario) or
from a seed (sweeps), so a kill-and-recover run is reproducible down to
the exact request between whose response and successor the SIGKILL
lands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)


@dataclass(frozen=True)
class CrashEvent:
    """One planned shard death."""

    #: fire just before the harness issues this request index
    at_request: int
    #: which shard process dies
    shard: int
    #: True = SIGKILL (no drain, no final checkpoint); False = SIGTERM
    hard: bool = True


class CrashSchedule:
    """An ordered plan of shard crashes keyed by request index."""

    def __init__(self, events: Iterable[CrashEvent] = ()):
        self._by_index: Dict[int, List[CrashEvent]] = {}
        count = 0
        for event in events:
            if event.at_request < 0:
                raise ValueError(
                    f"at_request must be >= 0, got {event.at_request}"
                )
            if event.shard < 0:
                raise ValueError(f"shard must be >= 0, got {event.shard}")
            self._by_index.setdefault(event.at_request, []).append(event)
            count += 1
        self._count = count

    @classmethod
    def seeded(
        cls,
        seed: int,
        shards: int,
        requests: int,
        crashes: int = 1,
        hard: bool = True,
        shard_of: Optional[Callable[[int], int]] = None,
    ) -> "CrashSchedule":
        """A reproducible schedule of ``crashes`` deaths mid-load.

        Crash points are drawn from the middle half of the request
        range, so every crash has traffic both before it (state to
        lose/recover) and after it (degraded answers to observe).

        Victims are uniform over ``shards`` by default; pass
        ``shard_of`` (request index -> owning shard) to kill the shard
        that owns the traffic at each crash point instead -- on skewed
        workloads a uniform pick can land on an idle shard, which
        crashes nothing anyone would notice.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if requests < 4:
            raise ValueError(f"requests must be >= 4, got {requests}")
        if crashes < 0:
            raise ValueError(f"crashes must be >= 0, got {crashes}")
        rng = random.Random(seed)
        low, high = requests // 4, (3 * requests) // 4
        span = list(range(low, max(low + 1, high)))
        picks = sorted(rng.sample(span, min(crashes, len(span))))
        events = [
            CrashEvent(
                at_request=index,
                shard=(
                    shard_of(index)
                    if shard_of is not None
                    else rng.randrange(shards)
                ),
                hard=hard,
            )
            for index in picks
        ]
        return cls(events)

    def due(self, request_index: int) -> Sequence[CrashEvent]:
        """The crashes scheduled just before this request index."""
        return self._by_index.get(request_index, ())

    def shards_hit(self) -> Set[int]:
        """Every shard some crash in the schedule targets."""
        return {
            event.shard
            for events in self._by_index.values()
            for event in events
        }

    def __iter__(self) -> Iterator[CrashEvent]:
        for index in sorted(self._by_index):
            yield from self._by_index[index]

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"CrashSchedule({list(self)!r})"


__all__ = ["CrashEvent", "CrashSchedule"]
