"""Seeded fault injection and resilience wiring for the replay stack."""

from repro.faults.crashes import CrashEvent, CrashSchedule
from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultStats,
    TransientFault,
)
from repro.faults.resilience import Resilience

__all__ = [
    "CrashEvent",
    "CrashSchedule",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "Resilience",
    "TransientFault",
]
