"""Deterministic, seeded fault injection for the replay stack.

The APT-detection line of work (Sahabandu et al., Moothedath et al.)
models DIFT as a long-running adversarial process: the defender keeps
tracking through partial information and disruption.  This module makes
that disruption reproducible.  A :class:`FaultInjector` can

* perturb a recorded event stream -- drop, duplicate, corrupt, and
  reorder events (:meth:`FaultInjector.perturb_recording`),
* raise transient exceptions inside replayer plugins
  (:meth:`FaultInjector.maybe_plugin_fault`, handled by the
  :class:`~repro.replay.supervisor.PluginSupervisor`),
* lose gossip messages and crash subsystem nodes in
  :mod:`repro.distributed`.

Every decision is a pure function of ``(seed, site, index)`` via a
keyed hash, **not** of a shared RNG sequence.  That property is
load-bearing: a replay resumed from a checkpoint re-derives exactly the
faults the killed run would have seen, because the draws do not depend
on how many other draws happened first.  The hash is blake2b rather
than CRC32: CRC32 is linear, so two keys differing in one positional
byte (e.g. retry ``attempt`` 0 vs 1) would produce digests differing by
a *fixed* XOR constant -- at rate 0.5 a fault would then either always
or never clear on retry.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.dift.flows import FlowEvent
from repro.replay.record import Recording


class TransientFault(RuntimeError):
    """An injected failure that may succeed when the operation is retried."""


@dataclass(frozen=True)
class FaultConfig:
    """Per-category fault probabilities (all in ``[0, 1]``) plus the seed.

    Stream faults (``drop``/``duplicate``/``corrupt``/``reorder``) apply
    per recorded event; ``plugin_fault_rate`` applies per plugin dispatch;
    ``message_loss_rate`` applies per gossip send attempt;
    ``node_crash_rate`` applies per routed cluster event.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    plugin_fault_rate: float = 0.0
    message_loss_rate: float = 0.0
    node_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{f.name} must be in [0, 1], got {value}"
                )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultConfig":
        """One dial for everything (the CLI's ``--inject-faults RATE``).

        ``rate`` is split evenly across the four stream faults so the
        expected fraction of perturbed events is ``rate``; plugin faults
        and gossip losses each fire at ``rate`` directly.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        per_stream = rate / 4.0
        return cls(
            seed=seed,
            drop_rate=per_stream,
            duplicate_rate=per_stream,
            corrupt_rate=per_stream,
            reorder_rate=per_stream,
            plugin_fault_rate=rate,
            message_loss_rate=rate,
            node_crash_rate=rate / 20.0,
        )

    @property
    def perturbs_stream(self) -> bool:
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.corrupt_rate > 0
            or self.reorder_rate > 0
        )


@dataclass
class FaultStats:
    """Counts of every fault actually injected."""

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    reordered: int = 0
    plugin_faults: int = 0
    messages_lost: int = 0
    node_crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "reordered": self.reordered,
            "plugin_faults": self.plugin_faults,
            "messages_lost": self.messages_lost,
            "node_crashes": self.node_crashes,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


class FaultInjector:
    """Seeded fault source shared by the replay and distributed layers."""

    def __init__(self, config: FaultConfig):
        self.config = config
        self.stats = FaultStats()

    def reset(self) -> None:
        """Fresh counters; the draws themselves are stateless."""
        self.stats = FaultStats()

    # -- the one source of randomness -------------------------------------

    def _chance(self, rate: float, *key: object) -> bool:
        """Deterministic Bernoulli(rate) draw keyed on (seed, *key)."""
        if rate <= 0.0:
            return False
        return self._digest(*key) / 2**64 < rate

    def _digest(self, *key: object) -> int:
        raw = hashlib.blake2b(
            repr((self.config.seed,) + key).encode(), digest_size=8
        ).digest()
        return int.from_bytes(raw, "big")

    # -- recorded-event stream faults --------------------------------------

    def _corrupt_event(self, event: FlowEvent, index: int) -> FlowEvent:
        """A still-schema-valid event written to the wrong destination."""
        kind, value = event.destination[0], event.destination[1]
        if kind == "mem" and isinstance(value, int):
            destination = (
                "mem", value ^ (1 + self._digest("corrupt-addr", index) % 0xFF)
            )
        else:
            destination = ("mem", self._digest("corrupt-addr", index) % 0x10000)
        return dataclasses.replace(event, destination=destination)

    def perturb_events(
        self, events: Iterable[FlowEvent]
    ) -> List[FlowEvent]:
        """Drop/duplicate/corrupt/reorder a stream, deterministically.

        Reordering holds an event back and emits it after the next
        surviving event (a one-slot delay, the way an out-of-order log
        shipper would misbehave).
        """
        config = self.config
        out: List[FlowEvent] = []
        held: FlowEvent | None = None
        for index, event in enumerate(events):
            if self._chance(config.drop_rate, "drop", index):
                self.stats.dropped += 1
                continue
            if self._chance(config.corrupt_rate, "corrupt", index):
                event = self._corrupt_event(event, index)
                self.stats.corrupted += 1
            if held is None and self._chance(
                config.reorder_rate, "reorder", index
            ):
                held = event
                self.stats.reordered += 1
                continue
            out.append(event)
            if self._chance(config.duplicate_rate, "duplicate", index):
                out.append(event)
                self.stats.duplicated += 1
            if held is not None:
                out.append(held)
                held = None
        if held is not None:
            out.append(held)
        return out

    def perturb_recording(self, recording: Recording) -> Recording:
        """A new :class:`Recording` with the perturbed event stream."""
        meta = dict(recording.meta)
        meta["fault_seed"] = self.config.seed
        return Recording(
            events=self.perturb_events(recording), meta=meta
        )

    # -- plugin faults ------------------------------------------------------

    def maybe_plugin_fault(
        self, site: str, index: int, attempt: int = 0
    ) -> None:
        """Raise a :class:`TransientFault` at ``(site, index)`` per config.

        Each retry ``attempt`` redraws independently, so a supervised
        retry of the same dispatch usually succeeds -- a transient
        failure that clears on retry -- but can (rarely, and
        deterministically) fail several times in a row.
        """
        if self._chance(
            self.config.plugin_fault_rate, "plugin", site, index, attempt
        ):
            self.stats.plugin_faults += 1
            raise TransientFault(
                f"injected transient fault in {site!r} at event {index} "
                f"(attempt {attempt})"
            )

    # -- distributed faults -------------------------------------------------

    def message_lost(
        self, round_index: int, sender: int, target: int, attempt: int
    ) -> bool:
        """Whether one gossip send attempt times out (is lost)."""
        lost = self._chance(
            self.config.message_loss_rate,
            "gossip", round_index, sender, target, attempt,
        )
        if lost:
            self.stats.messages_lost += 1
        return lost

    def node_crashes(self, event_index: int) -> bool:
        """Whether a node crash fires at this point of the cluster replay."""
        crashed = self._chance(
            self.config.node_crash_rate, "crash", event_index
        )
        if crashed:
            self.stats.node_crashes += 1
        return crashed

    def pick(self, n: int, *key: object) -> int:
        """Deterministic choice in ``range(n)`` (e.g. which node crashes)."""
        if n < 1:
            raise ValueError(f"cannot pick from {n} options")
        # salted so the choice is independent of the _chance draw that
        # typically shares the same key
        return self._digest("pick", *key) % n
