"""The resilience bundle: one object wiring faults + supervision + checkpoints.

:class:`Resilience` is to robustness what
:class:`~repro.obs.bundle.Observability` is to instrumentation: an optional
bundle :class:`~repro.faros.system.FarosSystem` accepts and threads through
the replay stack.  ``Resilience.create(...)`` builds the whole thing from
the CLI's flat flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.faults.injector import FaultConfig, FaultInjector
from repro.replay.supervisor import PluginSupervisor


@dataclass
class Resilience:
    """Optional robustness features for one :class:`FarosSystem` run.

    Attributes
    ----------
    injector:
        Seeded fault source; perturbs the recording before replay and
        raises transient plugin faults (``None`` = no injected faults).
    supervisor:
        Plugin fault barrier (``None`` = original fail-fast behaviour).
    checkpoint_every:
        Write a checkpoint after every N processed events (``None`` = no
        checkpointing).
    checkpoint_path:
        Where checkpoints land (required when ``checkpoint_every`` set).
    resume_from:
        A checkpoint file to restore before replaying; the replay then
        continues from the checkpointed event index.
    """

    injector: Optional[FaultInjector] = None
    supervisor: Optional[PluginSupervisor] = None
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[Path] = None
    resume_from: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, "
                    f"got {self.checkpoint_every}"
                )
            if self.checkpoint_path is None:
                raise ValueError(
                    "checkpoint_every requires a checkpoint_path"
                )

    @classmethod
    def create(
        cls,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
        supervisor_policy: Optional[str] = None,
        max_retries: int = 2,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        resume_from: Optional[Union[str, Path]] = None,
    ) -> "Resilience":
        """Build a bundle from flat settings (the CLI flag surface).

        A supervisor is created whenever a policy is named *or* faults
        are injected (injected plugin faults without a supervisor would
        just kill the replay, which is never what ``--inject-faults``
        means).
        """
        injector = (
            FaultInjector(FaultConfig.uniform(fault_rate, seed=fault_seed))
            if fault_rate > 0.0
            else None
        )
        supervisor = None
        if supervisor_policy is not None or injector is not None:
            supervisor = PluginSupervisor(
                policy=supervisor_policy or "skip-event",
                max_retries=max_retries,
                injector=injector,
            )
        return cls(
            injector=injector,
            supervisor=supervisor,
            checkpoint_every=checkpoint_every,
            checkpoint_path=(
                Path(checkpoint_path) if checkpoint_path is not None else None
            ),
            resume_from=Path(resume_from) if resume_from is not None else None,
        )
