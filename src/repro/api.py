"""The supported public API of the MITOS reproduction.

One import surface for the five things users do::

    from repro import api

    recording = api.load_recording("trace.jsonl.gz")        # 1. load
    system = api.build_system(policy="mitos", tau=0.5)      # 2. wire a stack
    result = api.replay(recording, options=api.ReplayOptions(engine="vector"))
    outcome = api.decide(                                   # 4. one decision
        [("netflow", 1, 4)], free_slots=3, pollution=120.0
    )
    api.serve(api.ServeOptions(port=7757, shards=4))        # 5. go online

Everything else under ``repro.*`` remains importable, but this module is
the *stable* surface: its names, their keyword-only signatures, and the
re-exported types are the compatibility contract
(``tests/test_api.py`` pins ``__all__``).  Configuration travels in the
typed option bundles of :mod:`repro.options`; the old flat keyword
arguments of ``replay()`` keep working for one release behind a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.core.decision import (
    Decision,
    MultiDecision,
    TagCandidate,
    decide_multi,
)
from repro.core.params import MitosParams
from repro.dift.tags import Tag
from repro.faros.config import POLICY_NAMES, FarosConfig
from repro.faros.system import FarosRunResult, FarosSystem
from repro.faults.resilience import Resilience
from repro.obs.bundle import Observability
from repro.options import (
    REPLAY_OPTION_NAMES,
    ClusterOptions,
    ReplayOptions,
    ServeOptions,
)
from repro.replay.record import Recording
from repro.replay.replayer import Replayer
from repro.serve.client import ServeClient
from repro.serve.server import MitosServer, ServerThread

__all__ = [
    # the six entry points
    "load_recording",
    "build_system",
    "replay",
    "decide",
    "serve",
    "cluster",
    # typed configuration
    "ReplayOptions",
    "ServeOptions",
    "ClusterOptions",
    # stable re-exported types
    "MitosParams",
    "FarosConfig",
    "FarosSystem",
    "FarosRunResult",
    "Recording",
    "Replayer",
    "Observability",
    "Resilience",
    "TagCandidate",
    "Decision",
    "MultiDecision",
    "MitosServer",
    "ServerThread",
    "ServeClient",
    "ClusterSupervisor",
    "ClusterRouter",
    "POLICY_NAMES",
]

PathLike = Union[str, Path]


def load_recording(path: PathLike) -> Recording:
    """Load a recorded flow-event trace (JSONL, gzip if ``.gz``)."""
    return Recording.load(str(path))


def _params_for(
    params: Optional[MitosParams],
    tau: float,
    alpha: float,
    quick_calibration: bool,
) -> MitosParams:
    if params is not None:
        return params
    from repro.experiments.common import experiment_params

    return experiment_params(quick=quick_calibration, tau=tau, alpha=alpha)


def build_system(
    *,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    engine: str = "scalar",
    degrade_at: Optional[float] = None,
    label: Optional[str] = None,
    observability: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
) -> FarosSystem:
    """Wire one complete DIFT stack (tracker, policy, pipeline, replayer).

    Either pass ``params`` explicitly or let the benchmark calibration
    derive them from ``tau``/``alpha`` (``quick_calibration`` anchors
    the decision boundary to test-sized workloads).
    """
    config = FarosConfig(
        params=_params_for(params, tau, alpha, quick_calibration),
        policy=policy,
        direct_via_policy=all_flows,
        label=label if label is not None else policy,
        degrade_at=degrade_at,
        engine=engine,
    )
    return FarosSystem(
        config, observability=observability, resilience=resilience
    )


def replay(
    recording: Union[Recording, PathLike],
    *,
    options: Optional[ReplayOptions] = None,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    **legacy: object,
) -> FarosRunResult:
    """Replay a recording (or its path) and return the run result.

    Execution knobs travel in ``options`` (a
    :class:`~repro.options.ReplayOptions`); the *what* -- params, policy,
    calibration -- stays flat.  Passing execution knobs flat
    (``replay(rec, engine="vector", limit=100)``) still works for one
    release and emits a :class:`DeprecationWarning`.
    """
    options = _coerce_replay_options(options, legacy)
    blockers = options.vector_blockers()
    if blockers:
        raise ValueError(
            "engine='vector' is incompatible with option(s) "
            + ", ".join(blockers)
            + " (per-event plugin/supervision contracts); use the scalar "
            "engine"
        )
    if not isinstance(recording, Recording):
        recording = load_recording(recording)
    observability = options.observability()
    system = build_system(
        params=params,
        policy=policy,
        tau=tau,
        alpha=alpha,
        quick_calibration=quick_calibration,
        all_flows=all_flows,
        engine=options.engine,
        degrade_at=options.degrade_at,
        observability=observability,
        resilience=options.resilience(),
    )
    try:
        return system.replay(recording, limit=options.limit)
    finally:
        if observability is not None:
            observability.close()
            if options.metrics_out is not None:
                observability.write_metrics(options.metrics_out)


def _coerce_replay_options(
    options: Optional[ReplayOptions], legacy: dict
) -> ReplayOptions:
    unknown = [name for name in legacy if name not in REPLAY_OPTION_NAMES]
    if unknown:
        raise TypeError(
            f"replay() got unexpected keyword argument(s) {sorted(unknown)}"
        )
    if not legacy:
        return options if options is not None else ReplayOptions()
    if options is not None:
        raise TypeError(
            "pass execution knobs either in options=ReplayOptions(...) or "
            f"flat, not both (flat: {sorted(legacy)})"
        )
    warnings.warn(
        "passing replay execution options as flat keyword arguments "
        f"({sorted(legacy)}) is deprecated; use "
        "replay(recording, options=ReplayOptions(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ReplayOptions(**legacy)


CandidateLike = Union[TagCandidate, Sequence[object]]


def decide(
    candidates: Sequence[CandidateLike],
    *,
    free_slots: int,
    pollution: float,
    params: Optional[MitosParams] = None,
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
) -> MultiDecision:
    """One MITOS multi-candidate decision (Eq. 8 + Algorithm 2), offline.

    Candidates are :class:`TagCandidate` objects or ``(tag_type, index,
    copies)`` tuples.  Returns the ranked
    :class:`~repro.core.decision.MultiDecision` -- the same object the
    tracker's policy produces during a replay, and (field for field) the
    same outcome the online service returns for an explicit-mode
    request.
    """
    resolved = _params_for(params, tau, alpha, quick_calibration)
    specs: list = []
    for candidate in candidates:
        if isinstance(candidate, TagCandidate):
            specs.append(candidate)
            continue
        parts = list(candidate)  # type: ignore[arg-type]
        if len(parts) != 3:
            raise ValueError(
                "candidates must be TagCandidate or (tag_type, index, "
                f"copies), got {candidate!r}"
            )
        tag_type, index, copies = parts
        specs.append(
            TagCandidate(Tag(str(tag_type), int(index)), str(tag_type), int(copies))  # type: ignore[arg-type]
        )
    return decide_multi(specs, free_slots, pollution, resolved)


def serve(
    options: Optional[ServeOptions] = None,
    *,
    background: bool = False,
    observability: Optional[Observability] = None,
    ready: Optional[Callable[[MitosServer], None]] = None,
) -> Optional[ServerThread]:
    """Run the online decision service (see ``docs/SERVING.md``).

    Blocking by default: installs SIGTERM/SIGINT handlers that drain
    gracefully, and returns when the server has stopped.  ``ready`` is
    called once the sockets are bound (so callers can report the actual
    port when ``port=0`` picked an ephemeral one).  With
    ``background=True`` the server runs on its own event-loop thread and
    the started :class:`~repro.serve.server.ServerThread` is returned
    (its ``.port`` is the bound port; call ``.stop()`` to drain).

    ``options.wire_format`` picks the decide/apply wire policy: the
    default ``"ndjson"`` negotiates NDJSON or binary per connection
    (clients opt into binary with the magic-byte hello), ``"binary"``
    rejects NDJSON decide/apply while keeping control ops reachable.
    """
    if options is None:
        options = ServeOptions()
    if observability is None:
        observability = options.observability()
    if background:
        thread = ServerThread(options, observability).start()
        if ready is not None:
            ready(thread.server)
        return thread
    import asyncio

    async def _main() -> None:
        server = MitosServer(options, observability)
        server.install_signal_handlers()
        await server.start()
        if ready is not None:
            ready(server)
        assert server._stop is not None
        await server._stop.wait()
        await server._shutdown()

    asyncio.run(_main())
    return None


def cluster(
    options: Optional[ClusterOptions] = None,
    *,
    backend: str = "process",
) -> ClusterSupervisor:
    """Start a supervised multi-process shard fleet (see ``docs/CLUSTER.md``).

    Spawns ``options.shards`` single-shard servers, waits until every
    one reports ready, and returns the running
    :class:`~repro.cluster.supervisor.ClusterSupervisor` -- health
    checks, crash recovery, and the gossip pump are already live.  Build
    a :class:`~repro.cluster.router.ClusterRouter` over it (e.g.
    ``ClusterRouter.for_supervisor(sup)``) to route decide traffic, and
    call ``.stop()`` (or use it as a context manager) to drain the
    fleet.  ``backend="thread"`` runs the shards as in-process server
    threads instead of child processes -- fast, deterministic, and what
    the tests use.
    """
    if options is None:
        options = ClusterOptions()
    return ClusterSupervisor(options, backend=backend).start()
