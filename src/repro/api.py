"""The supported public API of the MITOS reproduction.

One import surface for the five things users do::

    from repro import api

    recording = api.load_recording("trace.jsonl.gz")        # 1. load
    system = api.build_system(policy="mitos", tau=0.5)      # 2. wire a stack
    result = api.replay(recording, options=api.ReplayOptions(engine="vector"))
    outcome = api.decide(                                   # 4. one decision
        [("netflow", 1, 4)], free_slots=3, pollution=120.0
    )
    api.serve(api.ServeOptions(port=7757, shards=4))        # 5. go online

Everything else under ``repro.*`` remains importable, but this module is
the *stable* surface: its names, their keyword-only signatures, and the
re-exported types are the compatibility contract
(``tests/test_api.py`` pins ``__all__``).  Configuration travels in the
typed option bundles of :mod:`repro.options` only: the PR-5 shim that
accepted ``replay()`` execution knobs flat has completed its one
deprecation release, and flat keyword arguments now raise ``TypeError``
(see docs/CONTROL.md's migration note).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.builders import (
    build_faros_system,
    build_params,
    build_replay_system,
    finish_observability,
    vector_conflict,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.control import AdaptiveController, ParamUpdate
from repro.core.decision import (
    Decision,
    MultiDecision,
    TagCandidate,
    decide_multi,
)
from repro.core.params import MitosParams
from repro.dift.tags import Tag
from repro.faros.config import POLICY_NAMES, FarosConfig
from repro.faros.system import FarosRunResult, FarosSystem
from repro.faults.resilience import Resilience
from repro.obs.bundle import Observability
from repro.options import (
    ClusterOptions,
    ControlOptions,
    ReplayOptions,
    ServeOptions,
)
from repro.replay.record import Recording
from repro.replay.replayer import Replayer
from repro.serve.client import ServeClient
from repro.serve.server import MitosServer, ServerThread

__all__ = [
    # the six entry points
    "load_recording",
    "build_system",
    "replay",
    "decide",
    "serve",
    "cluster",
    # typed configuration
    "ReplayOptions",
    "ServeOptions",
    "ClusterOptions",
    "ControlOptions",
    # stable re-exported types
    "MitosParams",
    "FarosConfig",
    "FarosSystem",
    "FarosRunResult",
    "Recording",
    "Replayer",
    "Observability",
    "Resilience",
    "AdaptiveController",
    "ParamUpdate",
    "TagCandidate",
    "Decision",
    "MultiDecision",
    "MitosServer",
    "ServerThread",
    "ServeClient",
    "ClusterSupervisor",
    "ClusterRouter",
    "POLICY_NAMES",
]

PathLike = Union[str, Path]


def load_recording(path: PathLike) -> Recording:
    """Load a recorded flow-event trace (JSONL, gzip if ``.gz``)."""
    return Recording.load(str(path))


def build_system(
    *,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    engine: str = "scalar",
    degrade_at: Optional[float] = None,
    label: Optional[str] = None,
    observability: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
    control: Optional[ControlOptions] = None,
) -> FarosSystem:
    """Wire one complete DIFT stack (tracker, policy, pipeline, replayer).

    Either pass ``params`` explicitly or let the benchmark calibration
    derive them from ``tau``/``alpha`` (``quick_calibration`` anchors
    the decision boundary to test-sized workloads).  A
    :class:`~repro.options.ControlOptions` with ``enabled=True`` closes
    the adaptation loop: the system's ``.controller`` re-estimates the
    decision boundary on its cadence during replay.
    """
    return build_faros_system(
        params=params,
        policy=policy,
        tau=tau,
        alpha=alpha,
        quick_calibration=quick_calibration,
        all_flows=all_flows,
        engine=engine,
        degrade_at=degrade_at,
        label=label,
        observability=observability,
        resilience=resilience,
        control=control,
    )


def replay(
    recording: Union[Recording, PathLike],
    *,
    options: Optional[ReplayOptions] = None,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    **removed: object,
) -> FarosRunResult:
    """Replay a recording (or its path) and return the run result.

    Execution knobs travel in ``options`` (a
    :class:`~repro.options.ReplayOptions`); the *what* -- params, policy,
    calibration -- stays flat.  The PR-5 shim that accepted execution
    knobs flat (``replay(rec, engine="vector")``) is gone: any extra
    keyword argument raises ``TypeError``.
    """
    if removed:
        raise TypeError(
            "replay() got unexpected keyword argument(s) "
            f"{sorted(removed)}; execution options travel in "
            "options=ReplayOptions(...) (the flat-kwargs shim was "
            "removed after its deprecation release)"
        )
    if options is None:
        options = ReplayOptions()
    conflict = vector_conflict(options)
    if conflict:
        raise ValueError(conflict)
    if not isinstance(recording, Recording):
        recording = load_recording(recording)
    system, observability = build_replay_system(
        options,
        params=params,
        policy=policy,
        tau=tau,
        alpha=alpha,
        quick_calibration=quick_calibration,
        all_flows=all_flows,
    )
    try:
        return system.replay(recording, limit=options.limit)
    finally:
        finish_observability(options, observability)


CandidateLike = Union[TagCandidate, Sequence[object]]


def decide(
    candidates: Sequence[CandidateLike],
    *,
    free_slots: int,
    pollution: float,
    params: Optional[MitosParams] = None,
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
) -> MultiDecision:
    """One MITOS multi-candidate decision (Eq. 8 + Algorithm 2), offline.

    Candidates are :class:`TagCandidate` objects or ``(tag_type, index,
    copies)`` tuples.  Returns the ranked
    :class:`~repro.core.decision.MultiDecision` -- the same object the
    tracker's policy produces during a replay, and (field for field) the
    same outcome the online service returns for an explicit-mode
    request.
    """
    resolved = build_params(params, tau, alpha, quick_calibration)
    specs: list = []
    for candidate in candidates:
        if isinstance(candidate, TagCandidate):
            specs.append(candidate)
            continue
        parts = list(candidate)  # type: ignore[arg-type]
        if len(parts) != 3:
            raise ValueError(
                "candidates must be TagCandidate or (tag_type, index, "
                f"copies), got {candidate!r}"
            )
        tag_type, index, copies = parts
        specs.append(
            TagCandidate(Tag(str(tag_type), int(index)), str(tag_type), int(copies))  # type: ignore[arg-type]
        )
    return decide_multi(specs, free_slots, pollution, resolved)


def serve(
    options: Optional[ServeOptions] = None,
    *,
    background: bool = False,
    observability: Optional[Observability] = None,
    ready: Optional[Callable[[MitosServer], None]] = None,
) -> Optional[ServerThread]:
    """Run the online decision service (see ``docs/SERVING.md``).

    Blocking by default: installs SIGTERM/SIGINT handlers that drain
    gracefully, and returns when the server has stopped.  ``ready`` is
    called once the sockets are bound (so callers can report the actual
    port when ``port=0`` picked an ephemeral one).  With
    ``background=True`` the server runs on its own event-loop thread and
    the started :class:`~repro.serve.server.ServerThread` is returned
    (its ``.port`` is the bound port; call ``.stop()`` to drain).

    ``options.wire_format`` picks the decide/apply wire policy: the
    default ``"ndjson"`` negotiates NDJSON or binary per connection
    (clients opt into binary with the magic-byte hello), ``"binary"``
    rejects NDJSON decide/apply while keeping control ops reachable.
    """
    if options is None:
        options = ServeOptions()
    if observability is None:
        observability = options.observability()
    if background:
        thread = ServerThread(options, observability).start()
        if ready is not None:
            ready(thread.server)
        return thread
    import asyncio

    async def _main() -> None:
        server = MitosServer(options, observability)
        server.install_signal_handlers()
        await server.start()
        if ready is not None:
            ready(server)
        assert server._stop is not None
        await server._stop.wait()
        await server._shutdown()

    asyncio.run(_main())
    return None


def cluster(
    options: Optional[ClusterOptions] = None,
    *,
    backend: str = "process",
) -> ClusterSupervisor:
    """Start a supervised multi-process shard fleet (see ``docs/CLUSTER.md``).

    Spawns ``options.shards`` single-shard servers, waits until every
    one reports ready, and returns the running
    :class:`~repro.cluster.supervisor.ClusterSupervisor` -- health
    checks, crash recovery, and the gossip pump are already live.  Build
    a :class:`~repro.cluster.router.ClusterRouter` over it (e.g.
    ``ClusterRouter.for_supervisor(sup)``) to route decide traffic, and
    call ``.stop()`` (or use it as a context manager) to drain the
    fleet.  ``backend="thread"`` runs the shards as in-process server
    threads instead of child processes -- fast, deterministic, and what
    the tests use.
    """
    if options is None:
        options = ClusterOptions()
    return ClusterSupervisor(options, backend=backend).start()
