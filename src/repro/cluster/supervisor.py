"""Supervised multi-process MITOS shard fleet.

The :class:`ClusterSupervisor` turns ``N`` single-shard
:class:`~repro.serve.server.MitosServer` instances into one
fault-tolerant decision service:

* **spawn** -- each shard runs as its own process (``mitos-repro serve
  --shards 1`` on ephemeral ports) with a private checkpoint directory
  under the cluster's checkpoint root, or as an in-process
  :class:`~repro.serve.server.ServerThread` (the fast deterministic
  backend the tests use);
* **health-check** -- a monitor thread probes every shard's admin
  ``/readyz`` each ``health_interval``: a dead process is a crash, a
  reachable-but-not-ready shard (draining, or restoring a checkpoint)
  is unpublished but left alone, and ``hang_probes`` consecutive
  unreachable probes of a live process declare it hung and kill it;
* **failover** -- a crashed/hung shard is respawned with ``--resume``,
  so it restores the latest atomic checkpoint (falling back to the
  ``.prev`` file when the newest write was torn by the crash) and
  rejoins the ring with a bumped endpoint *generation*.  The router
  re-resolves endpoints per attempt, so recovery needs no client
  restarts;
* **gossip** -- between live shards the supervisor pumps each shard's
  *local* pollution over the serve protocol's ``gossip`` op (with a
  seeded loss rate, mirroring the simulation's ``loss_rate`` knob);
  every shard then decides stateful requests with local + believed-peer
  pollution, the multi-process version of
  :class:`~repro.distributed.gossip.PollutionGossip`.

Endpoints are the published routing surface: ``endpoint(i)`` is ``None``
exactly while shard *i* is down or not ready, which is what the
:class:`~repro.cluster.router.ClusterRouter` turns into bounded retries
and, past the retry budget, an explicit degraded answer.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.logging import get_logger
from repro.options import ClusterOptions
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread

logger = get_logger("repro.cluster")

#: supervisor-side floor for probe/poll sleeps
_POLL_INTERVAL = 0.02


@dataclass(frozen=True)
class Endpoint:
    """One published shard endpoint; generation bumps on every respawn."""

    shard: int
    host: str
    port: int
    admin_port: int
    generation: int


def _http_json(
    host: str, port: int, path: str, timeout: float
) -> Tuple[int, Dict[str, object]]:
    """GET an admin endpoint; ``(status, payload)`` or raises ``OSError``.

    4xx/5xx responses are *answers* (a 503 ``/readyz`` is a healthy
    liveness signal), so they come back as a status, not an exception.
    """
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        body = error.read()
        status = error.code
    try:
        payload = json.loads(body) if body else {}
    except ValueError:
        payload = {}
    if not isinstance(payload, dict):
        payload = {}
    return status, payload


class ProcessShard:
    """One shard server as a child process (the production backend).

    The child is ``mitos-repro serve`` on ephemeral ports; a reader
    thread scrapes the announced ``listening on host:port`` / ``admin on
    host:port`` lines (the same contract ``bench-serve``'s subprocess
    mode relies on) and keeps draining stdout so the child never blocks
    on a full pipe.
    """

    backend = "process"

    def __init__(self, index: int, options: ClusterOptions):
        self.index = index
        self.options = options
        self.port: Optional[int] = None
        self.admin_port: Optional[int] = None
        self._process: Optional[subprocess.Popen] = None
        self._ports_ready = threading.Event()

    def command(self) -> List[str]:
        serve = self.options.shard_options(self.index)
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", serve.host,
            "--port", "0",
            "--admin-port", "0",
            "--shards", "1",
            "--queue-depth", str(serve.queue_depth),
            "--batch-max", str(serve.batch_max),
            "--batch-deadline-us", str(serve.batch_deadline_us),
            "--policy", serve.policy,
            "--tau", str(serve.tau),
            "--alpha", str(serve.alpha),
            "--checkpoint-dir", str(serve.checkpoint_dir),
            "--checkpoint-every", str(serve.checkpoint_every),
            "--resume",
            "--drain-timeout", str(serve.drain_timeout),
            "--wire-format", serve.wire_format,
        ]
        if serve.quick_calibration:
            command.append("--quick-calibration")
        if serve.gc_freeze:
            command.append("--gc-freeze")
        control = serve.control
        if control is not None and control.enabled:
            command.extend(
                [
                    "--adapt",
                    "--adapt-mode", control.mode,
                    "--adapt-every", str(control.every),
                    "--adapt-target", str(control.target_pollution),
                    "--adapt-step", str(control.step),
                    "--adapt-seed", str(control.seed),
                ]
            )
            if not control.adapt_weights:
                command.append("--no-adapt-weights")
        return command

    def spawn(self) -> None:
        self.port = None
        self.admin_port = None
        self._ports_ready = threading.Event()
        serve = self.options.shard_options(self.index)
        Path(serve.checkpoint_dir).mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._process = subprocess.Popen(
            self.command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._pin_cpu(self._process.pid)
        reader = threading.Thread(
            target=self._read_output,
            args=(self._process,),
            name=f"shard-{self.index}-stdout",
            daemon=True,
        )
        reader.start()

    def _pin_cpu(self, pid: int) -> None:
        """Round-robin the shard onto one CPU (no-op where unsupported).

        Process shards are single event loops; pinning shard ``i`` to
        CPU ``i % cpu_count`` keeps each one's caches warm and stops the
        scheduler from stacking two hot shards on one core while others
        idle.  Best-effort: containers and non-Linux hosts without
        ``sched_setaffinity`` just skip it.
        """
        if not self.options.pin_cpus:
            return
        if not hasattr(os, "sched_setaffinity"):  # pragma: no cover
            return
        cpus = os.cpu_count() or 1
        if cpus < 2:
            # one CPU: pinning only removes scheduler freedom
            return
        try:
            os.sched_setaffinity(pid, {self.index % cpus})
        except OSError:  # pragma: no cover - permission-restricted env
            pass

    def _read_output(self, process: subprocess.Popen) -> None:
        assert process.stdout is not None
        for line in process.stdout:
            if line.startswith("listening on "):
                _, _, port_text = line.split()[-1].rpartition(":")
                self.port = int(port_text)
            elif line.startswith("admin on "):
                _, _, port_text = line.split()[-1].rpartition(":")
                self.admin_port = int(port_text)
            if self.port is not None and self.admin_port is not None:
                self._ports_ready.set()
        self._ports_ready.set()  # EOF: unblock waiters either way

    def wait_ports(self, timeout: float) -> bool:
        self._ports_ready.wait(timeout)
        return self.port is not None and self.admin_port is not None

    def poll(self) -> Optional[int]:
        """``None`` while the process runs, else its exit code."""
        if self._process is None:
            return -1
        return self._process.poll()

    def kill(self, hard: bool = True) -> None:
        """SIGKILL (hard) or SIGTERM-drain (soft) the child."""
        process = self._process
        if process is None or process.poll() is not None:
            return
        if hard:
            process.kill()
            process.wait()
        else:
            process.terminate()

    def reap(self, timeout: float) -> None:
        process = self._process
        if process is None:
            return
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


class ThreadShard:
    """One shard server on an in-process thread (the test backend).

    Same interface as :class:`ProcessShard`; ``kill(hard=True)`` maps to
    :meth:`~repro.serve.server.ServerThread.abort` -- no drain, no final
    checkpoint -- which is the closest in-process analogue of SIGKILL
    and keeps the crash-recovery tests fast and sandbox-friendly.
    """

    backend = "thread"

    def __init__(self, index: int, options: ClusterOptions):
        self.index = index
        self.options = options
        self.port: Optional[int] = None
        self.admin_port: Optional[int] = None
        self._server: Optional[ServerThread] = None

    def spawn(self) -> None:
        self.port = None
        self.admin_port = None
        serve = self.options.shard_options(self.index)
        Path(serve.checkpoint_dir).mkdir(parents=True, exist_ok=True)
        self._server = ServerThread(serve).start()
        self.port = self._server.port
        self.admin_port = self._server.admin_port

    def wait_ports(self, timeout: float) -> bool:
        return self.port is not None and self.admin_port is not None

    def poll(self) -> Optional[int]:
        server = self._server
        if server is None:
            return -1
        return None if server._thread.is_alive() else 0

    def kill(self, hard: bool = True) -> None:
        server = self._server
        if server is None:
            return
        if hard:
            server.abort()
        else:
            server.stop()

    def reap(self, timeout: float) -> None:
        server = self._server
        if server is not None:
            server._thread.join(timeout=timeout)


_BACKENDS = {"process": ProcessShard, "thread": ThreadShard}


class ClusterSupervisor:
    """Spawns, health-checks, and restarts a fleet of shard servers.

    The supervisor is also the router's endpoint source: ``endpoint(i)``
    returns the shard's current :class:`Endpoint` while it is ready and
    ``None`` while it is down, restoring, or draining.
    """

    def __init__(self, options: ClusterOptions, backend: str = "process"):
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {sorted(_BACKENDS)}, got {backend!r}"
            )
        self.options = options
        self.backend = backend
        self._tempdir: Optional[str] = None
        self.handles: List[object] = []
        self._endpoints: List[Optional[Endpoint]] = []
        self._generations: List[int] = []
        self._probe_failures: List[int] = []
        #: respawns per shard (index-aligned)
        self.restarts: List[int] = []
        #: shards that exhausted max_restarts (permanently down)
        self.failed: List[bool] = []
        #: seconds from crash detection to the respawned shard ready
        self.failovers: List[float] = []
        self.gossip_sent = 0
        self.gossip_dropped = 0
        self._gossip_rng = random.Random(options.gossip_seed)
        self._gossip_clients: Dict[int, Tuple[int, ServeClient]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._gossip_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        if self.options.checkpoint_root is None:
            self._tempdir = tempfile.mkdtemp(prefix="mitos-cluster-")
            self.options.checkpoint_root = self._tempdir
        shard_cls = _BACKENDS[self.backend]
        count = self.options.shards
        self.handles = [shard_cls(i, self.options) for i in range(count)]
        self._endpoints = [None] * count
        self._generations = [0] * count
        self._probe_failures = [0] * count
        self.restarts = [0] * count
        self.failed = [False] * count
        for handle in self.handles:
            handle.spawn()
        deadline = time.monotonic() + self.options.boot_timeout
        for index, handle in enumerate(self.handles):
            if not self._wait_shard_ready(
                handle, deadline - time.monotonic()
            ):
                self.stop()
                raise RuntimeError(
                    f"shard {index} did not become ready within "
                    f"{self.options.boot_timeout}s"
                )
            self._publish(index, handle)
        self._stop = threading.Event()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="cluster-monitor", daemon=True
        )
        self._monitor_thread.start()
        if self.options.gossip_interval is not None:
            self._gossip_thread = threading.Thread(
                target=self._gossip_loop, name="cluster-gossip", daemon=True
            )
            self._gossip_thread.start()
        logger.info(
            "cluster up",
            extra={"shards": count, "backend": self.backend},
        )
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in (self._monitor_thread, self._gossip_thread):
            if thread is not None:
                thread.join(timeout=30)
        self._monitor_thread = None
        self._gossip_thread = None
        for _, client in self._gossip_clients.values():
            client.close()
        self._gossip_clients.clear()
        for handle in self.handles:
            try:
                handle.kill(hard=False)
            except Exception:  # pragma: no cover - defensive teardown
                pass
        for handle in self.handles:
            handle.reap(timeout=30)
        with self._lock:
            self._endpoints = [None] * len(self._endpoints)
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            if self.options.checkpoint_root == self._tempdir:
                self.options.checkpoint_root = None
            self._tempdir = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- endpoint source (the router's view) -------------------------------

    @property
    def shards(self) -> int:
        return self.options.shards

    def endpoint(self, index: int) -> Optional[Endpoint]:
        with self._lock:
            return self._endpoints[index]

    def endpoints(self) -> List[Optional[Endpoint]]:
        with self._lock:
            return list(self._endpoints)

    def _publish(self, index: int, handle) -> None:
        with self._lock:
            self._generations[index] += 1
            self._endpoints[index] = Endpoint(
                shard=index,
                host=self.options.host,
                port=handle.port,
                admin_port=handle.admin_port,
                generation=self._generations[index],
            )

    def _unpublish(self, index: int) -> None:
        with self._lock:
            self._endpoints[index] = None

    # -- health + failover -------------------------------------------------

    def probe(self, handle) -> Optional[bool]:
        """One ``/readyz`` probe: True/False = answered, None = unreachable."""
        if handle.admin_port is None:
            return None
        try:
            status, payload = _http_json(
                self.options.host,
                handle.admin_port,
                "/readyz",
                self.options.health_timeout,
            )
        except OSError:
            return None
        return status == 200 and bool(payload.get("ready", status == 200))

    def _wait_shard_ready(self, handle, timeout: float) -> bool:
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            if handle.poll() is not None:
                return False
            if handle.wait_ports(_POLL_INTERVAL) and self.probe(handle):
                return True
            time.sleep(_POLL_INTERVAL)
        return False

    def check_once(self) -> None:
        """One monitor pass over every shard (the loop body, callable
        directly by tests that want deterministic supervision)."""
        for index, handle in enumerate(self.handles):
            if self.failed[index]:
                continue
            exit_code = handle.poll()
            if exit_code is not None:
                self._failover(index, f"process exited ({exit_code})")
                continue
            ready = self.probe(handle)
            if ready:
                self._probe_failures[index] = 0
                if self.endpoint(index) is None:
                    self._publish(index, handle)
            elif ready is False:
                # alive but draining/restoring: take it out of rotation,
                # liveness is fine so the hang counter stays clear
                self._probe_failures[index] = 0
                self._unpublish(index)
            else:
                self._probe_failures[index] += 1
                if self._probe_failures[index] >= self.options.hang_probes:
                    handle.kill(hard=True)
                    self._failover(
                        index,
                        f"hung ({self._probe_failures[index]} failed probes)",
                    )

    def _monitor(self) -> None:
        while not self._stop.wait(self.options.health_interval):
            try:
                self.check_once()
            except Exception:  # pragma: no cover - supervisor must survive
                logger.exception("monitor pass failed")

    def _failover(self, index: int, reason: str) -> None:
        """Respawn one dead shard from its latest checkpoint."""
        detected = time.monotonic()
        self._unpublish(index)
        self._probe_failures[index] = 0
        handle = self.handles[index]
        self.restarts[index] += 1
        logger.warning(
            "shard down; restarting",
            extra={
                "shard": index,
                "reason": reason,
                "restart": self.restarts[index],
            },
        )
        if self.restarts[index] > self.options.max_restarts:
            self.failed[index] = True
            logger.error(
                "shard exhausted restart budget",
                extra={"shard": index, "restarts": self.restarts[index]},
            )
            return
        if self.options.restart_backoff > 0:
            time.sleep(self.options.restart_backoff)
        handle.reap(timeout=self.options.health_timeout)
        handle.spawn()
        if self._wait_shard_ready(handle, self.options.boot_timeout):
            self._publish(index, handle)
            self.failovers.append(time.monotonic() - detected)
            logger.info(
                "shard recovered",
                extra={
                    "shard": index,
                    "failover_seconds": self.failovers[-1],
                    "generation": self._generations[index],
                },
            )
        else:
            self.failed[index] = True
            logger.error(
                "shard did not come back", extra={"shard": index}
            )

    def kill_shard(self, index: int, hard: bool = True) -> None:
        """Kill one shard (SIGKILL by default); the monitor recovers it."""
        self.handles[index].kill(hard=hard)

    def wait_all_ready(self, timeout: float = 60.0) -> bool:
        """Block until every non-failed shard has a published endpoint."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                pending = [
                    i
                    for i, endpoint in enumerate(self._endpoints)
                    if endpoint is None and not self.failed[i]
                ]
            if not pending:
                return True
            time.sleep(_POLL_INTERVAL)
        return False

    # -- gossip pump -------------------------------------------------------

    def _local_pollution(self, endpoint: Endpoint) -> Optional[float]:
        """One shard server's *local* pollution, read off its admin /stats."""
        try:
            status, payload = _http_json(
                endpoint.host,
                endpoint.admin_port,
                "/stats",
                self.options.health_timeout,
            )
        except OSError:
            return None
        if status != 200:
            return None
        shards = payload.get("shards")
        if not isinstance(shards, list) or not shards:
            return None
        value = shards[0].get("pollution")
        return float(value) if isinstance(value, (int, float)) else None

    def _gossip_client(self, endpoint: Endpoint) -> Optional[ServeClient]:
        cached = self._gossip_clients.get(endpoint.shard)
        if cached is not None:
            generation, client = cached
            if generation == endpoint.generation:
                return client
            client.close()
            del self._gossip_clients[endpoint.shard]
        try:
            client = ServeClient(
                endpoint.host,
                endpoint.port,
                timeout=self.options.health_timeout,
            )
        except OSError:
            return None
        self._gossip_clients[endpoint.shard] = (endpoint.generation, client)
        return client

    def gossip_round(self) -> int:
        """Spread each live shard's local pollution to every live peer.

        Messages are dropped with the seeded ``gossip_loss_rate`` before
        they are sent -- the serve-protocol analogue of the simulation's
        lossy :class:`~repro.distributed.gossip.PollutionGossip` rounds.
        Returns the number of messages delivered.
        """
        live = [e for e in self.endpoints() if e is not None]
        values: Dict[int, float] = {}
        for endpoint in live:
            pollution = self._local_pollution(endpoint)
            if pollution is not None:
                values[endpoint.shard] = pollution
        delivered = 0
        rng = self._gossip_rng
        loss = self.options.gossip_loss_rate
        for target in live:
            if target.shard not in values:
                continue
            for source, pollution in values.items():
                if source == target.shard:
                    continue
                if loss > 0.0 and rng.random() < loss:
                    self.gossip_dropped += 1
                    continue
                client = self._gossip_client(target)
                if client is None:
                    continue
                try:
                    client.gossip(source, pollution)
                except Exception:
                    client.close()
                    self._gossip_clients.pop(target.shard, None)
                    continue
                delivered += 1
                self.gossip_sent += 1
        return delivered

    def _gossip_loop(self) -> None:
        interval = self.options.gossip_interval
        assert interval is not None
        while not self._stop.wait(interval):
            try:
                self.gossip_round()
            except Exception:  # pragma: no cover - pump must survive
                logger.exception("gossip round failed")

    # -- introspection -----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """One supervisor-level snapshot (what ``mitos-repro cluster``
        prints and the bench report embeds)."""
        endpoints = self.endpoints()
        return {
            "backend": self.backend,
            "shards": self.options.shards,
            "ready": sum(1 for e in endpoints if e is not None),
            "failed": sum(self.failed),
            "restarts": list(self.restarts),
            "failover_seconds": list(self.failovers),
            "gossip_sent": self.gossip_sent,
            "gossip_dropped": self.gossip_dropped,
            "endpoints": [
                None
                if endpoint is None
                else {
                    "shard": endpoint.shard,
                    "port": endpoint.port,
                    "admin_port": endpoint.admin_port,
                    "generation": endpoint.generation,
                }
                for endpoint in endpoints
            ],
        }


__all__ = [
    "Endpoint",
    "ProcessShard",
    "ThreadShard",
    "ClusterSupervisor",
]
