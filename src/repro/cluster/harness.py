"""Kill-and-recover load harness: the sim's oracle metric, live.

The cluster simulation (:mod:`repro.distributed.cluster`) reports
*oracle agreement* -- how often stale believed pollution still yields
the decision exact pollution would.  This harness measures the same
quantity against a **real fleet under real crashes**:

1. capture the single-process oracle: explicit-mode
   :class:`~repro.serve.loadgen.OfflineDecision` records from a scalar
   replay (each carries the request *and* the exact response it must
   produce);
2. drive them through the :class:`~repro.cluster.router.ClusterRouter`
   closed-loop while a seeded
   :class:`~repro.faults.crashes.CrashSchedule` SIGKILLs shards at
   planned request indices;
3. during the outage the router answers the dead shard's destinations
   with explicit degraded CLEARs -- the harness verifies every degraded
   answer is *bounded to a killed shard's key range* (a degraded answer
   for a healthy shard's destination would be a routing bug);
4. after the supervisor restarts the shard from its checkpoint, the
   degraded decisions are re-issued; post-recovery they must match the
   oracle field-for-field, so the final agreement on every destination
   is exactly what a crash-free single process would have produced.

The numbers CI tracks land in ``BENCH_cluster.json``: decisions/s under
fault, failover seconds, restarts, degraded counts, and the final
per-candidate agreement rate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.distributed.oracle import AgreementTally
from repro.faults.crashes import CrashSchedule
from repro.serve.loadgen import Mismatch, OfflineDecision, _compare


def spread_destinations(
    decisions: Sequence[OfflineDecision],
) -> List[OfflineDecision]:
    """Remap each decision's destination to a unique synthetic location.

    The recorded workloads funnel every IFP decision at a handful of
    destinations (often one register), which consistent-hashes all
    decide traffic onto a single shard -- killing any *other* shard
    would disrupt nothing.  An explicit-mode decide response is a pure
    function of (candidates, free slots, pollution); the destination is
    only the routing key and the state-application target.  Rewriting it
    to ``mem:0x<index>`` therefore changes *which shard answers*, never
    *what the answer is*, so the offline oracle expectations stay valid
    verbatim while the load exercises the whole ring.
    """
    spread: List[OfflineDecision] = []
    for index, decision in enumerate(decisions):
        request = dict(decision.request, dest=f"mem:{0x10000 + index:#x}")
        spread.append(
            OfflineDecision(request=request, expected=decision.expected)
        )
    return spread


@dataclass
class ClusterLoadResult:
    """Outcome of one kill-and-recover run."""

    requests: int = 0
    #: structured (non-degraded) error responses seen
    errors: int = 0
    #: degraded CLEAR answers during the outage window
    degraded: int = 0
    #: degraded answers whose destination was NOT owned by a killed
    #: shard -- must be zero (the blast radius is the dead shard's keys)
    degraded_out_of_range: int = 0
    #: degraded answers still unresolved after the recovery pass
    unrecovered: int = 0
    elapsed_seconds: float = 0.0
    recovery_seconds: float = 0.0
    shards_killed: List[int] = field(default_factory=list)
    restarts: int = 0
    failover_seconds: List[float] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)
    #: per-candidate agreement of the final answers vs the offline oracle
    tally: AgreementTally = field(default_factory=AgreementTally)

    @property
    def matched(self) -> bool:
        return (
            not self.mismatches
            and not self.errors
            and not self.degraded_out_of_range
            and not self.unrecovered
        )

    @property
    def decisions_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def summary(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "degraded": self.degraded,
            "degraded_out_of_range": self.degraded_out_of_range,
            "unrecovered": self.unrecovered,
            "matched": self.matched,
            "mismatches": len(self.mismatches),
            "elapsed_seconds": self.elapsed_seconds,
            "recovery_seconds": self.recovery_seconds,
            "decisions_per_second": self.decisions_per_second,
            "shards_killed": self.shards_killed,
            "restarts": self.restarts,
            "failover_seconds": self.failover_seconds,
            "agreement": self.tally.agreement,
            "agreement_detail": self.tally.as_dict(),
        }


def _observe_agreement(
    tally: AgreementTally,
    expected: Dict[str, object],
    response: Dict[str, object],
) -> None:
    """Tally per-candidate (oracle propagate, served propagate) pairs."""
    want_rows = expected.get("decisions") or []
    got_rows = response.get("decisions") or []
    by_tag = {
        row.get("tag"): row for row in got_rows if isinstance(row, dict)
    }
    for row in want_rows:
        got = by_tag.get(row.get("tag"), {})
        tally.observe(
            bool(row.get("propagate")), bool(got.get("propagate"))
        )


def run_cluster_load(
    supervisor: ClusterSupervisor,
    router: ClusterRouter,
    decisions: Sequence[OfflineDecision],
    crashes: Optional[CrashSchedule] = None,
    max_mismatches: int = 10,
    recovery_timeout: float = 60.0,
) -> ClusterLoadResult:
    """Drive captured decisions through the fleet with planned crashes.

    Sequential closed-loop on purpose: the schedule's request indices
    then pin exactly which in-flight request the crash lands between,
    making a run reproducible enough to assert on.
    """
    result = ClusterLoadResult()
    killed: Set[int] = set()
    degraded_indices: List[int] = []
    responses: Dict[int, Dict[str, object]] = {}

    started = time.perf_counter()
    for index, decision in enumerate(decisions):
        if crashes is not None:
            for event in crashes.due(index):
                supervisor.kill_shard(event.shard, hard=event.hard)
                killed.add(event.shard)
                result.shards_killed.append(event.shard)
        payload = dict(decision.request, id=index)
        destination = str(payload["dest"])
        response = router.request(destination, payload)
        result.requests += 1
        if response.get("degraded"):
            result.degraded += 1
            degraded_indices.append(index)
            if router.shard_for(destination) not in killed:
                result.degraded_out_of_range += 1
            continue
        if not response.get("ok", False):
            result.errors += 1
            continue
        responses[index] = response
        _compare(
            index,
            decision.expected,
            response,
            result.mismatches,
            max_mismatches,
        )
    result.elapsed_seconds = time.perf_counter() - started

    # recovery pass: wait for the supervisor to finish failing over,
    # then re-issue every degraded decision -- each must now be answered
    # authoritatively and match the single-process oracle exactly
    recovery_started = time.perf_counter()
    if degraded_indices:
        supervisor.wait_all_ready(timeout=recovery_timeout)
    for index in degraded_indices:
        decision = decisions[index]
        payload = dict(decision.request, id=index)
        response = router.request(str(payload["dest"]), payload)
        if response.get("degraded") or not response.get("ok", False):
            result.unrecovered += 1
            continue
        responses[index] = response
        _compare(
            index,
            decision.expected,
            response,
            result.mismatches,
            max_mismatches,
        )
    result.recovery_seconds = time.perf_counter() - recovery_started

    for index, response in responses.items():
        _observe_agreement(
            result.tally, decisions[index].expected, response
        )
    result.restarts = sum(supervisor.restarts)
    result.failover_seconds = list(supervisor.failovers)
    return result


def run_scale_sweep(
    decisions: Sequence[OfflineDecision],
    shard_counts: Sequence[int],
    options_factory,
    *,
    wire_format: str = "binary",
    window: int = 256,
    boot_timeout: float = 60.0,
) -> List[Dict[str, object]]:
    """Measure live aggregate throughput at each fleet size.

    For each shard count this boots a fresh process fleet, partitions
    the (pre-spread) decisions by the router's consistent-hash ring --
    exactly the shard each request would reach in production -- and
    drives every shard concurrently from its own loadgen worker process
    (:func:`~repro.serve.loadgen.run_load_processes`: synchronized
    start, ``sum(requests) / max(elapsed)`` aggregate).  Every response
    is still compared field-for-field against the offline oracle, so
    each sweep point carries parity and per-candidate oracle agreement
    alongside its decisions/s.

    Returns one summary dict per sweep point; the caller derives
    scaling efficiency against the first point and writes
    ``BENCH_scale.json`` via :func:`write_scale_bench`.
    """
    from repro.serve.loadgen import run_load_processes

    sweep: List[Dict[str, object]] = []
    for count in shard_counts:
        if count < 1:
            raise ValueError(f"shard counts must be >= 1, got {count}")
        options = options_factory(count)
        with ClusterSupervisor(options, backend="process") as supervisor:
            with ClusterRouter.for_supervisor(supervisor) as router:
                # partition by ring ownership (shard_for never opens a
                # connection); explicit-mode answers are destination-
                # independent, so the oracle expectations stay valid
                slices: List[List[OfflineDecision]] = [
                    [] for _ in range(count)
                ]
                for decision in decisions:
                    shard = router.shard_for(str(decision.request["dest"]))
                    slices[shard].append(decision)
            supervisor.wait_all_ready(timeout=boot_timeout)
            targets = []
            for index in range(count):
                endpoint = supervisor.endpoint(index)
                if endpoint is None:
                    raise RuntimeError(
                        f"shard {index} never published an endpoint"
                    )
                if slices[index]:
                    targets.append(
                        (endpoint.host, endpoint.port, slices[index])
                    )
            merged, per_shard = run_load_processes(
                targets, wire_format=wire_format, window=window
            )
        sweep.append(
            {
                "shards": count,
                "driven_shards": len(targets),
                **merged.summary(),
                "per_shard": per_shard,
            }
        )
    base = sweep[0]
    base_dps = float(base["decisions_per_second"])  # type: ignore[arg-type]
    base_shards = int(base["shards"])  # type: ignore[arg-type]
    for entry in sweep:
        dps = float(entry["decisions_per_second"])  # type: ignore[arg-type]
        speedup = dps / base_dps if base_dps > 0 else 0.0
        entry["speedup_vs_base"] = speedup
        # 1.0 = perfect linear scaling from the first sweep point
        entry["scaling_efficiency"] = (
            speedup * base_shards / int(entry["shards"])  # type: ignore[arg-type]
        )
    return sweep


def run_gossip_sweep(
    decisions: Sequence[OfflineDecision],
    intervals: Sequence[int],
    options_factory,
    *,
    backend: str = "thread",
) -> List[Dict[str, object]]:
    """Oracle agreement/recall vs gossip cadence on a live fleet.

    The live-fleet mirror of the simulation's gossip-interval sweep
    (:func:`repro.distributed.cluster.run_cluster_sim` swept over
    ``gossip_every``): each offline decision's explicit ``pollution`` is
    *stripped* from the request, so every shard decides with its
    **believed** pollution -- local propagation state plus whatever peer
    estimates gossip has delivered -- while the offline expectation still
    encodes what the exact-pollution oracle would do.  The supervisor's
    gossip pump is driven manually every ``interval`` decisions (boot
    the fleet with ``gossip_interval=None`` so the background thread
    does not race the schedule), which makes a sweep point deterministic
    for a fixed loss seed.

    Per sweep point: per-candidate oracle agreement, plus *recall* over
    the oracle-propagate candidates (the fraction of tags the oracle
    would keep that the stale fleet also kept -- the detection-loss side
    of staleness, which agreement alone hides when blocks dominate).
    """
    sweep: List[Dict[str, object]] = []
    for interval in intervals:
        if interval < 1:
            raise ValueError(
                f"gossip intervals must be >= 1 decision, got {interval}"
            )
        options = options_factory(interval)
        if options.gossip_interval is not None:
            raise ValueError(
                "gossip sweep drives gossip_round() manually; build the "
                "fleet with gossip_interval=None"
            )
        tally = AgreementTally()
        oracle_positives = 0
        recalled = 0
        degraded = 0
        errors = 0
        rounds = 0
        with ClusterSupervisor(options, backend=backend) as supervisor:
            with ClusterRouter.for_supervisor(supervisor) as router:
                for index, decision in enumerate(decisions):
                    if index and index % interval == 0:
                        supervisor.gossip_round()
                        rounds += 1
                    payload = dict(decision.request, id=index)
                    payload.pop("pollution", None)
                    response = router.request(str(payload["dest"]), payload)
                    if response.get("degraded"):
                        degraded += 1
                        continue
                    if not response.get("ok", False):
                        errors += 1
                        continue
                    want_rows = decision.expected.get("decisions") or []
                    got_rows = response.get("decisions") or []
                    by_tag = {
                        row.get("tag"): row
                        for row in got_rows
                        if isinstance(row, dict)
                    }
                    for row in want_rows:
                        oracle = bool(row.get("propagate"))
                        actual = bool(
                            by_tag.get(row.get("tag"), {}).get("propagate")
                        )
                        tally.observe(oracle, actual)
                        if oracle:
                            oracle_positives += 1
                            if actual:
                                recalled += 1
            gossip_sent = supervisor.gossip_sent
            gossip_dropped = supervisor.gossip_dropped
        sweep.append(
            {
                "gossip_every": interval,
                "gossip_rounds": rounds,
                "gossip_sent": gossip_sent,
                "gossip_dropped": gossip_dropped,
                "decisions": len(decisions),
                "degraded": degraded,
                "errors": errors,
                "agreement": tally.agreement,
                "agreement_detail": tally.as_dict(),
                "oracle_positives": oracle_positives,
                "recalled": recalled,
                "recall": (
                    recalled / oracle_positives if oracle_positives else 1.0
                ),
            }
        )
    return sweep


def write_gossip_bench(
    path: Union[str, Path],
    sweep: Sequence[Dict[str, object]],
    *,
    shards: int,
    backend: str,
    recording_events: int,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the gossip-sweep ``BENCH_cluster.json`` document."""
    report: Dict[str, object] = {
        "benchmark": "cluster-gossip",
        "shards": shards,
        "backend": backend,
        "recording_events": recording_events,
        "intervals": [entry["gossip_every"] for entry in sweep],
        "agreement": [entry["agreement"] for entry in sweep],
        "recall": [entry["recall"] for entry in sweep],
        "sweep": list(sweep),
    }
    if extra:
        report.update(extra)
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target


def write_scale_bench(
    path: Union[str, Path],
    sweep: Sequence[Dict[str, object]],
    *,
    recording_events: int,
    wire_format: str,
    window: int,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the ``BENCH_scale.json`` document CI uploads."""
    report: Dict[str, object] = {
        "benchmark": "scale",
        "recording_events": recording_events,
        "wire_format": wire_format,
        "window": window,
        "shard_counts": [entry["shards"] for entry in sweep],
        "matched": all(entry["matched"] for entry in sweep),
        "sweep": list(sweep),
    }
    if extra:
        report.update(extra)
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target


def write_cluster_bench(
    path: Union[str, Path],
    result: ClusterLoadResult,
    *,
    shards: int,
    backend: str,
    recording_events: int,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the ``BENCH_cluster.json`` document CI uploads."""
    report: Dict[str, object] = {
        "benchmark": "cluster",
        "shards": shards,
        "backend": backend,
        "recording_events": recording_events,
        **result.summary(),
    }
    if extra:
        report.update(extra)
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target


__all__ = [
    "ClusterLoadResult",
    "run_cluster_load",
    "run_gossip_sweep",
    "run_scale_sweep",
    "spread_destinations",
    "write_cluster_bench",
    "write_gossip_bench",
    "write_scale_bench",
]
