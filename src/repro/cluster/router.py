"""Client-side router for the supervised shard fleet.

The :class:`ClusterRouter` is the piece that makes a shard death
invisible to callers: it hashes each request's destination onto the
same seeded consistent-hash ring the single-process server uses, sends
the request to the owning shard's *current* endpoint, and wraps every
attempt in a per-request timeout plus bounded exponential-backoff
retries.  Endpoints are re-resolved from the supervisor on **every**
attempt, so a shard that failed over mid-retry is picked up at its new
port (and new generation) without any caller-visible churn.

When the retry budget is exhausted -- the shard is dead and not yet
respawned -- the router does not raise.  It answers with an explicit
**degraded CLEAR** decision: ``ok`` and ``degraded`` both true,
``propagated`` empty, every candidate marked ``propagate: false`` with
null marginals.  CLEAR (propagate nothing) is the fail-safe direction
for a taint tracker: a missed propagation can under-taint until the
shard returns, but it can never silently launder a tainted value into
an untainted one the way a fail-open PROPAGATE-everything answer could.
Callers distinguish degraded answers by the ``degraded`` flag and
re-issue them after recovery if they need authoritative decisions (what
the kill-and-recover harness does).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.serve.client import CandidateLike, ServeClient, ServeClientError
from repro.serve.protocol import format_location, parse_location
from repro.serve.server import HashRing

#: structured error codes worth retrying: the server is alive but
#: momentarily unable (queue full, draining ahead of a restart)
RETRYABLE_CODES = frozenset({"overloaded", "shutting-down"})


class EndpointSource(Protocol):
    """Where the router learns shard endpoints (the supervisor, usually)."""

    @property
    def shards(self) -> int: ...

    def endpoint(self, index: int): ...


class StaticEndpoints:
    """A fixed endpoint table -- unit tests and single-host tooling."""

    def __init__(self, endpoints: Sequence[object]):
        self._endpoints = list(endpoints)

    @property
    def shards(self) -> int:
        return len(self._endpoints)

    def endpoint(self, index: int):
        return self._endpoints[index]


def degraded_clear(
    payload: Dict[str, object], shard: int
) -> Dict[str, object]:
    """The explicit fail-safe answer for an unreachable shard.

    Shaped like a real decide response (same keys, same row fields) so
    downstream consumers need no special casing beyond honouring the
    ``degraded`` flag; every candidate is CLEARed with null marginals
    because no policy state was consulted.
    """
    response: Dict[str, object] = {
        "id": payload.get("id"),
        "ok": True,
        "degraded": True,
        "shard": shard,
    }
    if payload.get("op") == "decide":
        rows: List[Dict[str, object]] = []
        for spec in payload.get("candidates") or ():
            if not isinstance(spec, dict):
                continue
            rows.append(
                {
                    "tag": f"{spec.get('type')}:{spec.get('index')}",
                    "type": spec.get("type"),
                    "copies": spec.get("copies"),
                    "marginal": None,
                    "under": None,
                    "over": None,
                    "propagate": False,
                }
            )
        response["propagated"] = []
        response["decisions"] = rows
    else:
        response["applied"] = False
    return response


class ClusterRouter:
    """Routes decide/apply traffic across the fleet; never raises to callers.

    One cached :class:`~repro.serve.client.ServeClient` per shard, keyed
    by endpoint generation: a failover bumps the generation, so the
    first request after recovery transparently reconnects to the new
    port.  ``sleep`` is injectable so retry/backoff behaviour is testable
    without wall-clock waits.
    """

    def __init__(
        self,
        endpoints: EndpointSource,
        timeout: float = 5.0,
        max_retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        wire_format: str = "ndjson",
    ):
        self.endpoints = endpoints
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.wire_format = wire_format
        self._sleep = sleep
        self._ring = HashRing(endpoints.shards)
        self._clients: Dict[int, tuple] = {}  # shard -> (generation, client)
        self.requests_total = 0
        self.retries_total = 0
        self.degraded_total = 0
        self.degraded_by_shard: Dict[int, int] = {}

    @classmethod
    def for_supervisor(cls, supervisor, **overrides) -> "ClusterRouter":
        """A router tuned by the supervisor's :class:`ClusterOptions`."""
        options = supervisor.options
        settings = dict(
            timeout=options.request_timeout,
            max_retries=options.router_retries,
            backoff=options.router_backoff,
            backoff_max=options.router_backoff_max,
            wire_format=options.wire_format,
        )
        settings.update(overrides)
        return cls(supervisor, **settings)

    # -- routing -----------------------------------------------------------

    def shard_for(self, destination: str) -> int:
        """The ring position of a destination, normalized exactly like
        the server normalizes it (so router and shard always agree)."""
        return self._ring.shard_for(
            format_location(parse_location(destination))
        )

    def _client_for(self, shard: int, endpoint) -> Optional[ServeClient]:
        cached = self._clients.get(shard)
        if cached is not None:
            generation, client = cached
            if generation == endpoint.generation:
                return client
            client.close()
            del self._clients[shard]
        try:
            client = ServeClient(
                endpoint.host,
                endpoint.port,
                timeout=self.timeout,
                wire_format=self.wire_format,
            )
        except OSError:
            return None
        self._clients[shard] = (endpoint.generation, client)
        return client

    def _drop_client(self, shard: int) -> None:
        cached = self._clients.pop(shard, None)
        if cached is not None:
            cached[1].close()

    def request(
        self, destination: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Route one request; degrade instead of raising.

        Retries cover three failure shapes: no published endpoint (the
        shard is mid-failover -- back off and re-resolve), a transport
        error (connection refused/reset, timeout -- drop the cached
        client and retry against a fresh resolve), and a retryable
        structured error (``overloaded`` / ``shutting-down``).  Any
        other structured error is terminal and returned as-is; the
        retry budget exhausting returns the degraded CLEAR answer.

        Re-sending after a *timeout* is safe here only because routed
        requests are explicit-mode pure functions of their payload;
        don't route stateful ``apply`` streams through a path that may
        resend (see docs/CLUSTER.md).
        """
        self.requests_total += 1
        shard = self.shard_for(destination)
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            if attempt:
                self.retries_total += 1
                self._sleep(
                    min(
                        self.backoff * (2 ** (attempt - 1)),
                        self.backoff_max,
                    )
                )
            endpoint = self.endpoints.endpoint(shard)
            if endpoint is None:
                continue
            client = self._client_for(shard, endpoint)
            if client is None:
                continue
            try:
                response = client.request(dict(payload))
            except (OSError, ValueError, ServeClientError):
                self._drop_client(shard)
                continue
            if response.get("ok"):
                return response
            if response.get("error") in RETRYABLE_CODES:
                continue
            return response
        self.degraded_total += 1
        self.degraded_by_shard[shard] = (
            self.degraded_by_shard.get(shard, 0) + 1
        )
        return degraded_clear(dict(payload), shard)

    def decide(
        self,
        destination: str,
        free_slots: int,
        candidates: Sequence[CandidateLike],
        pollution: Optional[float] = None,
        kind: str = "address_dep",
        tick: int = 0,
        context: str = "",
    ) -> Dict[str, object]:
        """One decision through the fleet (explicit or stateful mode)."""
        payload = ServeClient.decide_payload(
            destination,
            free_slots,
            candidates,
            pollution=pollution,
            kind=kind,
            tick=tick,
            context=context,
        )
        return self.request(destination, payload)

    def stats(self) -> Dict[str, object]:
        return {
            "requests": self.requests_total,
            "retries": self.retries_total,
            "degraded": self.degraded_total,
            "degraded_by_shard": dict(self.degraded_by_shard),
        }

    def close(self) -> None:
        for shard in list(self._clients):
            self._drop_client(shard)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "RETRYABLE_CODES",
    "EndpointSource",
    "StaticEndpoints",
    "degraded_clear",
    "ClusterRouter",
]
