"""Fault-tolerant multi-process MITOS cluster (see docs/CLUSTER.md).

A supervised fleet of single-shard decision servers plus the
client-side router that hides crashes from callers:

* :class:`~repro.cluster.supervisor.ClusterSupervisor` -- spawn,
  health-check, restart-from-checkpoint, gossip pump;
* :class:`~repro.cluster.router.ClusterRouter` -- consistent-hash
  routing, per-request timeouts, bounded retries, degraded CLEAR
  answers;
* :mod:`~repro.cluster.harness` -- the kill-and-recover load harness
  that turns the simulation's oracle-agreement metric into a live
  measurement (``BENCH_cluster.json``).
"""

from repro.cluster.harness import (
    ClusterLoadResult,
    run_cluster_load,
    run_gossip_sweep,
    run_scale_sweep,
    spread_destinations,
    write_cluster_bench,
    write_gossip_bench,
    write_scale_bench,
)
from repro.cluster.router import (
    RETRYABLE_CODES,
    ClusterRouter,
    StaticEndpoints,
    degraded_clear,
)
from repro.cluster.supervisor import (
    ClusterSupervisor,
    Endpoint,
    ProcessShard,
    ThreadShard,
)

__all__ = [
    "ClusterSupervisor",
    "Endpoint",
    "ProcessShard",
    "ThreadShard",
    "ClusterRouter",
    "StaticEndpoints",
    "RETRYABLE_CODES",
    "degraded_clear",
    "ClusterLoadResult",
    "run_cluster_load",
    "run_gossip_sweep",
    "run_scale_sweep",
    "spread_destinations",
    "write_cluster_bench",
    "write_gossip_bench",
    "write_scale_bench",
]
