"""Tags and tag types (Section III, "Tag differentiation").

MITOS assumes an arbitrary number of *tag types* -- network, file, process,
system, export-table, pointer, string ... -- where each concrete tag has a
unique ID ``{t, i}``: ``t`` is the type and ``i`` differentiates tags of the
same type (e.g. two network connections get two distinct netflow tags).

:class:`Tag` is the immutable ID; :class:`TagAllocator` mints fresh indices
per type and remembers each tag's *origin* (IP address, file id, PID, ...)
the way a provenance-based DIFT like FAROS annotates its tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple


class TagTypes:
    """Well-known tag type names used across the reproduction.

    The set is open: any string is a valid tag type (MITOS supports an
    arbitrary number of types); these constants cover the types the paper
    mentions explicitly.
    """

    NETFLOW = "netflow"
    FILE = "file"
    PROCESS = "process"
    SYSTEM = "system"
    EXPORT_TABLE = "export_table"
    POINTER = "pointer"
    STRING = "string"

    #: the types the paper's provenance-list example (Fig. 2) cycles through
    STANDARD = (NETFLOW, FILE, PROCESS, SYSTEM, EXPORT_TABLE)


@dataclass(frozen=True, order=True, slots=True)
class Tag:
    """A concrete tag with unique ID ``{type, index}``."""

    type: str
    index: int

    def __post_init__(self) -> None:
        if not self.type:
            raise ValueError("tag type must be a non-empty string")
        if self.index < 1:
            raise ValueError(f"tag index must be >= 1, got {self.index}")

    @property
    def key(self) -> Tuple[str, int]:
        """The ``(type, index)`` pair used as the copy-vector key."""
        return (self.type, self.index)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.type}#{self.index}"


class TagAllocator:
    """Mints fresh tags per type and records their origins.

    An *origin* is whatever identifies the taint source: an IP/port pair for
    a netflow tag, a file id for a file tag, a PID for a process tag.  The
    allocator deduplicates by origin: asking for a tag with an origin that
    was already tagged returns the existing tag, mirroring how a DIFT
    assigns one tag per network connection rather than one per packet.
    """

    def __init__(self) -> None:
        self._next_index: Dict[str, int] = {}
        self._origins: Dict[Tag, Hashable] = {}
        self._by_origin: Dict[Tuple[str, Hashable], Tag] = {}

    def fresh(self, tag_type: str, origin: Optional[Hashable] = None) -> Tag:
        """Return a tag for ``origin`` of ``tag_type``, minting if needed."""
        if origin is not None:
            existing = self._by_origin.get((tag_type, origin))
            if existing is not None:
                return existing
        index = self._next_index.get(tag_type, 0) + 1
        self._next_index[tag_type] = index
        tag = Tag(tag_type, index)
        if origin is not None:
            self._origins[tag] = origin
            self._by_origin[(tag_type, origin)] = tag
        return tag

    def origin_of(self, tag: Tag) -> Optional[Hashable]:
        """The origin recorded at mint time, if any."""
        return self._origins.get(tag)

    def minted(self, tag_type: str) -> int:
        """How many tags of ``tag_type`` have been minted so far."""
        return self._next_index.get(tag_type, 0)

    def all_minted(self) -> Dict[str, int]:
        """Per-type mint counters (copy)."""
        return dict(self._next_index)
