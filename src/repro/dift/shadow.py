"""Shadow memory: the location -> provenance-list map (Section III).

The paper stores each byte's provenance list in a shadow memory whose
implementation is DIFT-specific ("e.g., hashmap or duplicated memory"); we
use a sparse hashmap so only tainted locations consume space, which is also
how the *space* metric of Table II is measured (entries actually in use).

Locations are ``(kind, id)`` pairs: ``("mem", address)`` for memory bytes,
``("reg", name)`` for registers, ``("nic", offset)`` for NIC buffer bytes.
The :func:`mem` / :func:`reg` / :func:`nic` helpers build them.

Every mutation keeps a :class:`~repro.dift.stats.TagCopyCounter` exactly in
sync, so the MITOS copy-count vector ``n`` is always available in O(1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dift.provenance import AddOutcome, ProvenanceList, SchedulingPolicy
from repro.dift.stats import TagCopyCounter
from repro.dift.tags import Tag

Location = Tuple[str, object]

#: shadow-memory bookkeeping cost per provenance-list entry, in bytes
#: (tag id 4B + type 2B + list linkage 2B) -- used for the space metric.
ENTRY_SIZE_BYTES = 8

#: fixed per-tainted-location overhead (hashmap slot + list header).
LOCATION_OVERHEAD_BYTES = 16


def mem(address: int) -> Location:
    """Location of a main-memory byte."""
    return ("mem", address)


def reg(name: str) -> Location:
    """Location of a register (registers are tag-tracked as single units)."""
    return ("reg", name)


def nic(offset: int) -> Location:
    """Location of an Ethernet-card buffer byte."""
    return ("nic", offset)


class ShadowMemory:
    """Sparse map from locations to bounded provenance lists."""

    def __init__(
        self,
        m_prov: int,
        counter: Optional[TagCopyCounter] = None,
        scheduling: SchedulingPolicy = SchedulingPolicy.FIFO,
        value_fn: Optional[Callable[[Tag], float]] = None,
    ):
        if m_prov < 1:
            raise ValueError(f"m_prov must be >= 1, got {m_prov}")
        if scheduling is SchedulingPolicy.VALUE and value_fn is None:
            raise ValueError("VALUE scheduling requires a value_fn")
        self.m_prov = m_prov
        self.scheduling = scheduling
        self.value_fn = value_fn
        self.counter = counter if counter is not None else TagCopyCounter()
        self._lists: Dict[Location, ProvenanceList] = {}
        # running aggregates: entries in use and non-empty locations, kept
        # in sync by every mutation so the queries below are O(1)
        self._entries = 0
        self._tainted = 0

    # -- queries ---------------------------------------------------------

    def tags_at(self, location: Location) -> Tuple[Tag, ...]:
        """Tags currently on ``location`` (empty tuple if untainted)."""
        plist = self._lists.get(location)
        return tuple(plist._tags) if plist is not None else ()

    def is_tainted(self, location: Location) -> bool:
        return bool(self._lists.get(location))

    def free_slots(self, location: Location) -> int:
        plist = self._lists.get(location)
        return plist.free_slots if plist is not None else self.m_prov

    def tainted_locations(self) -> List[Location]:
        """All locations with at least one tag."""
        return [loc for loc, plist in self._lists.items() if len(plist) > 0]

    def tainted_count(self) -> int:
        return self._tainted

    def total_entries(self) -> int:
        """Total provenance-list entries in use (unweighted pollution)."""
        return self._entries

    def footprint_bytes(self) -> int:
        """Space metric: bytes of shadow state actually in use."""
        return (
            self._entries * ENTRY_SIZE_BYTES
            + self._tainted * LOCATION_OVERHEAD_BYTES
        )

    # -- mutations -------------------------------------------------------

    def _list_for(self, location: Location) -> ProvenanceList:
        plist = self._lists.get(location)
        if plist is None:
            plist = ProvenanceList(self.m_prov, self.scheduling, self.value_fn)
            self._lists[location] = plist
        return plist

    def add_tag(self, location: Location, tag: Tag) -> AddOutcome:
        """Add one tag to a location, keeping the copy counter in sync."""
        plist = self._lists.get(location)
        if plist is None:
            plist = ProvenanceList(self.m_prov, self.scheduling, self.value_fn)
            self._lists[location] = plist
            was_empty = True
        else:
            was_empty = not plist._tags
        outcome = plist.add(tag)
        if outcome.added:
            self.counter.increment(tag)
            if was_empty:
                self._tainted += 1
            if outcome.dropped is None:
                self._entries += 1
            else:
                self.counter.decrement(outcome.dropped)
        return outcome

    def remove_tag(self, location: Location, tag: Tag) -> bool:
        plist = self._lists.get(location)
        if plist is None:
            return False
        removed = plist.remove(tag)
        if removed:
            self.counter.decrement(tag)
            self._entries -= 1
            if len(plist) == 0:
                self._tainted -= 1
                del self._lists[location]
        return removed

    def clear_location(self, location: Location) -> Tuple[Tag, ...]:
        """Untaint a location entirely (e.g., constant overwrite)."""
        plist = self._lists.pop(location, None)
        if plist is None:
            return ()
        dropped = plist.clear()
        if dropped:
            self._entries -= len(dropped)
            self._tainted -= 1
            decrement = self.counter.decrement
            for tag in dropped:
                decrement(tag)
        return dropped

    def replace_tags(
        self, location: Location, tags: Sequence[Tag]
    ) -> Tuple[int, int]:
        """Set a location's list to ``tags`` (copy-dependency semantics).

        Returns ``(added, dropped)`` mutation counts for the work metric.
        Tags beyond capacity follow the list's eviction policy, so the
        final list holds at most ``m_prov`` of the given tags.

        The self-copy case (``tags`` already equals the location's list in
        order) is served without mutating anything: the full clear+re-add
        round trip deterministically ends in the same list state with
        ``added == dropped == len(tags)``, so only those counts are
        produced.  The shortcut is taken only when no birth/death monitors
        are attached, because the round trip would bounce each tag held
        nowhere else through a 1 -> 0 -> 1 copy-count transition.
        """
        current = self._lists.get(location)
        if (
            current is not None
            and current._tags == list(tags)
            and self.counter.on_birth is None
            and self.counter.on_death is None
        ):
            n = len(current._tags)
            return n, n
        dropped = len(self.clear_location(location))
        added = 0
        for tag in tags:
            outcome = self.add_tag(location, tag)
            if outcome.added:
                added += 1
            if outcome.dropped is not None:
                dropped += 1
        return added, dropped

    def union_into(
        self, sources: Iterable[Location], destination: Location
    ) -> Tuple[int, int]:
        """Merge all source tags into the destination (computation deps).

        The union is taken in source order with duplicates skipped; the
        destination's existing tags are kept (a computation result carries
        its prior history plus both operands' tags).
        """
        added = 0
        dropped = 0
        lists = self._lists
        dest_list = lists.get(destination)
        seen = set(dest_list._tags) if dest_list is not None else set()
        add_tag = self.add_tag
        for source in sources:
            source_list = lists.get(source)
            if source_list is None:
                continue
            # snapshot: add_tag may evict from this very list on self-union
            for tag in tuple(source_list._tags):
                if tag in seen:
                    continue
                seen.add(tag)
                outcome = add_tag(destination, tag)
                if outcome.added:
                    added += 1
                if outcome.dropped is not None:
                    dropped += 1
                    seen.discard(outcome.dropped)
        return added, dropped
