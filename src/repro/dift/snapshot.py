"""Tracker checkpoints: snapshot and restore shadow state.

Long replays (the paper's one-minute records already strained PANDA's
memory) benefit from checkpointing: replay a prefix once, snapshot, and
explore many configurations or suffixes from the checkpoint.  A snapshot
captures exactly the replayable taint state: every location's provenance
list *in order* (so FIFO eviction behaviour is preserved), plus the
tracker's counters.

Snapshots serialize to JSON (gzip when the path ends ``.gz``).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker

#: snapshot format version (bump on incompatible changes)
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """Malformed or incompatible snapshot data."""


def _location_to_json(location) -> list:
    def encode(value):
        if isinstance(value, tuple):
            return {"t": [encode(v) for v in value]}
        return value

    return [encode(part) for part in location]


def _location_from_json(payload) -> tuple:
    def decode(value):
        if isinstance(value, dict) and set(value) == {"t"}:
            return tuple(decode(v) for v in value["t"])
        return value

    return tuple(decode(part) for part in payload)


def snapshot_tracker(tracker: DIFTTracker) -> Dict[str, object]:
    """Capture a tracker's replayable taint state."""
    locations: List[dict] = []
    for location in tracker.shadow.tainted_locations():
        locations.append(
            {
                "loc": _location_to_json(location),
                "tags": [list(tag.key) for tag in tracker.shadow.tags_at(location)],
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "m_prov": tracker.shadow.m_prov,
        "scheduling": tracker.shadow.scheduling.value,
        "stats": tracker.stats.as_dict(),
        "ticks": tracker.stats.ticks,
        "locations": locations,
    }


def restore_tracker(tracker: DIFTTracker, snapshot: Dict[str, object]) -> None:
    """Load a snapshot into a (configuration-compatible) tracker.

    The tracker is reset first; provenance lists are rebuilt in recorded
    order so subsequent FIFO evictions behave as if the prefix had been
    replayed live.  Statistics counters other than ``ticks`` are *not*
    restored (they describe the work of the original run, which this
    tracker did not perform).
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    if snapshot.get("m_prov") != tracker.shadow.m_prov:
        raise SnapshotError(
            f"snapshot M_prov {snapshot.get('m_prov')} does not match "
            f"tracker M_prov {tracker.shadow.m_prov}"
        )
    if snapshot.get("scheduling") != tracker.shadow.scheduling.value:
        raise SnapshotError(
            f"snapshot scheduling {snapshot.get('scheduling')!r} does not "
            f"match tracker {tracker.shadow.scheduling.value!r}"
        )
    tracker.reset()
    try:
        for entry in snapshot["locations"]:  # type: ignore[index]
            location = _location_from_json(entry["loc"])
            for tag_type, index in entry["tags"]:
                tracker.shadow.add_tag(location, Tag(tag_type, int(index)))
        tracker.stats.ticks = int(snapshot.get("ticks", 0))  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"malformed snapshot: {error}") from error


def save_snapshot(
    tracker: DIFTTracker, path: Union[str, Path]
) -> Path:
    """Snapshot a tracker to a JSON (optionally gzip) file."""
    target = Path(path)
    text = json.dumps(snapshot_tracker(tracker))
    if target.suffix == ".gz":
        with gzip.open(target, "wt") as handle:
            handle.write(text)
    else:
        target.write_text(text)
    return target


def load_snapshot(
    tracker: DIFTTracker, path: Union[str, Path]
) -> None:
    """Restore a tracker from a snapshot file."""
    source = Path(path)
    if source.suffix == ".gz":
        with gzip.open(source, "rt") as handle:
            text = handle.read()
    else:
        text = source.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SnapshotError(f"snapshot is not valid JSON: {error}") from error
    restore_tracker(tracker, payload)
