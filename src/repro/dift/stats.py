"""Copy-count bookkeeping and tracker statistics.

:class:`TagCopyCounter` maintains the live copy-count vector ``n`` of the
MITOS model: ``n[t,i]`` = number of locations (bytes/registers) whose
provenance list currently holds tag ``{t,i}``.  It also maintains per-type
totals so the weighted memory pollution ``sum_t o_t sum_i n[t,i]`` -- the
globally shared quantity of Eq. 8 -- is O(#types) to compute, matching the
paper's O(1)-space "single estimation of the memory pollution" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Mapping, Tuple

from repro.dift.tags import Tag

TagKey = Tuple[str, int]


class TagCopyCounter:
    """Live copy-count vector ``n`` plus per-type pollution aggregates.

    Optional ``on_birth`` / ``on_death`` callbacks fire when a tag's copy
    count transitions 0 -> 1 and 1 -> 0 respectively, enabling
    TaintBochs-style data-lifetime analysis without scanning.

    ``total_entries`` is a running integer (no dict sum per call), and
    ``weighted_pollution`` is served from a running aggregate: the unit
    weight case is exactly ``float(total_entries)`` (integer-valued floats
    are exact well below 2**53), and non-unit weight maps are recomputed
    lazily behind a dirty flag with the identical summation expression, so
    the cached value is bit-equal to a from-scratch recomputation.
    """

    __slots__ = (
        "_counts",
        "_type_totals",
        "_total_entries",
        "_pollution_value",
        "_pollution_o",
        "_pollution_default",
        "_pollution_dirty",
        "on_birth",
        "on_death",
    )

    def __init__(self) -> None:
        self._counts: Dict[TagKey, int] = {}
        self._type_totals: Dict[str, int] = {}
        self._total_entries = 0
        # weighted-pollution cache for non-unit weight maps, keyed on the
        # identity of the weight mapping (params.o is one long-lived dict)
        self._pollution_value: float = 0.0
        self._pollution_o: "Mapping[str, float] | None" = None
        self._pollution_default = 1.0
        self._pollution_dirty = True
        self.on_birth: "Callable[[Tag], None] | None" = None
        self.on_death: "Callable[[Tag], None] | None" = None

    def increment(self, tag: Tag) -> None:
        """One more location now holds ``tag``."""
        key = (tag.type, tag.index)
        counts = self._counts
        previous = counts.get(key, 0)
        counts[key] = previous + 1
        type_totals = self._type_totals
        type_totals[tag.type] = type_totals.get(tag.type, 0) + 1
        self._total_entries += 1
        self._pollution_dirty = True
        if previous == 0 and self.on_birth is not None:
            self.on_birth(tag)

    def decrement(self, tag: Tag) -> None:
        """One fewer location holds ``tag``."""
        key = (tag.type, tag.index)
        counts = self._counts
        current = counts.get(key, 0)
        if current <= 0:
            raise ValueError(f"decrement below zero for tag {tag}")
        if current == 1:
            del counts[key]
        else:
            counts[key] = current - 1
        type_totals = self._type_totals
        type_totals[tag.type] -= 1
        if type_totals[tag.type] == 0:
            del type_totals[tag.type]
        self._total_entries -= 1
        self._pollution_dirty = True
        if current == 1 and self.on_death is not None:
            self.on_death(tag)

    def copies(self, tag: Tag) -> int:
        """``n[t,i]`` for this tag (0 if nowhere)."""
        return self._counts.get((tag.type, tag.index), 0)

    def copies_by_key(self, key: TagKey) -> int:
        return self._counts.get(key, 0)

    def total_entries(self) -> int:
        """Unweighted pollution: total provenance-list entries in use."""
        return self._total_entries

    def type_total(self, tag_type: str) -> int:
        """Total entries across all tags of one type."""
        return self._type_totals.get(tag_type, 0)

    def weighted_pollution(
        self, o: Mapping[str, float], default_weight: float = 1.0
    ) -> float:
        """``sum_t o_t sum_i n[t,i]`` -- the Eq. 8 global signal.

        O(1) for the common cases (empty counter; unit weights); O(#types)
        only when a non-unit weight map changed since the last call.
        """
        type_totals = self._type_totals
        if not type_totals:
            # sum() over an empty dict is int 0; preserved exactly so JSON
            # serializations of the pollution signal stay byte-identical
            return 0
        if not o and default_weight == 1.0:
            # unit weights: the weighted sum IS the entry total, and
            # float(int) is exact for every reachable magnitude
            return float(self._total_entries)
        if (
            self._pollution_dirty
            or o is not self._pollution_o
            or default_weight != self._pollution_default
        ):
            # identical expression to the historical scan, so the cached
            # value is bit-equal to recomputing from scratch
            self._pollution_value = sum(
                o.get(tag_type, default_weight) * total
                for tag_type, total in type_totals.items()
            )
            self._pollution_o = o
            self._pollution_default = default_weight
            self._pollution_dirty = False
        return self._pollution_value

    def snapshot(self) -> Dict[TagKey, int]:
        """Copy of the full copy-count vector (for solvers/metrics)."""
        return dict(self._counts)

    def live_tags(self) -> int:
        """Number of distinct tags with at least one copy."""
        return len(self._counts)

    def per_type_counts(self) -> Dict[str, Dict[TagKey, int]]:
        """Copy counts grouped by tag type."""
        grouped: Dict[str, Dict[TagKey, int]] = {}
        for key, count in self._counts.items():
            grouped.setdefault(key[0], {})[key] = count
        return grouped


@dataclass
class TrackerStats:
    """Work and event counters for one DIFT run.

    ``propagation_ops`` counts every provenance-list mutation (adds, drops,
    clears); it is the hardware-independent proxy for the paper's replay
    *time* metric, since tag-propagation work dominates FAROS replay time.
    """

    ticks: int = 0
    inserts: int = 0
    dfp_copy: int = 0
    dfp_compute: int = 0
    ifp_address: int = 0
    ifp_control: int = 0
    ifp_candidates: int = 0
    ifp_propagated: int = 0
    ifp_blocked: int = 0
    propagation_ops: int = 0
    drops: int = 0
    clears: int = 0
    alerts: int = 0
    #: times the tracker entered degraded mode (pollution near N_R)
    degradations: int = 0
    #: provenance entries shed by degraded-mode load shedding
    shed_entries: int = 0
    by_context: Dict[str, int] = field(default_factory=dict)

    def note_context(self, context: str) -> None:
        self.by_context[context] = self.by_context.get(context, 0) + 1

    @property
    def ifp_total(self) -> int:
        return self.ifp_address + self.ifp_control

    @property
    def ifp_propagation_rate(self) -> float:
        if self.ifp_candidates == 0:
            return 0.0
        return self.ifp_propagated / self.ifp_candidates

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for reporting tables."""
        return {
            "ticks": self.ticks,
            "inserts": self.inserts,
            "dfp_copy": self.dfp_copy,
            "dfp_compute": self.dfp_compute,
            "ifp_address": self.ifp_address,
            "ifp_control": self.ifp_control,
            "ifp_candidates": self.ifp_candidates,
            "ifp_propagated": self.ifp_propagated,
            "ifp_blocked": self.ifp_blocked,
            "propagation_ops": self.propagation_ops,
            "drops": self.drops,
            "clears": self.clears,
            "alerts": self.alerts,
            "degradations": self.degradations,
            "shed_entries": self.shed_entries,
        }

    # -- checkpoint support -------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Complete JSON-serializable state, including ``by_context``.

        Unlike :meth:`as_dict` (a reporting view), this captures every
        counter so a resumed replay continues with *exactly* the stats an
        uninterrupted run would have had at the same event.
        """
        payload: Dict[str, object] = dict(self.as_dict())
        payload["by_context"] = dict(self.by_context)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TrackerStats":
        """Inverse of :meth:`to_payload`; unknown keys are ignored."""
        stats = cls()
        for f in fields(cls):
            if f.name == "by_context":
                continue
            value = payload.get(f.name, 0)
            setattr(stats, f.name, int(value))  # type: ignore[arg-type]
        raw_context = payload.get("by_context", {})
        if isinstance(raw_context, Mapping):
            stats.by_context = {
                str(k): int(v) for k, v in raw_context.items()  # type: ignore[arg-type]
            }
        return stats
