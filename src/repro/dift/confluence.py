"""Confluence-triggered weight boosting: close the detect -> track loop.

When the confluence detector flags a byte (e.g. netflow + export-table
coming together), that run context is evidence that the involved tag
types matter *right now* -- so their undertainting weights should rise,
accelerating their propagation and sharpening the attack fingerprint
while the suspicion lasts.

:class:`ConfluenceResponder` watches a tracker's detector for new alerts
and boosts the involved types on an :class:`~repro.core.adaptive.AdaptiveWeights`;
:class:`ConfluenceResponsePlugin` runs it inside a replayer chain.
"""

from __future__ import annotations


from repro.core.adaptive import AdaptiveWeights
from repro.dift.flows import FlowEvent
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import Plugin


class ConfluenceResponder:
    """Boost the tag types involved in each new detector alert."""

    def __init__(
        self,
        tracker: DIFTTracker,
        weights: AdaptiveWeights,
        boost_factor: float = 10.0,
    ):
        if tracker.detector is None:
            raise ValueError("tracker has no confluence detector attached")
        if boost_factor <= 0:
            raise ValueError(f"boost_factor must be positive, got {boost_factor}")
        self.tracker = tracker
        self.weights = weights
        self.boost_factor = boost_factor
        self._seen_alerts = 0
        self.boosts_applied = 0

    def poll(self) -> int:
        """Process alerts raised since the last poll; returns new alerts."""
        alerts = self.tracker.detector.alerts  # type: ignore[union-attr]
        fresh = alerts[self._seen_alerts :]
        for alert in fresh:
            for tag in alert.tags:
                self.weights.boost(tag.type, self.boost_factor)
                self.boosts_applied += 1
        self._seen_alerts = len(alerts)
        return len(fresh)

    def reset(self) -> None:
        self._seen_alerts = 0
        self.boosts_applied = 0


class ConfluenceResponsePlugin(Plugin):
    """Replayer plugin polling the responder after every event."""

    name = "confluence-response"

    def __init__(self, responder: ConfluenceResponder):
        self.responder = responder

    def on_begin(self, recording: Recording) -> None:
        self.responder.reset()

    def on_event(self, event: FlowEvent) -> None:
        self.responder.poll()
