"""Bounded provenance lists (Section III, "Provenance list").

Each taintable byte keeps an ordered list of up to ``M_prov`` tags -- its
information-flow history (Fig. 2 of the paper).  The paper's evaluation
follows FAROS and treats the list as a FIFO queue: when a tag arrives at a
full list, the head (oldest tag) is dropped.  The discussion section defers
smarter scheduling to future work; we expose an LRU variant so the
scheduling ablation can quantify the difference.

A list never holds two copies of the same tag (constraint Eq. 7: no byte
may hold more than one copy of any tag).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.dift.tags import Tag


class SchedulingPolicy(enum.Enum):
    """What to do when a tag arrives at a full provenance list."""

    #: drop the oldest entry (paper / FAROS behaviour)
    FIFO = "fifo"
    #: drop the least-recently *touched* entry (future-work ablation)
    LRU = "lru"
    #: refuse the newcomer
    REJECT = "reject"
    #: value-based admission (Section VI future work, Matzakos-style):
    #: admit the newcomer only if its retention value exceeds the least
    #: valuable resident tag, which is then dropped.  Requires a
    #: ``value_fn``; a tag's natural value is its undertainting marginal
    #: magnitude ``u_t * n**-alpha`` (rare/important tags are retained).
    VALUE = "value"


@dataclass(frozen=True, slots=True)
class AddOutcome:
    """Result of attempting to add one tag to a provenance list."""

    #: the tag now resides in the list (it may have been present already)
    present: bool
    #: the tag was newly inserted by this call
    added: bool
    #: a pre-existing tag evicted to make room, if any
    dropped: Optional[Tag] = None


# The three no-eviction outcomes carry no per-call state; sharing one
# frozen instance each removes an allocation from every list mutation.
_ALREADY_PRESENT = AddOutcome(present=True, added=False)
_REFUSED = AddOutcome(present=False, added=False)
_ADDED = AddOutcome(present=True, added=True)


class ProvenanceList:
    """Ordered, bounded, duplicate-free tag list for one byte/register.

    Pure data structure: it reports what was added/evicted and leaves
    copy-count bookkeeping to :class:`repro.dift.shadow.ShadowMemory`.
    """

    __slots__ = ("_capacity", "_members", "_scheduling", "_tags", "_value_fn")

    def __init__(
        self,
        capacity: int,
        scheduling: SchedulingPolicy = SchedulingPolicy.FIFO,
        value_fn: Optional[Callable[[Tag], float]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if scheduling is SchedulingPolicy.VALUE and value_fn is None:
            raise ValueError("VALUE scheduling requires a value_fn")
        self._capacity = capacity
        self._scheduling = scheduling
        self._value_fn = value_fn
        self._tags: List[Tag] = []
        # membership mirror of _tags: the list keeps eviction order, the
        # set answers "is this tag here?" without a linear __eq__ scan
        # (the single hottest question on the serving path)
        self._members: set = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def scheduling(self) -> SchedulingPolicy:
        return self._scheduling

    @property
    def free_slots(self) -> int:
        return self._capacity - len(self._tags)

    @property
    def full(self) -> bool:
        return len(self._tags) >= self._capacity

    def tags(self) -> Tuple[Tag, ...]:
        """Current contents, oldest first."""
        return tuple(self._tags)

    def add(self, tag: Tag) -> AddOutcome:
        """Insert ``tag``, applying the eviction policy if the list is full.

        Re-adding a tag that is already present is a no-op under FIFO and
        REJECT; under LRU it refreshes the tag's recency.
        """
        tags = self._tags
        members = self._members
        if tag in members:
            if self._scheduling is SchedulingPolicy.LRU:
                tags.remove(tag)
                tags.append(tag)
            return _ALREADY_PRESENT
        if len(tags) >= self._capacity:
            if self._scheduling is SchedulingPolicy.REJECT:
                return _REFUSED
            if self._scheduling is SchedulingPolicy.VALUE:
                assert self._value_fn is not None
                victim = min(tags, key=self._value_fn)
                if self._value_fn(tag) <= self._value_fn(victim):
                    # the newcomer is worth no more than the cheapest
                    # resident: admission refused
                    return _REFUSED
                tags.remove(victim)
                members.discard(victim)
                tags.append(tag)
                members.add(tag)
                return AddOutcome(present=True, added=True, dropped=victim)
            # FIFO and LRU both evict the head: under FIFO the head is
            # the oldest insertion; under LRU the least recently touched.
            dropped = tags.pop(0)
            members.discard(dropped)
            tags.append(tag)
            members.add(tag)
            return AddOutcome(present=True, added=True, dropped=dropped)
        tags.append(tag)
        members.add(tag)
        return _ADDED

    def remove(self, tag: Tag) -> bool:
        """Remove ``tag`` if present; returns whether it was there."""
        try:
            self._tags.remove(tag)
        except ValueError:
            return False
        self._members.discard(tag)
        return True

    def clear(self) -> Tuple[Tag, ...]:
        """Empty the list, returning what was dropped."""
        dropped = tuple(self._tags)
        self._tags.clear()
        self._members.clear()
        return dropped

    def touch(self, tag: Tag) -> None:
        """Refresh recency for LRU scheduling (no-op when absent or FIFO)."""
        if self._scheduling is SchedulingPolicy.LRU and tag in self._members:
            self._tags.remove(tag)
            self._tags.append(tag)

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._members

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        inner = ", ".join(str(t) for t in self._tags)
        return f"ProvenanceList([{inner}], cap={self._capacity})"
