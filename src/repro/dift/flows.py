"""Flow events: the taint-relevant abstraction of an instruction stream.

The replayer reduces every instruction it sees to zero or more
:class:`FlowEvent` objects -- the only interface between the execution
substrate (ISA machine, synthetic workloads) and the DIFT tracker:

* ``INSERT``      -- taint source: a fresh/known tag lands on a location
  (network receive, file read, process memory read, ...),
* ``COPY``        -- direct flow, copy dependency (mov/load/store data),
* ``COMPUTE``     -- direct flow, computation dependency (alu ops),
* ``ADDRESS_DEP`` -- indirect flow: tainted address register on load/store,
* ``CONTROL_DEP`` -- indirect flow: write inside a tainted branch's scope,
* ``CLEAR``       -- untaint (constant write over a location).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.dift.shadow import Location
from repro.dift.tags import Tag


class FlowKind(enum.Enum):
    """Taxonomy of taint-relevant events (Section II of the paper)."""

    INSERT = "insert"
    COPY = "copy"
    COMPUTE = "compute"
    ADDRESS_DEP = "address_dep"
    CONTROL_DEP = "control_dep"
    CLEAR = "clear"

    @property
    def is_direct(self) -> bool:
        return self in (FlowKind.COPY, FlowKind.COMPUTE)

    @property
    def is_indirect(self) -> bool:
        return self in (FlowKind.ADDRESS_DEP, FlowKind.CONTROL_DEP)


@dataclass(frozen=True, slots=True)
class FlowEvent:
    """One taint-relevant event at one destination location.

    Attributes
    ----------
    kind:
        The flow taxonomy entry.
    destination:
        The location written.
    sources:
        The locations whose tags flow (data operands for direct flows; the
        address register or branch-condition registers for indirect flows).
    tick:
        Monotonic event time (instruction index in the recording).
    tag:
        For ``INSERT`` only: the tag being placed.
    context:
        Free-form description of the originating instruction/syscall, used
        for per-context statistics (e.g. ``"sw"``, ``"net.recv"``).
    meta:
        Optional extra annotations (pc, process id, ...).
    """

    kind: FlowKind
    destination: Location
    sources: Tuple[Location, ...] = ()
    tick: int = 0
    tag: Optional[Tag] = None
    context: str = ""
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind is FlowKind.INSERT and self.tag is None:
            raise ValueError("INSERT events require a tag")
        if self.kind is not FlowKind.INSERT and self.tag is not None:
            raise ValueError(f"{self.kind.value} events must not carry a tag")
        if self.kind in (FlowKind.COPY, FlowKind.COMPUTE) and not self.sources:
            raise ValueError(f"{self.kind.value} events require sources")


def insert(
    destination: Location, tag: Tag, tick: int = 0, context: str = ""
) -> FlowEvent:
    """Convenience constructor for a taint-source event."""
    return FlowEvent(
        FlowKind.INSERT, destination, tick=tick, tag=tag, context=context
    )


def copy(
    source: Location, destination: Location, tick: int = 0, context: str = ""
) -> FlowEvent:
    """Convenience constructor for a copy-dependency event."""
    return FlowEvent(
        FlowKind.COPY, destination, sources=(source,), tick=tick, context=context
    )


def compute(
    sources: Tuple[Location, ...],
    destination: Location,
    tick: int = 0,
    context: str = "",
) -> FlowEvent:
    """Convenience constructor for a computation-dependency event."""
    return FlowEvent(
        FlowKind.COMPUTE, destination, sources=sources, tick=tick, context=context
    )


def address_dep(
    address_source: Location,
    destination: Location,
    tick: int = 0,
    context: str = "",
) -> FlowEvent:
    """Convenience constructor for an address-dependency event."""
    return FlowEvent(
        FlowKind.ADDRESS_DEP,
        destination,
        sources=(address_source,),
        tick=tick,
        context=context,
    )


def control_dep(
    condition_sources: Tuple[Location, ...],
    destination: Location,
    tick: int = 0,
    context: str = "",
) -> FlowEvent:
    """Convenience constructor for a control-dependency event."""
    return FlowEvent(
        FlowKind.CONTROL_DEP,
        destination,
        sources=condition_sources,
        tick=tick,
        context=context,
    )


def clear(destination: Location, tick: int = 0, context: str = "") -> FlowEvent:
    """Convenience constructor for an untaint event."""
    return FlowEvent(FlowKind.CLEAR, destination, tick=tick, context=context)
