"""Detector suite beyond simple confluence.

The paper's FAROS detector fires on a *set* of tag types meeting on one
byte.  Real investigations also care about order and volume, so this
module adds two more detector shapes on the same check/scan interface as
:class:`~repro.dift.detector.ConfluenceDetector`:

* :class:`SequenceDetector` -- the required types must arrive in a given
  order (e.g. *netflow first, export-table second*: payload downloaded,
  then touched by the loader -- the reverse order is benign linking),
* :class:`AggregationDetector` -- a byte accumulating at least ``k``
  distinct tags of one type (e.g. many netflow connections mixing into
  one buffer: staging for exfiltration),
* :class:`DetectorSuite` -- fan-out to several detectors behind the one
  interface the tracker knows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.dift.detector import Alert
from repro.dift.shadow import Location, ShadowMemory


class SequenceDetector:
    """Fires when required tag types land on a byte in a given order.

    Order is judged by *first arrival per type on that location*, tracked
    incrementally across :meth:`check` calls (the shadow itself does not
    retain arrival order across evictions).
    """

    def __init__(self, ordered_types: Sequence[str]):
        if len(ordered_types) < 2:
            raise ValueError("a sequence needs at least two tag types")
        if len(set(ordered_types)) != len(ordered_types):
            raise ValueError("ordered_types must be distinct")
        self.ordered_types = tuple(ordered_types)
        self.alerts: List[Alert] = []
        self._flagged: Set[Location] = set()
        #: first-arrival order of watched types per location
        self._arrivals: Dict[Location, List[str]] = {}

    def check(
        self, shadow: ShadowMemory, location: Location, tick: int = 0
    ) -> Optional[Alert]:
        tags = shadow.tags_at(location)
        present = {tag.type for tag in tags}
        arrivals = self._arrivals.setdefault(location, [])
        for tag_type in self.ordered_types:
            if tag_type in present and tag_type not in arrivals:
                arrivals.append(tag_type)
        if location in self._flagged:
            return None
        # all required types present, and their first arrivals in order
        if not all(t in arrivals for t in self.ordered_types):
            return None
        positions = [arrivals.index(t) for t in self.ordered_types]
        if positions != sorted(positions):
            return None
        if not set(self.ordered_types) <= present:
            return None
        alert = Alert(location=location, tick=tick, tags=tags)
        self.alerts.append(alert)
        self._flagged.add(location)
        return alert

    def scan(self, shadow: ShadowMemory, tick: int = 0) -> List[Alert]:
        return [
            alert
            for location in shadow.tainted_locations()
            if (alert := self.check(shadow, location, tick)) is not None
        ]

    @property
    def detected_bytes(self) -> int:
        return sum(1 for loc in self._flagged if loc[0] == "mem")

    @property
    def detected_locations(self) -> int:
        return len(self._flagged)

    def reset(self) -> None:
        self.alerts.clear()
        self._flagged.clear()
        self._arrivals.clear()


class AggregationDetector:
    """Fires when >= k distinct tags of one type sit on one byte."""

    def __init__(self, tag_type: str, threshold: int):
        if threshold < 2:
            raise ValueError(f"threshold must be >= 2, got {threshold}")
        self.tag_type = tag_type
        self.threshold = threshold
        self.alerts: List[Alert] = []
        self._flagged: Set[Location] = set()

    def check(
        self, shadow: ShadowMemory, location: Location, tick: int = 0
    ) -> Optional[Alert]:
        if location in self._flagged:
            return None
        tags = shadow.tags_at(location)
        matching = [tag for tag in tags if tag.type == self.tag_type]
        if len(set(matching)) < self.threshold:
            return None
        alert = Alert(location=location, tick=tick, tags=tags)
        self.alerts.append(alert)
        self._flagged.add(location)
        return alert

    def scan(self, shadow: ShadowMemory, tick: int = 0) -> List[Alert]:
        return [
            alert
            for location in shadow.tainted_locations()
            if (alert := self.check(shadow, location, tick)) is not None
        ]

    @property
    def detected_bytes(self) -> int:
        return sum(1 for loc in self._flagged if loc[0] == "mem")

    @property
    def detected_locations(self) -> int:
        return len(self._flagged)

    def reset(self) -> None:
        self.alerts.clear()
        self._flagged.clear()


class DetectorSuite:
    """Several detectors behind the tracker's single detector slot."""

    def __init__(self, detectors: Sequence[object]):
        if not detectors:
            raise ValueError("suite needs at least one detector")
        self.detectors = list(detectors)

    def check(
        self, shadow: ShadowMemory, location: Location, tick: int = 0
    ) -> Optional[Alert]:
        """First new alert from any member (all members are polled)."""
        first: Optional[Alert] = None
        for detector in self.detectors:
            alert = detector.check(shadow, location, tick)
            if alert is not None and first is None:
                first = alert
        return first

    def scan(self, shadow: ShadowMemory, tick: int = 0) -> List[Alert]:
        fired: List[Alert] = []
        for detector in self.detectors:
            fired.extend(detector.scan(shadow, tick))
        return fired

    @property
    def alerts(self) -> List[Alert]:
        combined: List[Alert] = []
        for detector in self.detectors:
            combined.extend(detector.alerts)
        combined.sort(key=lambda alert: alert.tick)
        return combined

    @property
    def detected_bytes(self) -> int:
        return sum(d.detected_bytes for d in self.detectors)

    @property
    def detected_locations(self) -> int:
        return sum(d.detected_locations for d in self.detectors)

    def reset(self) -> None:
        for detector in self.detectors:
            detector.reset()
