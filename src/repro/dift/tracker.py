"""The DIFT tracker: applies flow events to the shadow memory.

This is the FAROS propagation engine of Fig. 6, reduced to its taint
semantics:

* direct flows are propagated unconditionally (copy replaces the
  destination list, computation unions the operand lists),
* indirect flows are routed to the pluggable
  :class:`~repro.core.policy.PropagationPolicy`, which is where MITOS and
  its baselines differ,
* optionally, *all* flows are routed through the policy
  (``direct_via_policy=True``) -- the generalized mode of Section V-C's
  case study, where ``is_IFP`` is replaced by ``is_DFP_or_IFP`` and MITOS
  weighs every propagation.

The tracker keeps the copy-count vector and pollution live via the
:class:`~repro.dift.stats.TagCopyCounter`, and can host a
:class:`~repro.dift.detector.ConfluenceDetector` that is checked after
every mutation.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.core.decision import MultiDecision, TagCandidate
from repro.core.params import MitosParams
from repro.core.policy import PropagationPolicy
from repro.dift.detector import ConfluenceDetector
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import ShadowMemory
from repro.dift.stats import TagCopyCounter, TrackerStats
from repro.dift.tags import Tag

if TYPE_CHECKING:  # avoid a dift <-> obs import cycle; duck-typed at runtime
    from repro.obs.tracing import SpanTracer

#: observer signature: (event, candidates, decision-details-or-None,
#: selected tags, pollution at decision time)
IfpObserver = Callable[
    [FlowEvent, Sequence[TagCandidate], Optional[MultiDecision], Sequence[Tag], float],
    None,
]


class DIFTTracker:
    """Whole-system taint tracker with pluggable indirect-flow policy."""

    def __init__(
        self,
        params: MitosParams,
        policy: PropagationPolicy,
        scheduling: SchedulingPolicy = SchedulingPolicy.FIFO,
        detector: Optional[ConfluenceDetector] = None,
        direct_via_policy: bool = False,
        ifp_observer: Optional[IfpObserver] = None,
        tracer: Optional["SpanTracer"] = None,
        degrade_at: Optional[float] = None,
    ):
        if degrade_at is not None and not 0.0 < degrade_at <= 1.0:
            raise ValueError(
                f"degrade_at must be in (0, 1], got {degrade_at}"
            )
        self.params = params
        self.policy = policy
        self.counter = TagCopyCounter()
        self.shadow = ShadowMemory(
            params.M_prov,
            self.counter,
            scheduling,
            value_fn=(
                self.tag_retention_value
                if scheduling is SchedulingPolicy.VALUE
                else None
            ),
        )
        self.stats = TrackerStats()
        self.detector = detector
        self.direct_via_policy = direct_via_policy
        self.ifp_observer = ifp_observer
        self.tracer = tracer
        self.degrade_at = degrade_at
        # precomputed entry budget; None keeps the hot path to one check.
        self._degrade_limit: Optional[int] = (
            max(1, int(params.N_R * degrade_at))
            if degrade_at is not None
            else None
        )
        # per-kind handler table: one dict lookup replaces the enum
        # property chain on every event (handlers are bound methods, so
        # reset() swapping shadow/counter/stats needs no rebuild)
        direct = (
            self._apply_via_policy
            if direct_via_policy
            else self._apply_direct
        )
        self._dispatch = {
            FlowKind.INSERT: self._apply_insert,
            FlowKind.CLEAR: self._apply_clear,
            FlowKind.COPY: direct,
            FlowKind.COMPUTE: direct,
            FlowKind.ADDRESS_DEP: self._apply_via_policy,
            FlowKind.CONTROL_DEP: self._apply_via_policy,
        }
        self._bind_policy_pollution()

    def _bind_policy_pollution(self) -> None:
        """Give pollution-aware policies (MITOS, wrappers) the live signal."""
        binder = getattr(self.policy, "bind_pollution_source", None)
        if binder is not None:
            binder(self.pollution)

    # -- pollution: the globally shared Eq. 8 signal ----------------------

    def pollution(self) -> float:
        """Weighted memory pollution ``sum_t o_t sum_i n[t,i]``."""
        return self.counter.weighted_pollution(self.params.o)

    def tag_retention_value(self, tag: Tag) -> float:
        """Retention value under VALUE scheduling (Section VI future work).

        A tag's value in a provenance list is the magnitude of its
        undertainting submarginal, ``u_t * n**-alpha``: dropping one copy
        of a rare or important tag costs much more information flow than
        dropping a copy of a saturated one.
        """
        copies = max(self.counter.copies(tag), 1)
        return self.params.u_of(tag.type) * copies ** (-self.params.alpha)

    # -- event processing --------------------------------------------------

    def process(self, event: FlowEvent) -> None:
        """Apply one flow event to the shadow state."""
        # tracer is None on the un-instrumented path: one attribute check.
        tracer = self.tracer
        started = time.perf_counter_ns() if tracer is not None else 0
        stats = self.stats
        tick = event.tick
        if tick >= stats.ticks:
            stats.ticks = tick + 1
        context = event.context
        if context:
            by_context = stats.by_context
            by_context[context] = by_context.get(context, 0) + 1
        self._dispatch[event.kind](event)
        detector = self.detector
        if detector is not None:
            alert = detector.check(self.shadow, event.destination, tick)
            if alert is not None:
                stats.alerts += 1
        limit = self._degrade_limit
        if limit is not None and self.counter._total_entries > limit:
            self._degrade(event)
        if tracer is not None:
            tracer.end("tracker.process", started)

    def process_many(self, events: Sequence[FlowEvent]) -> None:
        for event in events:
            self.process(event)

    # -- handlers ----------------------------------------------------------
    #
    # Each handler is split into a per-kind event counter (a pure function
    # of the event's kind, batch-accountable from the columnar encoding)
    # and a ``*_flow`` method holding the state mutations and every
    # state-dependent counter.  The vector engine calls the ``*_flow``
    # layer directly and computes the per-kind counters with one bincount,
    # so both engines run the identical mutation code.

    def _apply_insert(self, event: FlowEvent) -> None:
        self.stats.inserts += 1
        self._insert_flow(event)

    def _insert_flow(self, event: FlowEvent) -> None:
        assert event.tag is not None  # validated by FlowEvent
        outcome = self.shadow.add_tag(event.destination, event.tag)
        stats = self.stats
        if outcome.added:
            stats.propagation_ops += 1
        if outcome.dropped is not None:
            stats.drops += 1
            stats.propagation_ops += 1

    def _apply_clear(self, event: FlowEvent) -> None:
        self.stats.clears += 1
        self._clear_flow(event)

    def _clear_flow(self, event: FlowEvent) -> None:
        dropped = self.shadow.clear_location(event.destination)
        self.stats.propagation_ops += len(dropped)

    def _apply_direct(self, event: FlowEvent) -> None:
        if event.kind is FlowKind.COPY:
            self.stats.dfp_copy += 1
        else:
            self.stats.dfp_compute += 1
        self._direct_flow(event)

    def _direct_flow(self, event: FlowEvent) -> None:
        shadow = self.shadow
        stats = self.stats
        if event.kind is FlowKind.COPY:
            source_list = shadow._lists.get(event.sources[0])
            added, dropped = shadow.replace_tags(
                event.destination,
                tuple(source_list._tags) if source_list is not None else (),
            )
        else:  # COMPUTE
            added, dropped = shadow.union_into(
                event.sources, event.destination
            )
        stats.propagation_ops += added + dropped
        stats.drops += dropped

    def _candidates_for(self, event: FlowEvent) -> List[TagCandidate]:
        """Unique source tags not already present at the destination."""
        lists = self.shadow._lists
        dest_list = lists.get(event.destination)
        present = dest_list._tags if dest_list is not None else ()
        candidates: List[TagCandidate] = []
        copies_of = self.counter._counts.get
        sources = event.sources
        if len(sources) == 1:
            # single source: its list is already duplicate-free
            source_list = lists.get(sources[0])
            if source_list is not None:
                for tag in source_list._tags:
                    if tag not in present:
                        candidates.append(
                            TagCandidate(
                                tag,
                                tag.type,
                                copies_of((tag.type, tag.index), 0),
                            )
                        )
            return candidates
        seen = set()
        for source in sources:
            source_list = lists.get(source)
            if source_list is None:
                continue
            for tag in source_list._tags:
                if tag in present or tag in seen:
                    continue
                seen.add(tag)
                candidates.append(
                    TagCandidate(
                        tag, tag.type, copies_of((tag.type, tag.index), 0)
                    )
                )
        return candidates

    def _apply_via_policy(self, event: FlowEvent) -> None:
        stats = self.stats
        kind = event.kind
        if kind is FlowKind.ADDRESS_DEP:
            stats.ifp_address += 1
            indirect = True
        elif kind is FlowKind.CONTROL_DEP:
            stats.ifp_control += 1
            indirect = True
        elif kind is FlowKind.COPY:
            stats.dfp_copy += 1
            indirect = False
        else:
            stats.dfp_compute += 1
            indirect = False
        self._policy_flow(event, indirect)

    def _policy_flow(self, event: FlowEvent, indirect: bool) -> None:
        stats = self.stats
        kind = event.kind
        candidates = self._candidates_for(event)
        if indirect:
            stats.ifp_candidates += len(candidates)
        if not candidates:
            return
        observer = self.ifp_observer
        if not self.policy.handles(kind.value):
            # hard-wired per-dependency-class block (Minos-style)
            if indirect:
                stats.ifp_blocked += len(candidates)
            if observer is not None:
                observer(event, candidates, None, [], self.pollution())
            return
        # the pollution signal is only read by observers here (the policy
        # pulls its own live estimate); measure it pre-propagation, and
        # only when someone is listening
        pollution_now = self.pollution() if observer is not None else 0.0
        free = self.shadow.free_slots(event.destination)
        tracer = self.tracer
        if tracer is not None:
            span_start = time.perf_counter_ns()
            selected, details = self.policy.select_with_details(candidates, free)
            tracer.end("policy.select", span_start)
        else:
            selected, details = self.policy.select_with_details(candidates, free)
        chosen_tags: List[Tag] = [c.key for c in selected]  # type: ignore[misc]
        add_tag = self.shadow.add_tag
        destination = event.destination
        for tag in chosen_tags:
            outcome = add_tag(destination, tag)
            if outcome.added:
                stats.propagation_ops += 1
            if outcome.dropped is not None:
                stats.drops += 1
                stats.propagation_ops += 1
        if indirect:
            stats.ifp_propagated += len(chosen_tags)
            stats.ifp_blocked += len(candidates) - len(chosen_tags)
        if observer is not None:
            observer(event, candidates, details, chosen_tags, pollution_now)

    # -- graceful degradation (pollution near N_R) -------------------------

    def _degrade(self, event: FlowEvent) -> None:
        """Shed the lowest-retention-value tags back under the budget.

        Instead of letting provenance state grow without bound when
        pollution approaches ``N_R`` (the regime where MITOS itself says
        tracking stops paying for its cost), the tracker drops *whole
        tags* in ascending :meth:`tag_retention_value` order -- saturated
        tags first, since each of their copies carries the least
        information flow -- until total entries fall to 90% of the
        budget.  The shed is reported through the ``ifp_observer`` hook
        as a synthetic CLEAR event with context ``dift.degraded`` so
        decision traces record exactly when and how hard degradation hit.
        """
        assert self._degrade_limit is not None
        pollution_before = self.pollution()
        target = max(1, int(self._degrade_limit * 0.9))
        tag_locations: dict = {}
        for location in self.shadow.tainted_locations():
            for tag in self.shadow.tags_at(location):
                tag_locations.setdefault(tag, []).append(location)
        order = sorted(
            tag_locations,
            key=lambda tag: (self.tag_retention_value(tag), tag.key),
        )
        shed = 0
        tags_shed = 0
        for tag in order:
            if self.counter.total_entries() <= target:
                break
            tags_shed += 1
            for location in tag_locations[tag]:
                if self.shadow.remove_tag(location, tag):
                    shed += 1
        self.stats.degradations += 1
        self.stats.shed_entries += shed
        self.stats.drops += shed
        self.stats.propagation_ops += shed
        if self.ifp_observer is not None:
            notice = FlowEvent(
                kind=FlowKind.CLEAR,
                destination=("sys", "degraded"),
                tick=event.tick,
                context="dift.degraded",
                meta={
                    "shed_entries": shed,
                    "tags_shed": tags_shed,
                    "limit": self._degrade_limit,
                    "entries_after": self.counter.total_entries(),
                },
            )
            self.ifp_observer(notice, [], None, [], pollution_before)

    # -- run-level helpers ---------------------------------------------------

    def reset(self) -> None:
        """Fresh shadow state for a new replay, keeping configuration."""
        scheduling = self.shadow.scheduling
        self.counter = TagCopyCounter()
        self.shadow = ShadowMemory(
            self.params.M_prov,
            self.counter,
            scheduling,
            value_fn=(
                self.tag_retention_value
                if scheduling is SchedulingPolicy.VALUE
                else None
            ),
        )
        self.stats = TrackerStats()
        self.policy.reset()
        if self.detector is not None:
            self.detector.reset()
        self._bind_policy_pollution()
