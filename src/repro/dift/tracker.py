"""The DIFT tracker: applies flow events to the shadow memory.

This is the FAROS propagation engine of Fig. 6, reduced to its taint
semantics:

* direct flows are propagated unconditionally (copy replaces the
  destination list, computation unions the operand lists),
* indirect flows are routed to the pluggable
  :class:`~repro.core.policy.PropagationPolicy`, which is where MITOS and
  its baselines differ,
* optionally, *all* flows are routed through the policy
  (``direct_via_policy=True``) -- the generalized mode of Section V-C's
  case study, where ``is_IFP`` is replaced by ``is_DFP_or_IFP`` and MITOS
  weighs every propagation.

The tracker keeps the copy-count vector and pollution live via the
:class:`~repro.dift.stats.TagCopyCounter`, and can host a
:class:`~repro.dift.detector.ConfluenceDetector` that is checked after
every mutation.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.core.decision import MultiDecision, TagCandidate
from repro.core.params import MitosParams
from repro.core.policy import PropagationPolicy
from repro.dift.detector import ConfluenceDetector
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import Location, ShadowMemory
from repro.dift.stats import TagCopyCounter, TrackerStats
from repro.dift.tags import Tag

if TYPE_CHECKING:  # avoid a dift <-> obs import cycle; duck-typed at runtime
    from repro.obs.tracing import SpanTracer

#: observer signature: (event, candidates, decision-details-or-None,
#: selected tags, pollution at decision time)
IfpObserver = Callable[
    [FlowEvent, Sequence[TagCandidate], Optional[MultiDecision], Sequence[Tag], float],
    None,
]


class DIFTTracker:
    """Whole-system taint tracker with pluggable indirect-flow policy."""

    def __init__(
        self,
        params: MitosParams,
        policy: PropagationPolicy,
        scheduling: SchedulingPolicy = SchedulingPolicy.FIFO,
        detector: Optional[ConfluenceDetector] = None,
        direct_via_policy: bool = False,
        ifp_observer: Optional[IfpObserver] = None,
        tracer: Optional["SpanTracer"] = None,
        degrade_at: Optional[float] = None,
    ):
        if degrade_at is not None and not 0.0 < degrade_at <= 1.0:
            raise ValueError(
                f"degrade_at must be in (0, 1], got {degrade_at}"
            )
        self.params = params
        self.policy = policy
        self.counter = TagCopyCounter()
        self.shadow = ShadowMemory(
            params.M_prov,
            self.counter,
            scheduling,
            value_fn=(
                self.tag_retention_value
                if scheduling is SchedulingPolicy.VALUE
                else None
            ),
        )
        self.stats = TrackerStats()
        self.detector = detector
        self.direct_via_policy = direct_via_policy
        self.ifp_observer = ifp_observer
        self.tracer = tracer
        self.degrade_at = degrade_at
        # precomputed entry budget; None keeps the hot path to one check.
        self._degrade_limit: Optional[int] = (
            max(1, int(params.N_R * degrade_at))
            if degrade_at is not None
            else None
        )
        self._bind_policy_pollution()

    def _bind_policy_pollution(self) -> None:
        """Give pollution-aware policies (MITOS, wrappers) the live signal."""
        binder = getattr(self.policy, "bind_pollution_source", None)
        if binder is not None:
            binder(self.pollution)

    # -- pollution: the globally shared Eq. 8 signal ----------------------

    def pollution(self) -> float:
        """Weighted memory pollution ``sum_t o_t sum_i n[t,i]``."""
        return self.counter.weighted_pollution(self.params.o)

    def tag_retention_value(self, tag: Tag) -> float:
        """Retention value under VALUE scheduling (Section VI future work).

        A tag's value in a provenance list is the magnitude of its
        undertainting submarginal, ``u_t * n**-alpha``: dropping one copy
        of a rare or important tag costs much more information flow than
        dropping a copy of a saturated one.
        """
        copies = max(self.counter.copies(tag), 1)
        return self.params.u_of(tag.type) * copies ** (-self.params.alpha)

    # -- event processing --------------------------------------------------

    def process(self, event: FlowEvent) -> None:
        """Apply one flow event to the shadow state."""
        # tracer is None on the un-instrumented path: one attribute check.
        tracer = self.tracer
        started = time.perf_counter_ns() if tracer is not None else 0
        self.stats.ticks = max(self.stats.ticks, event.tick + 1)
        if event.context:
            self.stats.note_context(event.context)
        kind = event.kind
        if kind is FlowKind.INSERT:
            self._apply_insert(event)
        elif kind is FlowKind.CLEAR:
            self._apply_clear(event)
        elif kind.is_direct and not self.direct_via_policy:
            self._apply_direct(event)
        else:
            self._apply_via_policy(event)
        if self.detector is not None:
            alert = self.detector.check(self.shadow, event.destination, event.tick)
            if alert is not None:
                self.stats.alerts += 1
        if (
            self._degrade_limit is not None
            and self.counter.total_entries() > self._degrade_limit
        ):
            self._degrade(event)
        if tracer is not None:
            tracer.end("tracker.process", started)

    def process_many(self, events: Sequence[FlowEvent]) -> None:
        for event in events:
            self.process(event)

    # -- handlers ----------------------------------------------------------

    def _apply_insert(self, event: FlowEvent) -> None:
        assert event.tag is not None  # validated by FlowEvent
        outcome = self.shadow.add_tag(event.destination, event.tag)
        self.stats.inserts += 1
        if outcome.added:
            self.stats.propagation_ops += 1
        if outcome.dropped is not None:
            self.stats.drops += 1
            self.stats.propagation_ops += 1

    def _apply_clear(self, event: FlowEvent) -> None:
        dropped = self.shadow.clear_location(event.destination)
        self.stats.clears += 1
        self.stats.propagation_ops += len(dropped)

    def _apply_direct(self, event: FlowEvent) -> None:
        if event.kind is FlowKind.COPY:
            source_tags = self.shadow.tags_at(event.sources[0])
            added, dropped = self.shadow.replace_tags(
                event.destination, source_tags
            )
            self.stats.dfp_copy += 1
        else:  # COMPUTE
            added, dropped = self.shadow.union_into(
                event.sources, event.destination
            )
            self.stats.dfp_compute += 1
        self.stats.propagation_ops += added + dropped
        self.stats.drops += dropped

    def _candidates_for(self, event: FlowEvent) -> List[TagCandidate]:
        """Unique source tags not already present at the destination."""
        present = set(self.shadow.tags_at(event.destination))
        seen = set()
        candidates: List[TagCandidate] = []
        for source in event.sources:
            for tag in self.shadow.tags_at(source):
                if tag in present or tag in seen:
                    continue
                seen.add(tag)
                candidates.append(
                    TagCandidate(
                        key=tag, tag_type=tag.type, copies=self.counter.copies(tag)
                    )
                )
        return candidates

    def _apply_via_policy(self, event: FlowEvent) -> None:
        if event.kind is FlowKind.ADDRESS_DEP:
            self.stats.ifp_address += 1
        elif event.kind is FlowKind.CONTROL_DEP:
            self.stats.ifp_control += 1
        elif event.kind is FlowKind.COPY:
            self.stats.dfp_copy += 1
        else:
            self.stats.dfp_compute += 1
        candidates = self._candidates_for(event)
        if event.kind.is_indirect:
            self.stats.ifp_candidates += len(candidates)
        if not candidates:
            return
        if not self.policy.handles(event.kind.value):
            # hard-wired per-dependency-class block (Minos-style)
            if event.kind.is_indirect:
                self.stats.ifp_blocked += len(candidates)
            if self.ifp_observer is not None:
                self.ifp_observer(
                    event, candidates, None, [], self.pollution()
                )
            return
        pollution_now = self.pollution()
        free = self.shadow.free_slots(event.destination)
        tracer = self.tracer
        if tracer is not None:
            span_start = time.perf_counter_ns()
            selected, details = self.policy.select_with_details(candidates, free)
            tracer.end("policy.select", span_start)
        else:
            selected, details = self.policy.select_with_details(candidates, free)
        chosen_tags: List[Tag] = [c.key for c in selected]  # type: ignore[misc]
        for tag in chosen_tags:
            outcome = self.shadow.add_tag(event.destination, tag)
            if outcome.added:
                self.stats.propagation_ops += 1
            if outcome.dropped is not None:
                self.stats.drops += 1
                self.stats.propagation_ops += 1
        if event.kind.is_indirect:
            self.stats.ifp_propagated += len(chosen_tags)
            self.stats.ifp_blocked += len(candidates) - len(chosen_tags)
        if self.ifp_observer is not None:
            self.ifp_observer(event, candidates, details, chosen_tags, pollution_now)

    # -- graceful degradation (pollution near N_R) -------------------------

    def _degrade(self, event: FlowEvent) -> None:
        """Shed the lowest-retention-value tags back under the budget.

        Instead of letting provenance state grow without bound when
        pollution approaches ``N_R`` (the regime where MITOS itself says
        tracking stops paying for its cost), the tracker drops *whole
        tags* in ascending :meth:`tag_retention_value` order -- saturated
        tags first, since each of their copies carries the least
        information flow -- until total entries fall to 90% of the
        budget.  The shed is reported through the ``ifp_observer`` hook
        as a synthetic CLEAR event with context ``dift.degraded`` so
        decision traces record exactly when and how hard degradation hit.
        """
        assert self._degrade_limit is not None
        pollution_before = self.pollution()
        target = max(1, int(self._degrade_limit * 0.9))
        tag_locations: dict = {}
        for location in self.shadow.tainted_locations():
            for tag in self.shadow.tags_at(location):
                tag_locations.setdefault(tag, []).append(location)
        order = sorted(
            tag_locations,
            key=lambda tag: (self.tag_retention_value(tag), tag.key),
        )
        shed = 0
        tags_shed = 0
        for tag in order:
            if self.counter.total_entries() <= target:
                break
            tags_shed += 1
            for location in tag_locations[tag]:
                if self.shadow.remove_tag(location, tag):
                    shed += 1
        self.stats.degradations += 1
        self.stats.shed_entries += shed
        self.stats.drops += shed
        self.stats.propagation_ops += shed
        if self.ifp_observer is not None:
            notice = FlowEvent(
                kind=FlowKind.CLEAR,
                destination=("sys", "degraded"),
                tick=event.tick,
                context="dift.degraded",
                meta={
                    "shed_entries": shed,
                    "tags_shed": tags_shed,
                    "limit": self._degrade_limit,
                    "entries_after": self.counter.total_entries(),
                },
            )
            self.ifp_observer(notice, [], None, [], pollution_before)

    # -- run-level helpers ---------------------------------------------------

    def reset(self) -> None:
        """Fresh shadow state for a new replay, keeping configuration."""
        scheduling = self.shadow.scheduling
        self.counter = TagCopyCounter()
        self.shadow = ShadowMemory(
            self.params.M_prov,
            self.counter,
            scheduling,
            value_fn=(
                self.tag_retention_value
                if scheduling is SchedulingPolicy.VALUE
                else None
            ),
        )
        self.stats = TrackerStats()
        self.policy.reset()
        if self.detector is not None:
            self.detector.reset()
        self._bind_policy_pollution()
