"""Tag-confluence attack detection (Section V-C).

FAROS flags an in-memory-only attack when a *netflow* tag and an
*export-table* tag land on the same byte: payload bytes arrived from the
network and were then touched by linking/loading machinery.  The detector
generalizes this to any required set of tag types and counts distinct
flagged bytes -- the paper's "detected bytes" metric of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dift.shadow import Location, ShadowMemory
from repro.dift.tags import Tag, TagTypes


@dataclass(frozen=True)
class Alert:
    """One confluence alert on one location."""

    location: Location
    tick: int
    tags: Tuple[Tag, ...]


class ConfluenceDetector:
    """Fires when a location's provenance list covers all required types.

    Each location alerts at most once (the set of flagged bytes is what
    Table II counts); :meth:`reset` re-arms everything for a new run.
    """

    def __init__(
        self,
        required_types: FrozenSet[str] = frozenset(
            {TagTypes.NETFLOW, TagTypes.EXPORT_TABLE}
        ),
    ):
        if not required_types:
            raise ValueError("required_types must not be empty")
        self.required_types = frozenset(required_types)
        self._required_list = sorted(self.required_types)
        self.alerts: List[Alert] = []
        self._flagged: Set[Location] = set()

    def check(
        self, shadow: ShadowMemory, location: Location, tick: int = 0
    ) -> Optional[Alert]:
        """Check one location after a mutation; return a new alert if fired."""
        if location in self._flagged:
            return None
        plist = shadow._lists.get(location)
        if plist is None:
            return None
        # short provenance lists: scanning per required type beats building
        # a type set for every event (this runs once per event replayed)
        tags = plist._tags
        for required in self._required_list:
            for tag in tags:
                if tag.type == required:
                    break
            else:
                return None
        alert = Alert(location=location, tick=tick, tags=tuple(tags))
        self.alerts.append(alert)
        self._flagged.add(location)
        return alert

    def scan(self, shadow: ShadowMemory, tick: int = 0) -> List[Alert]:
        """Sweep every tainted location (post-mortem detection)."""
        fired = []
        for location in shadow.tainted_locations():
            alert = self.check(shadow, location, tick)
            if alert is not None:
                fired.append(alert)
        return fired

    @property
    def detected_bytes(self) -> int:
        """Distinct flagged memory bytes (Table II's detection metric)."""
        return sum(1 for loc in self._flagged if loc[0] == "mem")

    @property
    def detected_locations(self) -> int:
        """Distinct flagged locations of any kind."""
        return len(self._flagged)

    def reset(self) -> None:
        self.alerts.clear()
        self._flagged.clear()

    # -- checkpoint support -------------------------------------------------

    def flagged_snapshot(self) -> List[Location]:
        """The already-alerted locations, in a deterministic order.

        Checkpoints persist this so a resumed replay neither re-alerts on
        locations the killed run already flagged nor under-counts
        ``detected_bytes``.
        """
        return sorted(self._flagged, key=repr)

    def restore_flagged(self, locations: "Iterable[Location]") -> None:
        """Re-arm the detector as if ``locations`` had already alerted."""
        self._flagged = set(locations)
