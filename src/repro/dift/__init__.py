"""FAROS-like DIFT substrate: tags, provenance lists, shadow memory, tracker."""

from repro.dift.tags import Tag, TagAllocator, TagTypes
from repro.dift.provenance import ProvenanceList, SchedulingPolicy
from repro.dift.shadow import Location, ShadowMemory, mem, reg
from repro.dift.stats import TagCopyCounter, TrackerStats
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tracker import DIFTTracker
from repro.dift.detector import Alert, ConfluenceDetector
from repro.dift.detectors import (
    AggregationDetector,
    DetectorSuite,
    SequenceDetector,
)
from repro.dift.snapshot import (
    SnapshotError,
    load_snapshot,
    restore_tracker,
    save_snapshot,
    snapshot_tracker,
)

__all__ = [
    "Tag",
    "TagAllocator",
    "TagTypes",
    "ProvenanceList",
    "SchedulingPolicy",
    "ShadowMemory",
    "Location",
    "mem",
    "reg",
    "TagCopyCounter",
    "TrackerStats",
    "FlowEvent",
    "FlowKind",
    "DIFTTracker",
    "ConfluenceDetector",
    "Alert",
    "SequenceDetector",
    "AggregationDetector",
    "DetectorSuite",
    "snapshot_tracker",
    "restore_tracker",
    "save_snapshot",
    "load_snapshot",
    "SnapshotError",
]
