"""MITOS reproduction: optimal decisioning for indirect flow propagation in DIFT.

This package reproduces *MITOS: Optimal Decisioning for the Indirect Flow
Propagation Dilemma in Dynamic Information Flow Tracking Systems* (ICDCS
2020).  It contains:

* :mod:`repro.core` -- the paper's contribution: the alpha-fair/beta-steep
  cost model, the marginal-cost propagation rule (Eq. 8), Algorithms 1 and 2,
  centralized solvers for the relaxed convex problem, and fairness metrics.
* :mod:`repro.dift` -- a FAROS-like DIFT substrate: tags, bounded provenance
  lists, shadow memory, direct/indirect flow rules and a confluence detector.
* :mod:`repro.isa` -- a small RISC-like machine whose execution traces stand
  in for QEMU/PANDA instruction streams, including CFG/post-dominator
  analysis used for control-dependency scoping.
* :mod:`repro.replay` -- PANDA-like record/replay of execution traces.
* :mod:`repro.faros` -- the whole-system pipeline of Fig. 6.
* :mod:`repro.workloads` -- PassMark-like benchmarks and the in-memory-only
  attack scenarios used in the paper's evaluation.
* :mod:`repro.distributed` -- multi-subsystem tracking with gossiped
  pollution estimates (the "large distributed systems" angle).
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core.params import MitosParams
from repro.core.decision import MitosEngine, TagCandidate, decide_multi, decide_single
from repro.core.policy import (
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
    PropagationPolicy,
    ThresholdPolicy,
)

__version__ = "1.1.0"


def __getattr__(name: str):
    # repro.api pulls in the full stack (faros, serve, obs); load it on
    # first access so `import repro` stays light for kernel-only users
    if name == "api":
        import importlib

        return importlib.import_module("repro.api")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "api",
    "MitosParams",
    "MitosEngine",
    "TagCandidate",
    "decide_single",
    "decide_multi",
    "PropagationPolicy",
    "MitosPolicy",
    "PropagateAllPolicy",
    "PropagateNonePolicy",
    "ThresholdPolicy",
    "__version__",
]
