"""Vector-side fast paths for the hot-event mutations.

The activity plane removes the cold ~75% of events; what remains is
bounded below by the mutation work itself, so the vector engine also
ships *state-equal* specializations of the two dominant hot kinds:

``copy_flow``
    Direct-copy replacement.  ``ShadowMemory.replace_tags`` re-adds the
    source tags one ``add_tag`` at a time (per-tag dedup scan, outcome
    objects, aggregate updates).  A copy's source list is already
    duplicate-free and within capacity, so the rebuilt destination list
    is exactly ``list(src tags)`` under every scheduling policy (FIFO and
    LRU append in add order; REJECT/VALUE never see overflow) -- the fast
    path clears, splices the list in, and bulk-syncs the counter and
    aggregates.  The content-equal shortcut mirrors
    ``replace_tags`` (including its hooks-off condition); events on a
    counter with birth/death monitors attached fall back to the scalar
    handler wholesale so hook interleaving is the scalar interleaving.

``policy_flow``
    Algorithm 2 without the decision-object materialization.  When
    nothing can observe per-decision structure -- no ``ifp_observer``, no
    decision log, no tracer span, and a plain cache-backed
    ``MitosPolicy`` -- the ``Decision``/``MultiDecision`` objects built
    by ``decide_multi`` are garbage on arrival.  The fast path runs the
    same ranking (same cache lookups, same ``under + over_base`` keys,
    same stable sort) and the same greedy loop (same pollution feedback,
    same float accumulation order into ``EngineStats.marginal_sum``),
    collecting only the selected tags.  Configurations with observers
    fall back to the scalar ``_policy_flow`` so trace bytes come from the
    identical code.

Both are *replacements proven state-equal*, not re-implementations of
policy: every counter, stat, and list they produce is pinned against the
scalar handlers by the equivalence suite (unit, property, and full-replay
byte-identity tests).
"""

from __future__ import annotations

from math import isfinite
from typing import TYPE_CHECKING, Callable, List

from repro.core.policy import MitosPolicy
from repro.dift.flows import FlowEvent
from repro.dift.provenance import ProvenanceList

if TYPE_CHECKING:
    from repro.dift.tracker import DIFTTracker

FlowFn = Callable[[FlowEvent], None]


def make_copy_flow(tracker: "DIFTTracker") -> FlowFn:
    """Direct-COPY handler, state-equal to ``DIFTTracker._direct_flow``."""
    shadow = tracker.shadow
    lists = shadow._lists
    counter = shadow.counter
    stats = tracker.stats
    scalar_flow = tracker._direct_flow
    m_prov = shadow.m_prov
    scheduling = shadow.scheduling
    value_fn = shadow.value_fn

    def copy_flow(event: FlowEvent) -> None:
        if counter.on_birth is not None or counter.on_death is not None:
            scalar_flow(event)  # preserve per-tag hook interleaving
            return
        source_list = lists.get(event.sources[0])
        destination = event.destination
        current = lists.get(destination)
        counts = counter._counts
        totals = counter._type_totals
        if source_list is None or not source_list._tags:
            # untainted source: pure clear (including popping the
            # empty-list entry a refused REJECT add can leave behind)
            if current is None:
                return
            dropped_tags = current._tags
            del lists[destination]
            dropped = len(dropped_tags)
            if dropped:
                shadow._entries -= dropped
                shadow._tainted -= 1
                for tag in dropped_tags:
                    key = (tag.type, tag.index)
                    count = counts[key]
                    if count == 1:
                        del counts[key]
                    else:
                        counts[key] = count - 1
                    tag_type = tag.type
                    total = totals[tag_type]
                    if total == 1:
                        del totals[tag_type]
                    else:
                        totals[tag_type] = total - 1
                counter._total_entries -= dropped
                counter._pollution_dirty = True
                stats.propagation_ops += dropped
                stats.drops += dropped
            return
        tags = source_list._tags
        if current is not None:
            if current._tags == tags:
                # replace_tags' content-equal shortcut: the clear+re-add
                # round trip would end in this exact state
                count = len(tags)
                stats.propagation_ops += 2 * count
                stats.drops += count
                return
            # distinct lists (self-copy lands in the shortcut above), so
            # snapshotting before the decrements is safe; the scalar path
            # pops the old list and builds a fresh one at the *end* of the
            # dict -- the re-insert keeps snapshot iteration order, while
            # reusing the allocation stays unobservable
            replacement = list(tags)
            old_tags = current._tags
            dropped = len(old_tags)
            for tag in old_tags:
                key = (tag.type, tag.index)
                count = counts[key]
                if count == 1:
                    del counts[key]
                else:
                    counts[key] = count - 1
                tag_type = tag.type
                total = totals[tag_type]
                if total == 1:
                    del totals[tag_type]
                else:
                    totals[tag_type] = total - 1
            current._tags = replacement
            current._members = set(replacement)
            del lists[destination]
            lists[destination] = current
            for tag in replacement:
                key = (tag.type, tag.index)
                counts[key] = counts.get(key, 0) + 1
                tag_type = tag.type
                totals[tag_type] = totals.get(tag_type, 0) + 1
            added = len(replacement)
            counter._total_entries += added - dropped
            counter._pollution_dirty = True
            shadow._entries += added - dropped
            if not dropped:
                shadow._tainted += 1
            stats.propagation_ops += added + dropped
            stats.drops += dropped
            return
        replacement = list(tags)
        rebuilt = ProvenanceList(m_prov, scheduling, value_fn)
        rebuilt._tags = replacement
        rebuilt._members = set(replacement)
        lists[destination] = rebuilt
        for tag in replacement:
            key = (tag.type, tag.index)
            counts[key] = counts.get(key, 0) + 1
            tag_type = tag.type
            totals[tag_type] = totals.get(tag_type, 0) + 1
        added = len(replacement)
        counter._total_entries += added
        counter._pollution_dirty = True
        shadow._entries += added
        shadow._tainted += 1
        stats.propagation_ops += added

    return copy_flow


def policy_fast_path_eligible(tracker: "DIFTTracker") -> bool:
    """Whether the decision-light Algorithm 2 path may replace
    ``_policy_flow``: nothing may observe per-decision structure and the
    policy must be a stock cache-backed :class:`MitosPolicy`."""
    policy = tracker.policy
    return (
        type(policy) is MitosPolicy
        and tracker.ifp_observer is None
        and tracker.tracer is None
        and policy.engine._cache is not None
        and not policy.engine._log_decisions
    )


def make_policy_flow(tracker: "DIFTTracker", indirect: bool) -> FlowFn:
    """Policy-routed handler, state-equal to ``DIFTTracker._policy_flow``.

    Only valid when :func:`policy_fast_path_eligible` holds -- the
    builder asserts it.
    """
    assert policy_fast_path_eligible(tracker)
    shadow = tracker.shadow
    lists = shadow._lists
    counter = shadow.counter
    copies_of = counter._counts.get
    stats = tracker.stats
    policy = tracker.policy
    engine = policy.engine
    engine_stats = engine.stats
    add_tag = shadow.add_tag
    o_of = engine.params.o_of
    m_prov = shadow.m_prov
    scheduling = shadow.scheduling
    value_fn = shadow.value_fn
    # one long-lived cache per engine: eligibility pinned ``_cache`` as
    # non-None, and the params-identity re-check of the ``marginal_cache``
    # property can only matter if params are swapped mid-replay, which
    # nothing does (the scalar path would rebuild its memo mid-run too)
    cache = engine.marginal_cache
    under = cache.under
    under_get = cache._under.get
    over = cache.over
    current_pollution_of = engine.current_pollution

    def policy_flow(event: FlowEvent) -> None:
        # inlined _candidates_for, fused with the under-marginal lookups
        # so each candidate is visited once and no TagCandidate objects
        # are built (same tags, same order, same copy counts)
        destination = event.destination
        dest_list = lists.get(destination)
        present = dest_list._tags if dest_list is not None else ()
        sources = event.sources
        cand_tags: List = []
        cand_types: List[str] = []
        unders: List[float] = []
        if len(sources) == 1:
            # single source: its list is already duplicate-free
            source_list = lists.get(sources[0])
            if source_list is not None:
                for tag in source_list._tags:
                    if tag not in present:
                        tag_type = tag.type
                        copies = copies_of((tag_type, tag.index), 0)
                        value = under_get((tag_type, copies))
                        if value is None:
                            value = under(copies, tag_type)
                        cand_tags.append(tag)
                        cand_types.append(tag_type)
                        unders.append(value)
        else:
            seen = set()
            for source in sources:
                source_list = lists.get(source)
                if source_list is None:
                    continue
                for tag in source_list._tags:
                    if tag in present or tag in seen:
                        continue
                    seen.add(tag)
                    tag_type = tag.type
                    copies = copies_of((tag_type, tag.index), 0)
                    value = under_get((tag_type, copies))
                    if value is None:
                        value = under(copies, tag_type)
                    cand_tags.append(tag)
                    cand_types.append(tag_type)
                    unders.append(value)
        count = len(cand_tags)
        if indirect:
            stats.ifp_candidates += count
        if not count:
            return
        # MitosPolicy.handles() is the always-True default; the scalar
        # handled-check is a no-op here.
        free = (
            dest_list.free_slots if dest_list is not None else m_prov
        )
        pollution = current_pollution_of()
        over_base = over(pollution)
        if count > 1:
            keys = [value + over_base for value in unders]
            order = sorted(range(count), key=keys.__getitem__)
        else:
            order = (0,)
        # the greedy loop of decide_multi, minus the Decision objects;
        # float operations in the identical order.  The over-submarginal
        # is only recomputed after a propagation changes the pollution --
        # between propagations the memo would return the same float.
        marginal_sum = engine_stats.marginal_sum
        current_pollution = pollution
        current_over = over_base
        props = 0
        selected: List = []
        for i in order:
            marginal = unders[i] + current_over
            if props < free and marginal <= 0:
                props += 1
                selected.append(cand_tags[i])
                current_pollution += o_of(cand_types[i])
                current_over = over(current_pollution)
            if isfinite(marginal):
                marginal_sum += marginal
        engine_stats.marginal_sum = marginal_sum
        engine_stats.considered += count
        engine_stats.propagated += props
        engine_stats.blocked += count - props
        if props:
            if counter.on_birth is not None:
                # birth hooks fire inside counter.increment; route through
                # add_tag so the hook interleaving is the scalar one
                for tag in selected:
                    outcome = add_tag(destination, tag)
                    if outcome.added:
                        stats.propagation_ops += 1
                    if outcome.dropped is not None:
                        stats.drops += 1
                        stats.propagation_ops += 1
            else:
                # candidates are unique and absent from the destination,
                # and ``props <= free`` keeps the list within capacity, so
                # every add is a plain append under all four scheduling
                # policies -- bulk-extend and sync the integer aggregates
                if dest_list is None:
                    dest_list = ProvenanceList(m_prov, scheduling, value_fn)
                    lists[destination] = dest_list
                    was_empty = True
                else:
                    was_empty = not dest_list._tags
                dest_list._tags.extend(selected)
                dest_list._members.update(selected)
                counts = counter._counts
                totals = counter._type_totals
                for tag in selected:
                    key = (tag.type, tag.index)
                    counts[key] = counts.get(key, 0) + 1
                    tag_type = tag.type
                    totals[tag_type] = totals.get(tag_type, 0) + 1
                counter._total_entries += props
                counter._pollution_dirty = True
                if was_empty:
                    shadow._tainted += 1
                shadow._entries += props
                stats.propagation_ops += props
        if indirect:
            stats.ifp_propagated += props
            stats.ifp_blocked += count - props

    return policy_flow
