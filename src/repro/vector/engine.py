"""The columnar batch replay engine: hot-event loop + batch accounting.

``run_vector_replay`` is the run planner behind ``Replayer(engine="vector")``.
It executes the same replay a scalar :class:`~repro.replay.replayer.Replayer`
would, byte-identically on every observable surface (stats payloads,
tracker snapshots, detector alerts, decision-trace bytes), but restructured
around the columnar encoding:

1. encode the recording once (cached on the recording),
2. walk only the *hot* events -- those the
   :class:`~repro.vector.plane.TaintActivityPlane` cannot prove to be
   no-ops -- running each through the tracker's scalar ``*_flow``
   mutation methods (so both engines execute the identical mutation
   code, and the Eq. 8 decisions flow through the same
   ``decide_multi``/``MarginalCache`` path),
3. account the pure-count statistics (per-kind counters, stage counts,
   tick horizon, per-context counts, per-kind metrics) for the whole
   window with NumPy reductions.

Byte-identity argument (expanded in docs/PERFORMANCE.md):

* every shadow/counter mutation the scalar path performs happens at an
  event's destination, and every event whose relevance set is tainted is
  treated as hot -- cold events are provable no-ops for the shadow,
  counter, policy, observers and detector alike;
* hot events run the verbatim scalar code against the same live
  objects, in the same order, with the same RNG/decision state;
* the batched counters are pure functions of the event columns that
  nothing reads during the replay, so bulk accumulation is unobservable.

Engine eligibility is checked eagerly: configurations whose contracts
are inherently per-event (plugin supervision, checkpoint/sampler/callback
plugins, mid-stream resume, degraded-mode shedding) raise
:class:`VectorEngineError` naming every blocker rather than silently
falling back or diverging.  Fault injection is supported: the stream is
perturbed *before* the replayer sees it, so the vector engine replays the
perturbed recording exactly as the scalar engine would.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

from repro.dift.flows import FlowKind
from repro.vector.encode import (
    KIND_ADDRESS_DEP,
    KIND_CLEAR,
    KIND_CODES,
    KIND_COMPUTE,
    KIND_CONTROL_DEP,
    KIND_COPY,
    KIND_INSERT,
    encode_recording,
)
from repro.vector.flows import (
    make_copy_flow,
    make_policy_flow,
    policy_fast_path_eligible,
)
from repro.vector.plane import (
    TaintActivityPlane,
    batch_account,
    merge_context_counts,
)

if TYPE_CHECKING:
    from repro.replay.record import Recording
    from repro.replay.replayer import Replayer, ReplayResult

#: engine names accepted by Replayer/FarosConfig/CLI
ENGINE_NAMES = ("scalar", "vector")


class VectorEngineError(RuntimeError):
    """A replay configuration the vector engine cannot honor."""


def vector_support_reasons(
    replayer: "Replayer", start_index: int = 0
) -> List[str]:
    """Why this replayer cannot run the vector engine (empty = it can)."""
    from repro.faros.pipeline import FarosPipeline

    reasons: List[str] = []
    if replayer.supervisor is not None:
        reasons.append(
            "plugin supervision is per-event (retry/skip/quarantine "
            "contracts); use --engine scalar with --supervisor"
        )
    if start_index != 0:
        reasons.append(
            "mid-stream resume replays from a checkpointed scalar state; "
            "use --engine scalar with --resume-from"
        )
    plugins = replayer.plugins
    if len(plugins) != 1 or not isinstance(plugins[0], FarosPipeline):
        names = [getattr(p, "name", type(p).__name__) for p in plugins]
        reasons.append(
            "the vector engine drives exactly one FarosPipeline plugin; "
            f"got {names!r} (samplers, checkpoint writers and callback "
            "plugins observe individual events)"
        )
    # the degrade check is independent of the plugin shape: report every
    # blocker in one error, not one per attempt
    for pipeline in plugins:
        if isinstance(pipeline, FarosPipeline):
            if pipeline.tracker.degrade_at is not None:
                reasons.append(
                    "degraded-mode shedding (--degrade-at) re-evaluates "
                    "the entry budget after every event"
                )
            break
    return reasons


def run_vector_replay(
    replayer: "Replayer",
    recording: "Recording",
    limit: Optional[int] = None,
    start_index: int = 0,
) -> "ReplayResult":
    """Replay ``recording`` through the columnar engine.

    Raises :class:`VectorEngineError` for unsupported configurations;
    otherwise returns the same :class:`ReplayResult` (and leaves behind
    the same tracker/pipeline state) the scalar engine would.
    """
    reasons = vector_support_reasons(replayer, start_index)
    if reasons:
        raise VectorEngineError(
            "vector engine unavailable: " + "; ".join(reasons)
        )
    pipeline = replayer.plugins[0]
    tracer = replayer.tracer

    started = time.perf_counter()
    loop_start = replayer._begin(recording)
    tracker = pipeline.tracker

    encode_start = time.perf_counter_ns() if tracer is not None else 0
    columnar = encode_recording(recording, tracker.direct_via_policy)
    if tracer is not None:
        tracer.end("vector.encode", encode_start)

    n = len(columnar)
    end = n if limit is None else max(0, min(limit, n))

    policy = tracker.policy
    if getattr(policy, "vector_seed", False):
        seeder = getattr(policy, "preseed_marginals", None)
        if seeder is not None:
            seeder(columnar.tag_types)

    # kind-code -> mutation handler: the scalar ``*_flow`` methods, with
    # the state-equal fast paths of repro.vector.flows swapped in for the
    # dominant kinds whenever nothing can observe the difference
    if policy_fast_path_eligible(tracker):
        indirect_flow = make_policy_flow(tracker, True)
        via_policy_flow = make_policy_flow(tracker, False)
    else:
        def indirect_flow(event):
            tracker._policy_flow(event, True)

        def via_policy_flow(event):
            tracker._policy_flow(event, False)

    if tracker.direct_via_policy:
        copy_flow = via_policy_flow
        compute_flow = via_policy_flow
    else:
        copy_flow = make_copy_flow(tracker)
        compute_flow = tracker._direct_flow

    flow_fns = [None] * len(FlowKind)
    flow_fns[KIND_INSERT] = tracker._insert_flow
    flow_fns[KIND_CLEAR] = tracker._clear_flow
    flow_fns[KIND_COPY] = copy_flow
    flow_fns[KIND_COMPUTE] = compute_flow
    flow_fns[KIND_ADDRESS_DEP] = indirect_flow
    flow_fns[KIND_CONTROL_DEP] = indirect_flow

    loop_ns = time.perf_counter_ns() if tracer is not None else 0
    plane = TaintActivityPlane(columnar)
    events = recording.events
    kinds = columnar.kinds
    dest_ids = columnar.dest_ids
    lists_get = tracker.shadow._lists.get
    detector = tracker.detector
    stats = tracker.stats
    next_hot = plane.next_hot
    set_active = plane.set_active
    active_map = plane.active

    # kinds whose destination is provably tainted after the event runs:
    # INSERT always ends with a non-empty list (a refused REJECT add only
    # happens against an already-full list), and a *hot* direct COMPUTE
    # unions a currently-active source into the destination.  For these
    # the per-event shadow lookup is skipped; CLEAR always ends untainted.
    always_active = bytearray(len(FlowKind))
    always_active[KIND_INSERT] = 1
    if not tracker.direct_via_policy:
        always_active[KIND_COMPUTE] = 1

    shadow = tracker.shadow
    pos = 0
    hot = 0
    while True:
        index = next_hot(pos, end)
        if index >= end:
            break
        event = events[index]
        kind = kinds[index]
        flow_fns[kind](event)
        destination = event.destination
        if detector is not None:
            alert = detector.check(shadow, destination, event.tick)
            if alert is not None:
                stats.alerts += 1
        loc_id = dest_ids[index]
        if always_active[kind]:
            if not active_map[loc_id]:
                set_active(loc_id, True, index)
        elif kind == KIND_CLEAR:
            active_map[loc_id] = 0
        else:
            dest_list = lists_get(destination)
            set_active(
                loc_id,
                dest_list is not None and len(dest_list._tags) > 0,
                index,
            )
        hot += 1
        pos = index + 1
    if tracer is not None:
        tracer.end("vector.hot_loop", loop_ns)

    account_ns = time.perf_counter_ns() if tracer is not None else 0
    accounts = batch_account(columnar, end)
    stats.inserts += accounts.inserts
    stats.clears += accounts.clears
    stats.dfp_copy += accounts.dfp_copy
    stats.dfp_compute += accounts.dfp_compute
    stats.ifp_address += accounts.ifp_address
    stats.ifp_control += accounts.ifp_control
    if accounts.tick_horizon > stats.ticks:
        stats.ticks = accounts.tick_horizon
    merge_context_counts(stats.by_context, accounts.context_counts)

    stage_counts = pipeline.stage_counts
    stage_counts["is_dfp"] = stage_counts.get("is_dfp", 0) + accounts.is_dfp
    stage_counts["is_ifp"] = stage_counts.get("is_ifp", 0) + accounts.is_ifp
    stage_counts["insert"] = stage_counts.get("insert", 0) + accounts.inserts
    stage_counts["clear"] = stage_counts.get("clear", 0) + accounts.clears

    event_counters = pipeline._event_counters
    if event_counters is not None:
        for kind, counter in event_counters.items():
            count = int(accounts.kind_counts[KIND_CODES[kind]])
            if count:
                counter.inc(count)
    if tracer is not None:
        tracer.end("vector.accounting", account_ns)

    result = replayer._finish(recording, end, started, loop_start)
    result.meta["engine"] = "vector"
    result.meta["hot_events"] = hot
    result.meta["cold_events"] = end - hot
    return result
