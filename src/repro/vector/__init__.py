"""Columnar batch replay engine (the software DIFT "tag plane").

Decouples tag propagation from per-event Python dispatch the way
hardware DIFT coprocessors decouple it from the main pipeline: the
recording becomes NumPy columns (:mod:`repro.vector.encode`), a
taint-activity plane skips provably-inert events
(:mod:`repro.vector.plane`), the Eq. 8 marginals batch-evaluate in
float64 (:mod:`repro.vector.kernel`), and the run planner
(:mod:`repro.vector.engine`) replays byte-identically to the scalar
engine.  Select with ``Replayer(engine="vector")``,
``FarosConfig(engine="vector")`` or ``mitos-repro replay --engine vector``.
"""

from repro.vector.encode import ColumnarRecording, encode_recording
from repro.vector.engine import (
    ENGINE_NAMES,
    VectorEngineError,
    run_vector_replay,
    vector_support_reasons,
)
from repro.vector.kernel import (
    decide_multi_batch,
    over_marginals,
    seed_marginal_cache,
    under_marginals,
    under_table,
    under_table_stack,
)
from repro.vector.plane import TaintActivityPlane, batch_account

__all__ = [
    "ColumnarRecording",
    "encode_recording",
    "ENGINE_NAMES",
    "VectorEngineError",
    "run_vector_replay",
    "vector_support_reasons",
    "decide_multi_batch",
    "over_marginals",
    "seed_marginal_cache",
    "under_marginals",
    "under_table",
    "under_table_stack",
    "TaintActivityPlane",
    "batch_account",
]
