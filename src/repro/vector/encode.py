"""Columnar event encoder: a ``Recording`` as NumPy structured arrays.

Hardware DIFT planes (the coprocessor line of work the ROADMAP cites)
consume the instruction stream as fixed-width records, not heap objects.
This module performs the software analogue at load time: one pass over a
:class:`~repro.replay.record.Recording` produces

* a structured column array (:data:`EVENT_DTYPE`) holding each event's
  op kind, tick, interned context / destination / first-source /
  tag-type ids and its operand count,
* interned symbol tables (``locations``, ``contexts``, ``tag_types``)
  mapping those ids back to the original objects, and
* the *taint-relevance index* the vector engine's activity plane needs:
  for every location, the sorted positions of the events whose hotness
  depends on that location, plus the positions of the always-hot INSERT
  events.

Relevance sets (which locations, if tainted, make an event a state
mutation) per kind:

``INSERT``
    none -- always hot (listed in ``insert_positions`` instead).
``CLEAR``
    the destination (clearing an untainted location drops nothing).
``COPY`` (direct)
    the first source *and* the destination (``replace_tags`` clears a
    tainted destination even from an untainted source).
``COPY``/``COMPUTE`` via policy, ``COMPUTE``, ``ADDRESS_DEP``, ``CONTROL_DEP``
    the sources (no tainted source -> no candidates -> provable no-op;
    the policy path never clears the destination).

The encoding is cached on the recording keyed by the identity and length
of its event list plus the ``direct_via_policy`` mode (which changes the
COPY relevance set); fault injection builds a fresh ``Recording``, so a
perturbed stream always re-encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.dift.flows import FlowKind
from repro.dift.shadow import Location
from repro.replay.record import Recording

#: stable integer code per flow kind (enum declaration order)
KIND_CODES: Dict[FlowKind, int] = {kind: i for i, kind in enumerate(FlowKind)}
KIND_INSERT = KIND_CODES[FlowKind.INSERT]
KIND_COPY = KIND_CODES[FlowKind.COPY]
KIND_COMPUTE = KIND_CODES[FlowKind.COMPUTE]
KIND_ADDRESS_DEP = KIND_CODES[FlowKind.ADDRESS_DEP]
KIND_CONTROL_DEP = KIND_CODES[FlowKind.CONTROL_DEP]
KIND_CLEAR = KIND_CODES[FlowKind.CLEAR]

#: one fixed-width record per event; -1 encodes "absent" for the
#: nullable columns (context, first source, tag type)
EVENT_DTYPE = np.dtype(
    [
        ("kind", np.int8),
        ("tick", np.int64),
        ("ctx", np.int32),
        ("dest", np.int32),
        ("src0", np.int32),
        ("nsrc", np.int16),
        ("tag_type", np.int16),
    ]
)

_CACHE_ATTR = "_columnar_cache"


@dataclass
class ColumnarRecording:
    """The fixed-width, index-accelerated form of a recording."""

    #: structured per-event columns (:data:`EVENT_DTYPE`)
    columns: np.ndarray
    #: interned symbol tables, id -> original object
    locations: List[Location]
    contexts: List[str]
    tag_types: List[str]
    #: per-location sorted positions of taint-relevant events, as plain
    #: lists -- the activity plane consumes them one element at a time
    #: via ``bisect``, where list indexing beats ndarray scalars
    postings: List[List[int]]
    #: sorted positions of the always-hot INSERT events
    insert_positions: np.ndarray
    #: plain-list mirrors of the kind/dest columns -- the engine's hot
    #: loop reads single elements, where list indexing beats ndarray
    #: scalar extraction
    kinds: List[int]
    dest_ids: List[int]
    #: the COPY relevance-set mode this encoding was built for
    direct_via_policy: bool

    def __len__(self) -> int:
        return len(self.columns)


def encode_recording(
    recording: Recording, direct_via_policy: bool = False
) -> ColumnarRecording:
    """Encode (or fetch the cached encoding of) a recording."""
    events = recording.events
    key = (id(events), len(events), direct_via_policy)
    cached = recording.__dict__.get(_CACHE_ATTR)
    if cached is not None and cached[0] == key:
        return cached[1]
    columnar = _encode(recording, direct_via_policy)
    recording.__dict__[_CACHE_ATTR] = (key, columnar)
    return columnar


def _encode(
    recording: Recording, direct_via_policy: bool
) -> ColumnarRecording:
    events = recording.events
    n = len(events)
    columns = np.zeros(n, dtype=EVENT_DTYPE)

    locations: List[Location] = []
    loc_ids: Dict[Location, int] = {}
    contexts: List[str] = []
    ctx_ids: Dict[str, int] = {}
    tag_types: List[str] = []
    type_ids: Dict[str, int] = {}

    def intern_loc(location: Location) -> int:
        loc_id = loc_ids.get(location)
        if loc_id is None:
            loc_id = len(locations)
            loc_ids[location] = loc_id
            locations.append(location)
        return loc_id

    kind_col = np.empty(n, dtype=np.int8)
    tick_col = np.empty(n, dtype=np.int64)
    ctx_col = np.empty(n, dtype=np.int32)
    dest_col = np.empty(n, dtype=np.int32)
    src0_col = np.empty(n, dtype=np.int32)
    nsrc_col = np.empty(n, dtype=np.int16)
    type_col = np.empty(n, dtype=np.int16)

    # (location-id, event-position) pairs, generated in event order so a
    # stable sort by location leaves each posting list position-sorted
    rel_locs: List[int] = []
    rel_positions: List[int] = []
    insert_positions: List[int] = []

    for position, event in enumerate(events):
        kind = event.kind
        code = KIND_CODES[kind]
        kind_col[position] = code
        tick_col[position] = event.tick
        dest_id = intern_loc(event.destination)
        dest_col[position] = dest_id

        context = event.context
        if context:
            ctx_id = ctx_ids.get(context)
            if ctx_id is None:
                ctx_id = len(contexts)
                ctx_ids[context] = ctx_id
                contexts.append(context)
            ctx_col[position] = ctx_id
        else:
            ctx_col[position] = -1

        sources = event.sources
        nsrc_col[position] = len(sources)
        src0_col[position] = (
            intern_loc(sources[0]) if sources else -1
        )

        tag = event.tag
        if tag is not None:
            type_id = type_ids.get(tag.type)
            if type_id is None:
                type_id = len(tag_types)
                type_ids[tag.type] = type_id
                tag_types.append(tag.type)
            type_col[position] = type_id
        else:
            type_col[position] = -1

        # -- taint-relevance index ------------------------------------
        if code == KIND_INSERT:
            insert_positions.append(position)
        elif code == KIND_CLEAR:
            rel_locs.append(dest_id)
            rel_positions.append(position)
        elif code == KIND_COPY and not direct_via_policy:
            src_id = src0_col[position]
            rel_locs.append(src_id)
            rel_positions.append(position)
            if dest_id != src_id:
                rel_locs.append(dest_id)
                rel_positions.append(position)
        else:
            # policy-routed flows: hotness depends on the sources only
            seen_ids = set()
            for source in sources:
                src_id = intern_loc(source)
                if src_id not in seen_ids:
                    seen_ids.add(src_id)
                    rel_locs.append(src_id)
                    rel_positions.append(position)

    columns["kind"] = kind_col
    columns["tick"] = tick_col
    columns["ctx"] = ctx_col
    columns["dest"] = dest_col
    columns["src0"] = src0_col
    columns["nsrc"] = nsrc_col
    columns["tag_type"] = type_col

    postings = _build_postings(rel_locs, rel_positions, len(locations))

    return ColumnarRecording(
        columns=columns,
        locations=locations,
        contexts=contexts,
        tag_types=tag_types,
        postings=postings,
        insert_positions=np.asarray(insert_positions, dtype=np.int64),
        kinds=kind_col.tolist(),
        dest_ids=dest_col.tolist(),
        direct_via_policy=direct_via_policy,
    )


def _build_postings(
    rel_locs: List[int], rel_positions: List[int], n_locations: int
) -> List[List[int]]:
    """Transpose (location, position) pairs into per-location postings."""
    postings: List[List[int]] = [[] for _ in range(n_locations)]
    if not rel_locs:
        return postings
    locs = np.asarray(rel_locs, dtype=np.int64)
    positions = np.asarray(rel_positions, dtype=np.int64)
    order = np.argsort(locs, kind="stable")
    locs = locs[order]
    positions = positions[order]
    # boundaries of each location's run in the sorted pair list
    boundaries = np.flatnonzero(locs[1:] != locs[:-1]) + 1
    runs = np.split(positions, boundaries)
    run_locs = locs[np.concatenate(([0], boundaries))]
    for loc_id, run in zip(run_locs, runs):
        postings[int(loc_id)] = run.tolist()
    return postings
