"""Vectorized Eq. 8 kernel: batch marginal costs in float64.

Hardware DIFT planes evaluate tag decisions in bulk; this module is the
software analogue for the Eq. 8 marginal cost, computing

* the undertainting submarginal ``-u_T * n**(-alpha)`` (``-inf`` at
  ``copies == 0``, the ``alpha = 1`` log-limit included), and
* the overtainting submarginal ``tau_eff * beta * (P/N_R)**(beta-1)``

over whole candidate batches as NumPy float64 arrays.

Bit-equality design
-------------------
NumPy's float64 ``power`` ufunc is *not* bit-identical to CPython's
``**`` on this class of hardware (its SIMD pow kernels differ from libm
in the last ulp for a few percent of inputs -- measured and pinned by
the kernel tests).  Two consequences shape this module:

* The undertainting side is served from an **exact gather table**:
  per-type tables of ``under_marginal(copies, ...)`` values computed by
  the scalar :mod:`repro.core.costs` code, then gathered with NumPy
  fancy indexing.  Copies are small non-negative integers (bounded by
  how many locations exist), so a bounded table covers the working set
  and every gathered value is *the* scalar value, bit for bit.  This is
  exactly the :class:`~repro.core.decision.MarginalCache` memo semantics
  in columnar form, and :func:`seed_marginal_cache` bulk-loads a live
  cache from the same values.

* The overtainting side has exact arithmetic fast paths for integer
  ``beta`` (``beta - 1`` in {0, 1, 2, 3} reduces to multiplication,
  which IEEE 754 makes deterministic); other betas fall back to
  ``np.power`` and may differ from the scalar path by one ulp.  The
  replay engines never consume these batch over-terms for decisions --
  :func:`~repro.core.decision.decide_multi` recomputes the sequential,
  pollution-dependent over-term with the scalar code -- so decision
  bit-equality never rests on ``np.power``.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core import costs
from repro.core.decision import (
    Decision,
    MarginalCache,
    MultiDecision,
    TagCandidate,
    decide_multi,
)
from repro.core.params import MitosParams

#: default copies range covered by under-marginal tables / cache seeding
DEFAULT_MAX_COPIES = 256

#: below this many candidates the ranking runs as a plain stable sort
#: over the same gather-table values -- the array round trip costs more
#: than it saves (the online service's requests are almost always tiny)
_SMALL_BATCH = 16

#: exact multiplicative fast paths for ``(P/N_R)**(beta-1)``
_EXACT_OVER_EXPONENTS = (0.0, 1.0, 2.0, 3.0)


def under_table(
    tag_type: str, max_copies: int, params: MitosParams
) -> np.ndarray:
    """Exact under-marginal table ``t[n] = under_marginal(n, type)``.

    Values are produced by the scalar :func:`repro.core.costs.under_marginal`
    (including ``-inf`` at index 0 and the ``alpha = 1`` reciprocal), so a
    gather from this table is bit-equal to the scalar call.
    """
    if max_copies < 0:
        raise ValueError(f"max_copies must be >= 0, got {max_copies}")
    return np.array(
        [
            costs.under_marginal(copies, tag_type, params)
            for copies in range(max_copies + 1)
        ],
        dtype=np.float64,
    )


def under_table_stack(
    tag_types: Sequence[str], max_copies: int, params: MitosParams
) -> np.ndarray:
    """Stacked tables, shape ``(len(tag_types), max_copies + 1)``.

    Row ``i`` is :func:`under_table` for ``tag_types[i]``; gather with
    ``stack[type_codes, copies]``.
    """
    if not tag_types:
        return np.zeros((0, max_copies + 1), dtype=np.float64)
    return np.stack(
        [under_table(tag_type, max_copies, params) for tag_type in tag_types]
    )


def under_marginals(
    copies: np.ndarray,
    type_codes: np.ndarray,
    table_stack: np.ndarray,
) -> np.ndarray:
    """Batch undertainting submarginals via exact table gather.

    ``copies`` beyond the table range raise ``IndexError`` rather than
    silently extrapolating; size the table for the workload (the copy
    count of a tag is bounded by the number of tainted locations).
    """
    return table_stack[type_codes, copies]


def over_marginals(
    pollution_values: "np.ndarray | float",
    params: MitosParams,
) -> np.ndarray:
    """Batch overtainting submarginals ``tau_eff * beta * (P/N_R)**(beta-1)``.

    Exact (bit-equal to :func:`repro.core.costs.over_marginal`) whenever
    ``beta - 1`` is in {0, 1, 2, 3}; otherwise within one ulp (NumPy's
    SIMD pow vs libm).  The same left-to-right multiplication order as
    the scalar code is used so the exact paths really are exact.
    """
    scaled = np.asarray(pollution_values, dtype=np.float64) / params.N_R
    if np.any(scaled < 0):
        raise ValueError("pollution must be non-negative")
    exponent = params.beta - 1.0
    if exponent == 0.0:
        powered = np.ones_like(scaled)
    elif exponent == 1.0:
        powered = scaled
    elif exponent == 2.0:
        powered = scaled * scaled
    elif exponent == 3.0:
        powered = scaled * scaled * scaled
    else:
        powered = np.power(scaled, exponent)
    return params.effective_tau * params.beta * powered


def marginal_batch(
    copies: np.ndarray,
    type_codes: np.ndarray,
    table_stack: np.ndarray,
    pollution_value: float,
    params: MitosParams,
) -> np.ndarray:
    """Batch Eq. 8 marginals at one shared pollution value.

    The under side comes from the exact gather table; the over side is a
    single scalar :func:`repro.core.costs.over_marginal` broadcast over
    the batch, so every element equals ``under + over`` exactly as the
    scalar/cached decision path computes it (``-inf + over`` stays
    ``-inf`` for zero-copy candidates).
    """
    over = costs.over_marginal(pollution_value, params)
    return under_marginals(copies, type_codes, table_stack) + over


def rank_candidates(
    copies: np.ndarray,
    type_codes: np.ndarray,
    table_stack: np.ndarray,
    over_base: float,
) -> np.ndarray:
    """Stable ascending order of ``under + over_base`` -- Alg. 2's ranking.

    Stable argsort over bit-equal keys reproduces ``sorted()``'s tie
    order exactly, so the permutation matches
    :func:`repro.core.decision.decide_multi` including sort ties.
    """
    keys = under_marginals(copies, type_codes, table_stack) + over_base
    return np.argsort(keys, kind="stable")


def decide_multi_batch(
    candidates: Sequence[TagCandidate],
    free_slots: int,
    pollution: float,
    params: MitosParams,
    table_stack: Optional[np.ndarray] = None,
    tag_types: Optional[Sequence[str]] = None,
    table_rows: Optional[Sequence[Sequence[float]]] = None,
    type_index: Optional[dict] = None,
) -> MultiDecision:
    """Algorithm 2 with the ranking key computed by the vector kernel.

    The greedy propagate loop is inherently sequential (each propagation
    feeds the next over-term), so only the dominant ranking work is
    vectorized; the sequential tail reuses the scalar code.  Output is
    bit-identical to :func:`repro.core.decision.decide_multi` -- pinned
    by the kernel property tests.

    ``table_rows`` is an optional plain-list view of ``table_stack``
    (``table_stack.tolist()``); when the caller holds the tables across
    calls -- the online decision shards do -- passing it lets the
    small-batch path gather python floats directly, which is measurably
    cheaper than per-element ndarray indexing.  The values are the same
    table entries, so decisions are unaffected.
    """
    if free_slots < 0:
        raise ValueError(f"free_slots must be non-negative, got {free_slots}")
    if not candidates:
        return MultiDecision(free_slots=free_slots)
    if table_stack is None or tag_types is None:
        tag_types = sorted({c.tag_type for c in candidates})
        max_copies = max(c.copies for c in candidates)
        table_stack = under_table_stack(tag_types, max_copies, params)
        table_rows = None
        type_index = None
    if type_index is None:
        type_index = {tag_type: i for i, tag_type in enumerate(tag_types)}
    over_base = costs.over_marginal(pollution, params)
    if len(candidates) <= _SMALL_BATCH:
        # same table values, same stable ordering -- ``sorted`` over
        # bit-equal keys reproduces the argsort permutation exactly; the
        # gathered under values are reused by the sequential tail below
        if table_rows is not None:
            unders = [
                table_rows[type_index[c.tag_type]][c.copies]
                for c in candidates
            ]
        else:
            unders = [
                float(table_stack[type_index[c.tag_type], c.copies])
                for c in candidates
            ]
        keys = [under + over_base for under in unders]
        order = sorted(range(len(candidates)), key=keys.__getitem__)
        ranked = [(candidates[i], unders[i]) for i in order]
    else:
        copies = np.array([c.copies for c in candidates], dtype=np.int64)
        codes = np.array(
            [type_index[c.tag_type] for c in candidates], dtype=np.int64
        )
        under_array = under_marginals(copies, codes, table_stack)
        order = np.argsort(under_array + over_base, kind="stable")
        ranked = [(candidates[i], float(under_array[i])) for i in order]
    # The sequential tail: table submarginals (bit-equal to the scalar
    # calls by construction), pollution feedback after every propagation.
    # ``over_marginal`` is identical for all tags in the published form,
    # so it is recomputed only when a propagation moves the pollution --
    # exactly the memo structure of ``MarginalCache.over``.
    result = MultiDecision(free_slots=free_slots)
    decisions = result.decisions
    current_pollution = pollution
    over = over_base
    props = 0
    for candidate, under in ranked:
        marginal = under + over
        should_propagate = props < free_slots and marginal <= 0
        decisions.append(
            Decision(
                candidate=candidate,
                marginal=marginal,
                propagate=should_propagate,
                under_marginal=under,
                over_marginal=over,
            )
        )
        if should_propagate:
            props += 1
            current_pollution += params.o_of(candidate.tag_type)
            over = costs.over_marginal(current_pollution, params)
    return result


class RowBatchResult(NamedTuple):
    """One cross-request columnar Algorithm 2 pass (see
    :func:`decide_rows_batch`), everything in within-row rank order."""

    #: permutation into the flat candidate arrays: rows stay contiguous,
    #: candidates inside each row are in Alg. 2 rank order
    order: np.ndarray
    #: under submarginal per candidate (rank order)
    unders: np.ndarray
    #: over submarginal *as packed per candidate* (rank order): the
    #: pollution-fed value at each propagation, frozen after the cut
    overs: np.ndarray
    #: ``unders + overs`` (rank order)
    marginals: np.ndarray
    #: propagation count per row -- candidates ``[0, props)`` of each
    #: row's rank order propagate, the rest are blocked
    props: List[int]
    #: position of each candidate inside its row (rank order)
    positions: np.ndarray
    #: bool per candidate (rank order): True iff it propagates --
    #: ``positions < props[row]``, precomputed so the caller packs
    #: response flags with one ``np.where``
    propagated: np.ndarray


#: exponents where the row-batch over matrix is bit-equal to the scalar
#: path: ``x**1.0 == x`` and ``x**2.0 == x*x`` hold for every float64
#: under a correctly-rounded ``pow`` (pinned by the kernel tests), but
#: ``x**3.0 != x*x*x`` for some inputs, so 3 stays on the memo path here
_EXACT_ROW_OVER_EXPONENTS = (0.0, 1.0, 2.0)


def decide_rows_batch(
    type_codes: np.ndarray,
    copies: np.ndarray,
    row_ids: np.ndarray,
    row_sizes: np.ndarray,
    free_slots: Sequence[int],
    pollution: Sequence[float],
    over_base: np.ndarray,
    table_stack: np.ndarray,
    o_table: np.ndarray,
    over_of: Callable[[float], float],
    params: Optional[MitosParams] = None,
) -> Optional[RowBatchResult]:
    """Algorithm 2 over many independent rows in one columnar pass.

    The cross-request fusion behind ``DecisionShard.decide_rows``: all
    candidate rows of one queue drain (many requests, many connections)
    land in flat columns and are ranked/cut together instead of one
    ``sorted``-and-walk per request.  Bit-identical to running the
    scalar per-row path on each row, by construction:

    * unders come from the same exact gather ``table_stack[codes, copies]``;
    * the rank keys are ``under + over_base`` per row, ordered by one
      stable ``np.lexsort`` -- stable sort over bit-equal float keys
      reproduces each row's ``sorted()`` permutation including ties;
    * Alg. 2's propagation set is always a *prefix* of the rank order:
      unders ascend along the order, and the pollution-fed over term is
      non-decreasing (``beta >= 1``, ``o_t >= 0``), so the marginal
      ``under_j + over(Q_j)`` is non-decreasing along the propagation
      sequence and the first failure (or the free-slot budget) ends it;
    * the pollution feedback sequence ``Q_0 = P, Q_j = Q_{j-1} + o_t``
      is a row-wise ``np.cumsum`` -- a strictly left-associated
      accumulation, the same float adds in the same order as the scalar
      ``current_pollution += o_of(t)`` loop;
    * packed over values are either the vectorized
      :func:`over_marginals` matrix (exact multiplicative exponents,
      where every element is bit-equal to the scalar fill -- see
      :data:`_EXACT_ROW_OVER_EXPONENTS`) or the caller's ``over_of``
      memo, so batched and sequential execution serve the same floats.

    Returns ``None`` when any rank key is NaN (a ``-inf`` under meeting
    an ``inf`` over): ``sorted()``'s behavior under NaN keys is not a
    stable-sort contract, so the caller must fall back to the scalar
    row path rather than risk a permutation mismatch.
    """
    unders = table_stack[type_codes, copies]
    keys = unders + over_base[row_ids]
    if np.isnan(keys).any():
        return None
    order = np.lexsort((keys, row_ids))
    unders_sorted = unders[order]
    o_sorted = o_table[type_codes[order]]
    n_rows = row_sizes.shape[0]
    n_max = int(row_sizes.max())
    starts = np.zeros(n_rows, dtype=np.intp)
    np.cumsum(row_sizes[:-1], out=starts[1:])
    positions = np.arange(row_ids.shape[0], dtype=np.intp) - starts[row_ids]
    # pollution feedback matrix: Q[r, j] = pollution_r after j propagations,
    # built as a row-wise cumsum over [P_r, o_1, ..., o_{n-1}] (zero-padded
    # tails past each row's length never feed a used entry)
    feedback = np.zeros((n_rows, n_max), dtype=np.float64)
    feedback[:, 0] = pollution
    inner = positions < (row_sizes[row_ids] - 1)
    feedback[row_ids[inner], positions[inner] + 1] = o_sorted[inner]
    np.cumsum(feedback, axis=1, out=feedback)
    if (
        params is not None
        and params.beta - 1.0 in _EXACT_ROW_OVER_EXPONENTS
    ):
        # Fully vectorized cut, no per-row Python tail.  For the exact
        # multiplicative exponents the whole over matrix runs the same
        # operations (and operation order) as the scalar memo fill, so
        # every element is bit-equal.  The cut needs no monotonicity
        # argument here: ``argmin`` over the propagate-eligibility mask
        # finds the *first* failing position, which is exactly where the
        # scalar walk stops -- entries past it are never read.
        over_m = over_marginals(feedback, params)
        free_arr = np.asarray(free_slots, dtype=np.intp)
        # marginal grid in rank position, one pad column that is never
        # propagatable so argmin always finds a False
        marg = np.full((n_rows, n_max + 1), np.inf)
        marg[row_ids, positions] = unders_sorted
        marg[:, :n_max] += over_m
        # NaN marginals compare False, i.e. blocked -- the scalar
        # ``propagate iff marginal <= 0`` convention
        ok = marg <= 0
        ok[:, :n_max] &= np.arange(n_max) < free_arr[:, None]
        # the first ineligible position is the cut: the scalar walk
        # freezes ``over`` there, and with unders ascending along the
        # rank order nothing after it can propagate
        props_arr = ok.argmin(axis=1)
        props_flat = props_arr[row_ids]
        propagated = positions < props_flat
        # propagated positions pack their own over; blocked positions
        # pack the value frozen after the last propagation
        overs = over_m[row_ids, np.minimum(positions, props_flat)]
        return RowBatchResult(
            order=order,
            unders=unders_sorted,
            overs=overs,
            marginals=unders_sorted + overs,
            props=props_arr.tolist(),
            positions=positions,
            propagated=propagated,
        )
    # the sequential tail, per row: find the propagation prefix and the
    # packed over value per position, walking the caller's over memo so
    # batched and sequential execution serve the very same float
    # objects; plain-list indexing beats per-element ndarray access
    feedback_rows = feedback.tolist()
    unders_list = unders_sorted.tolist()
    sizes_list = row_sizes.tolist()
    overs_list: List[float] = []
    append_over = overs_list.append
    extend_overs = overs_list.extend
    props: List[int] = []
    append_props = props.append
    base = 0
    for row in range(n_rows):
        size = sizes_list[row]
        limit = free_slots[row]
        if limit > size:
            limit = size
        q_row = feedback_rows[row]
        j = 0
        while j < limit:
            over = over_of(q_row[j])
            # ``not <= 0`` (not ``> 0``) so a NaN marginal blocks, the
            # same convention as the scalar propagate test
            if not unders_list[base + j] + over <= 0:
                break
            append_over(over)
            j += 1
        if j < size:
            # blocked candidates all carry the over value frozen after
            # the j-th propagation, exactly as the scalar loop packs it
            extend_overs([over_of(q_row[j])] * (size - j))
        append_props(j)
        base += size
    overs = np.array(overs_list, dtype=np.float64)
    return RowBatchResult(
        order=order,
        unders=unders_sorted,
        overs=overs,
        marginals=unders_sorted + overs,
        props=props,
        positions=positions,
        propagated=positions < np.asarray(props, dtype=np.intp)[row_ids],
    )


def seed_marginal_cache(
    cache: MarginalCache,
    tag_types: Sequence[str],
    max_copies: int = DEFAULT_MAX_COPIES,
) -> int:
    """Bulk-load a :class:`MarginalCache`'s under table from the kernel.

    Entries are the exact table values (scalar-computed, see module
    docs), so a pre-seeded cache serves byte-identical marginals to one
    filled lazily -- seeding is purely a warm-up.  Seeding stops at the
    cache's ``max_entries`` budget so it can never trigger the
    clear-on-overflow path and evict live entries.

    Returns the number of entries actually added.
    """
    params = cache.params
    under = cache._under
    budget = cache.max_entries - len(under)
    seeded = 0
    for tag_type in tag_types:
        if seeded >= budget:
            break
        table = under_table(
            tag_type, min(max_copies, budget - seeded), params
        )
        for copies in range(table.shape[0]):
            if seeded >= budget:
                break
            key = (tag_type, copies)
            if key not in under:
                under[key] = float(table[copies])
                seeded += 1
    return seeded


def verify_batch_agreement(
    candidate_sets: Sequence[Sequence[TagCandidate]],
    free_slots: int,
    pollution: float,
    params: MitosParams,
) -> List[bool]:
    """Cross-check :func:`decide_multi_batch` against the scalar Alg. 2.

    Returns one flag per candidate set: True iff every decision field
    (order, propagate, marginal, both submarginals) is bit-identical.
    Used by the kernel tests and available for ad-hoc auditing.
    """
    agreements: List[bool] = []
    for candidates in candidate_sets:
        scalar = decide_multi(candidates, free_slots, pollution, params)
        batch = decide_multi_batch(candidates, free_slots, pollution, params)
        same = len(scalar.decisions) == len(batch.decisions) and all(
            a.candidate == b.candidate
            and a.propagate == b.propagate
            and a.marginal == b.marginal
            and a.under_marginal == b.under_marginal
            and a.over_marginal == b.over_marginal
            for a, b in zip(scalar.decisions, batch.decisions)
        )
        agreements.append(same)
    return agreements
