"""Taint-activity plane: skip-to-next-hot-event index over the columns.

The vector engine's core observation is that most replayed events are
*cold*: given which locations currently hold tags, the event provably
mutates nothing (see the relevance-set table in :mod:`repro.vector.encode`).
On the full network recording ~75% of events are cold.  The plane tracks
the tainted-location set as a NumPy bitmap and answers "what is the next
event at or after position ``pos`` that can mutate state?" in amortized
sub-linear time, so the engine's Python loop touches only hot events.

Mechanism: a min-heap of ``(position, location)`` entries over the
per-location posting lists built at encode time.  An entry means "the
next taint-relevant event of this *active* (tainted) location is at this
position".  INSERT events are merged in from their own sorted position
array via a monotone pointer.  Deactivation is lazy (stale entries are
discarded when popped); activation pushes the location's first posting
after the activation point.  Every heap pop is charged to a hot event's
relevant-location set, so total index work is proportional to the hot
work itself, not to the recording length.

Batch accounting for the cold majority lives here too
(:func:`batch_account`): the pure-function-of-the-columns statistics
(per-kind counters, tick horizon, per-context counts) for a whole
``[0, end)`` window as a handful of NumPy reductions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Tuple

import numpy as np

from repro.vector.encode import (
    KIND_ADDRESS_DEP,
    KIND_CLEAR,
    KIND_COMPUTE,
    KIND_CONTROL_DEP,
    KIND_COPY,
    KIND_INSERT,
    ColumnarRecording,
)


class TaintActivityPlane:
    """Tainted-location bitmap + next-hot-event index.

    The index structures are plain Python (bytearray bitmap, list
    postings, ``bisect``/``heapq``): the operations are single-element,
    where interpreter-native containers beat NumPy scalar extraction by
    an order of magnitude.  NumPy earns its keep on the whole-column
    reductions (:func:`batch_account`), not here.
    """

    def __init__(self, columnar: ColumnarRecording):
        self._postings = columnar.postings
        self.active = bytearray(len(columnar.locations))
        self._heap: List[Tuple[int, int]] = []
        self._inserts = columnar.insert_positions.tolist()
        self._insert_ptr = 0

    def is_active(self, loc_id: int) -> bool:
        return bool(self.active[loc_id])

    def set_active(self, loc_id: int, value: bool, at_index: int) -> None:
        """Record ``loc_id``'s taint state right after event ``at_index``.

        Activation schedules the location's next relevant event (strictly
        after ``at_index``); deactivation is lazy -- any scheduled entry
        is discarded when it surfaces.
        """
        active = self.active
        if value:
            if not active[loc_id]:
                active[loc_id] = 1
                postings = self._postings[loc_id]
                nxt = bisect_right(postings, at_index)
                if nxt < len(postings):
                    heappush(self._heap, (postings[nxt], loc_id))
        else:
            active[loc_id] = 0

    def next_hot(self, pos: int, end: int) -> int:
        """Position of the first possibly-mutating event in ``[pos, end)``.

        Returns ``end`` when no such event remains.  "Possibly": a hot
        verdict re-checks nothing -- the engine simply runs the event
        through the scalar mutation code; only *cold* verdicts carry a
        proof obligation, and those follow from the relevance sets.
        """
        inserts = self._inserts
        ptr = self._insert_ptr
        n_inserts = len(inserts)
        while ptr < n_inserts and inserts[ptr] < pos:
            ptr += 1
        self._insert_ptr = ptr
        nxt = inserts[ptr] if ptr < n_inserts else end

        heap = self._heap
        active = self.active
        while heap:
            position, loc_id = heap[0]
            if position >= pos:
                if active[loc_id]:
                    if position < nxt:
                        nxt = position
                    break
                heappop(heap)  # lazily-deactivated location
                continue
            heappop(heap)
            if active[loc_id]:
                postings = self._postings[loc_id]
                here = bisect_left(postings, pos)
                if here < len(postings):
                    heappush(heap, (postings[here], loc_id))
        return nxt if nxt < end else end


@dataclass
class BatchAccounts:
    """The column-derivable statistics for a ``[0, end)`` window."""

    #: per-kind event counts indexed by the encode kind codes
    kind_counts: np.ndarray
    #: ``max(tick) + 1`` over the window, 0 when empty
    tick_horizon: int
    #: per-context counts in first-appearance order (scalar dict order)
    context_counts: List[Tuple[str, int]]

    @property
    def inserts(self) -> int:
        return int(self.kind_counts[KIND_INSERT])

    @property
    def clears(self) -> int:
        return int(self.kind_counts[KIND_CLEAR])

    @property
    def dfp_copy(self) -> int:
        return int(self.kind_counts[KIND_COPY])

    @property
    def dfp_compute(self) -> int:
        return int(self.kind_counts[KIND_COMPUTE])

    @property
    def ifp_address(self) -> int:
        return int(self.kind_counts[KIND_ADDRESS_DEP])

    @property
    def ifp_control(self) -> int:
        return int(self.kind_counts[KIND_CONTROL_DEP])

    @property
    def is_dfp(self) -> int:
        return self.dfp_copy + self.dfp_compute

    @property
    def is_ifp(self) -> int:
        return self.ifp_address + self.ifp_control


def batch_account(columnar: ColumnarRecording, end: int) -> BatchAccounts:
    """Compute the pure-count statistics for ``columns[:end]`` in bulk.

    These are exactly the counters the scalar path bumps per event as
    pure functions of the event's own columns (kind, tick, context) --
    nothing during a replay reads them back, so accumulating them once
    after the hot loop is observationally identical.
    """
    columns = columnar.columns
    kinds = columns["kind"][:end]
    kind_counts = np.bincount(
        kinds.astype(np.int64, copy=False), minlength=6
    )
    tick_horizon = (
        int(columns["tick"][:end].max()) + 1 if end > 0 else 0
    )
    context_counts: List[Tuple[str, int]] = []
    if columnar.contexts and end > 0:
        ctx = columns["ctx"][:end]
        named = ctx[ctx >= 0]
        if named.size:
            codes, first_seen, counts = np.unique(
                named, return_index=True, return_counts=True
            )
            order = np.argsort(first_seen, kind="stable")
            context_counts = [
                (columnar.contexts[int(codes[i])], int(counts[i]))
                for i in order
            ]
    return BatchAccounts(
        kind_counts=kind_counts,
        tick_horizon=tick_horizon,
        context_counts=context_counts,
    )


def merge_context_counts(
    by_context: Dict[str, int], context_counts: List[Tuple[str, int]]
) -> None:
    """Fold batch per-context counts into a scalar-path ``by_context``.

    ``context_counts`` is in first-appearance order, so folding into an
    empty dict reproduces the scalar insertion order (and bytes) of
    ``TrackerStats.by_context`` exactly.
    """
    for context, count in context_counts:
        by_context[context] = by_context.get(context, 0) + count
