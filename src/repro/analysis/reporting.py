"""Plain-text renderers for experiment tables and series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

Number = Union[int, float]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-4):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Number],
    ys: Sequence[Number],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
    max_points: int = 25,
) -> str:
    """Render an (x, y) series, downsampling long ones evenly."""
    if len(xs) != len(ys):
        raise ValueError(
            f"series length mismatch: {len(xs)} xs vs {len(ys)} ys"
        )
    n = len(xs)
    if n > max_points:
        step = n / max_points
        indices = [int(i * step) for i in range(max_points)]
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = list(range(n))
    rows = [[xs[i], ys[i]] for i in indices]
    table = format_table([x_label, y_label], rows, precision=precision)
    return f"{name} ({n} points)\n{table}"


def format_mapping(
    name: str, mapping: Mapping[str, object], precision: int = 3
) -> str:
    """Render a {key: value} mapping as a two-column table."""
    rows = [[key, value] for key, value in mapping.items()]
    return format_table(
        ["metric", "value"], rows, precision=precision, title=name
    )
