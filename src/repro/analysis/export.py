"""Machine-readable experiment exports (CSV / JSON).

The text renderers in :mod:`repro.analysis.reporting` target humans; these
helpers serialize the same results for downstream tooling (plotting
scripts, regression dashboards).  Dataclasses export transparently.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

PathLike = Union[str, Path]


def _jsonable(value: object) -> object:
    """Best-effort conversion of experiment results to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float):
        if value != value:  # NaN has no JSON spelling
            return None
        if value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


def to_json(result: object, path: PathLike, indent: int = 2) -> Path:
    """Serialize any experiment result (dataclasses welcome) to JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(_jsonable(result), indent=indent) + "\n")
    return target


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    path: PathLike,
) -> Path:
    """Write a headers+rows table as CSV."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return target


def series_to_csv(
    xs: Sequence[object],
    ys: Sequence[object],
    path: PathLike,
    x_label: str = "x",
    y_label: str = "y",
) -> Path:
    """Write an (x, y) series as a two-column CSV."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    return rows_to_csv([x_label, y_label], zip(xs, ys), path)
