"""Multi-seed summary statistics for experiment robustness.

The paper averages its case study over six shell runs; this module
provides the general machinery: run any seeded experiment over several
seeds and summarize each metric with mean, standard deviation, and a
normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

#: z-value for the 95% two-sided normal interval
Z_95 = 1.96


@dataclass(frozen=True)
class Summary:
    """Mean / spread of one metric across repetitions."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the 95% CI for the mean (normal approximation)."""
        if self.n <= 1:
            return 0.0
        return Z_95 * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple:
        half = self.ci95_half_width
        return (self.mean - half, self.mean + half)


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample (sample standard deviation)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return Summary(
        n=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def summarize_metrics(
    samples: Sequence[Mapping[str, float]]
) -> Dict[str, Summary]:
    """Per-metric summaries over repeated runs' metric dicts.

    Metrics missing from some repetitions are summarized over the
    repetitions that do report them.
    """
    by_metric: Dict[str, List[float]] = {}
    for sample in samples:
        for metric, value in sample.items():
            by_metric.setdefault(metric, []).append(float(value))
    return {metric: summarize(values) for metric, values in by_metric.items()}


def repeat_over_seeds(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> Dict[str, Summary]:
    """Run a seeded experiment per seed and summarize every metric.

    ``run`` maps a seed to a flat ``{metric: value}`` dict (e.g.
    ``lambda seed: system_metrics(seed).as_dict()``).
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    return summarize_metrics([dict(run(seed)) for seed in seeds])
