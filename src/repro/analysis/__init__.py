"""Metrics, timelines, lineage, lifetimes, sweeps, plots, and reporting."""

from repro.analysis.timeline import DecisionPoint, DecisionTimeline
from repro.analysis.metrics import RunMetrics, collect_run_metrics
from repro.analysis.reporting import format_mapping, format_series, format_table
from repro.analysis.lineage import LineageGraph, SourceHit, undertainting_of
from repro.analysis.lifetime import LifetimeMonitor
from repro.analysis.trace_stats import (
    TraceSummary,
    format_trace_summary,
    summarize_recording,
)
from repro.analysis.decision_trace import (
    DecisionTraceSummary,
    format_decision_trace_summary,
    summarize_decision_trace,
    summarize_decision_trace_file,
)
from repro.analysis.sweep import ParameterSweep, SweepResult
from repro.analysis.stats import Summary, repeat_over_seeds, summarize
from repro.analysis.export import rows_to_csv, series_to_csv, to_json
from repro.analysis.plot import ascii_plot, decision_stripe, multi_series_plot

__all__ = [
    "DecisionPoint",
    "DecisionTimeline",
    "RunMetrics",
    "collect_run_metrics",
    "format_table",
    "format_series",
    "format_mapping",
    "LineageGraph",
    "SourceHit",
    "undertainting_of",
    "LifetimeMonitor",
    "TraceSummary",
    "summarize_recording",
    "format_trace_summary",
    "DecisionTraceSummary",
    "summarize_decision_trace",
    "summarize_decision_trace_file",
    "format_decision_trace_summary",
    "ParameterSweep",
    "SweepResult",
    "Summary",
    "summarize",
    "repeat_over_seeds",
    "to_json",
    "rows_to_csv",
    "series_to_csv",
    "ascii_plot",
    "multi_series_plot",
    "decision_stripe",
]
