"""Recording-level statistics: what is in a trace before tracking it.

A :class:`TraceSummary` answers the questions one asks of a PANDA record
before paying for an analysis pass: how long is it, what flow classes
does it contain, which instructions produced them, where do taint
sources come from, and which destinations are hottest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.dift.flows import FlowKind
from repro.replay.record import Recording


@dataclass
class TraceSummary:
    """Aggregate statistics of one recording."""

    events: int = 0
    duration_ticks: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    context_counts: Dict[str, int] = field(default_factory=dict)
    tag_births_by_type: Dict[str, int] = field(default_factory=dict)
    distinct_tags: int = 0
    distinct_destinations: int = 0
    hottest_destinations: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def indirect_fraction(self) -> float:
        """Share of flow events that are indirect (the IFP pressure)."""
        indirect = self.kind_counts.get("address_dep", 0) + self.kind_counts.get(
            "control_dep", 0
        )
        flow_total = sum(
            count
            for kind, count in self.kind_counts.items()
            if kind not in ("insert", "clear")
        )
        if flow_total == 0:
            return 0.0
        return indirect / flow_total


def summarize_recording(recording: Recording, top_k: int = 5) -> TraceSummary:
    """One pass over the recording collecting the summary."""
    if top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")
    summary = TraceSummary(
        events=len(recording), duration_ticks=recording.duration_ticks
    )
    destination_counts: Dict[str, int] = {}
    seen_tags = set()
    for event in recording:
        summary.kind_counts[event.kind.value] = (
            summary.kind_counts.get(event.kind.value, 0) + 1
        )
        if event.context:
            summary.context_counts[event.context] = (
                summary.context_counts.get(event.context, 0) + 1
            )
        if event.kind is FlowKind.INSERT and event.tag is not None:
            if event.tag not in seen_tags:
                seen_tags.add(event.tag)
                summary.tag_births_by_type[event.tag.type] = (
                    summary.tag_births_by_type.get(event.tag.type, 0) + 1
                )
        key = repr(event.destination)
        destination_counts[key] = destination_counts.get(key, 0) + 1
    summary.distinct_tags = len(seen_tags)
    summary.distinct_destinations = len(destination_counts)
    summary.hottest_destinations = sorted(
        destination_counts.items(), key=lambda item: -item[1]
    )[:top_k]
    return summary


def format_trace_summary(summary: TraceSummary) -> str:
    """Human-readable rendering of a summary."""
    blocks = [
        format_table(
            ["metric", "value"],
            [
                ["events", summary.events],
                ["duration (ticks)", summary.duration_ticks],
                ["distinct tags", summary.distinct_tags],
                ["distinct destinations", summary.distinct_destinations],
                ["indirect-flow fraction", summary.indirect_fraction],
            ],
            title="trace summary",
        ),
        format_table(
            ["flow kind", "events"],
            sorted(summary.kind_counts.items()),
            title="flow mix",
        ),
    ]
    if summary.tag_births_by_type:
        blocks.append(
            format_table(
                ["tag type", "tags born"],
                sorted(summary.tag_births_by_type.items()),
                title="taint sources",
            )
        )
    if summary.hottest_destinations:
        blocks.append(
            format_table(
                ["destination", "writes"],
                summary.hottest_destinations,
                title="hottest destinations",
            )
        )
    return "\n\n".join(blocks)
