"""Replay-engine benchmarking: measurement + the published reports.

One module owns the numbers three consumers share:

* ``pytest benchmarks/`` (the hot-path and vector benches),
* the ``mitos-repro bench`` subcommand,
* CI's ``bench-vector`` job, which uploads ``BENCH_replay.json``.

All three measure the same thing -- best-of-N full replays of the
network recording through each engine -- and rewrite the same artifacts
(``results/replay_hotpath.txt``, ``results/replay_throughput.txt`` and
``BENCH_replay.json`` at the repo root), so the checked-in numbers can
never drift from the measurement code.

Three stacks are measured:

``scalar``
    the per-event :class:`~repro.replay.replayer.Replayer` loop with the
    PR 3 optimizations (running aggregates, memoized Eq. 8 marginals),
``vector``
    the columnar batch engine (:mod:`repro.vector`), byte-identical to
    scalar on every observable surface,
``reference``
    the pre-optimization stack -- uncached marginals, from-scratch
    pollution scans -- kept as the honest baseline the speedups are
    anchored to.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.core import costs
from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift.detector import ConfluenceDetector
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import Replayer

#: repo-root artifact consumed by CI and the README perf section
BENCH_JSON_NAME = "BENCH_replay.json"


class ReferenceTracker(DIFTTracker):
    """A tracker with the pre-PR-3 cost profile: pollution is recomputed
    from a full copy-vector scan on every call instead of being served
    from the running aggregate.  Values must match bit-for-bit."""

    def pollution(self):
        return costs.pollution(
            {k: float(v) for k, v in self.counter.snapshot().items()},
            self.params,
        )


def reference_replay(
    recording: Recording, params: MitosParams, trace_out=None
):
    """Replay through the slow-path stack: uncached Eq. 8 marginals and
    scan-based pollution, but otherwise wired exactly like FarosSystem.

    Returns ``(tracker, elapsed_seconds)``.
    """
    from repro.faros import mitos_config
    from repro.faros.pipeline import FarosPipeline
    from repro.obs.bundle import Observability

    config = mitos_config(params)
    obs = Observability.create(trace_out=trace_out) if trace_out else None
    tracker = ReferenceTracker(
        params=params,
        policy=MitosPolicy(params, use_cache=False),
        detector=(
            ConfluenceDetector(config.detector_types)
            if config.detector_types
            else None
        ),
        ifp_observer=obs.decision_observer() if obs is not None else None,
    )
    pipeline = FarosPipeline(tracker, obs=obs)
    started = time.perf_counter()
    Replayer([pipeline]).replay(recording)
    elapsed = time.perf_counter() - started
    if obs is not None:
        obs.finalize(tracker)
        obs.close()
    return tracker, elapsed


def engine_payload_job(engine: str, seed: int = 0, quick: bool = True):
    """Replay the seeded network recording through one engine and return
    the tracker stats payload.

    Module-level so :class:`repro.parallel.Job` can pickle it into spawn
    workers: this is how the ``--jobs N`` process pool composes with
    ``--engine vector`` -- each worker builds its own recording, encoder
    state and NumPy planes, nothing crosses the process boundary but the
    (engine, seed, quick) triple and the returned payload dict.
    """
    from repro.experiments.common import experiment_params, network_recording
    from repro.faros import FarosSystem, mitos_config

    recording = network_recording(seed=seed, quick=quick)
    system = FarosSystem(
        mitos_config(experiment_params(), engine=engine)
    )
    system.replay(recording)
    return system.tracker.stats.to_payload()


@dataclass
class EngineMeasurement:
    """Best-of-N wall-clock for one engine over one recording."""

    seconds: float
    events_per_second: float
    rounds: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "seconds": self.seconds,
            "events_per_second": self.events_per_second,
            "rounds": self.rounds,
        }


@dataclass
class ReplayBenchReport:
    """Everything ``BENCH_replay.json`` carries."""

    benchmark: str
    events: int
    engines: Dict[str, EngineMeasurement] = field(default_factory=dict)

    def speedup(self, slow: str, fast: str) -> float:
        """``slow``'s seconds over ``fast``'s (how much faster ``fast`` is)."""
        numerator = self.engines[slow].seconds
        denominator = self.engines[fast].seconds
        return numerator / denominator if denominator else 0.0

    def speedups(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        engines = self.engines
        if "scalar" in engines and "vector" in engines:
            out["vector_vs_scalar"] = self.speedup("scalar", "vector")
        if "reference" in engines and "scalar" in engines:
            out["scalar_vs_reference"] = self.speedup("reference", "scalar")
        if "reference" in engines and "vector" in engines:
            out["vector_vs_reference"] = self.speedup("reference", "vector")
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "events": self.events,
            "engines": {
                name: m.as_dict() for name, m in self.engines.items()
            },
            "speedups": self.speedups(),
        }


def measure_engine(
    recording: Recording,
    params: MitosParams,
    engine: str,
    rounds: int = 3,
) -> EngineMeasurement:
    """Best-of-``rounds`` full replay through one engine."""
    from repro.faros import FarosSystem, mitos_config

    best = float("inf")
    for _ in range(max(1, rounds)):
        result = FarosSystem(mitos_config(params, engine=engine)).replay(
            recording
        )
        best = min(best, result.metrics.wall_seconds)
    events = len(recording)
    return EngineMeasurement(
        seconds=best,
        events_per_second=events / best if best else 0.0,
        rounds=max(1, rounds),
    )


def measure_engines(
    recording: Recording,
    params: MitosParams,
    rounds: int = 3,
    include_reference: bool = True,
    benchmark: str = "network-replay",
) -> ReplayBenchReport:
    """Measure scalar + vector (and optionally the uncached reference)."""
    report = ReplayBenchReport(benchmark=benchmark, events=len(recording))
    for engine in ("scalar", "vector"):
        report.engines[engine] = measure_engine(
            recording, params, engine, rounds
        )
    if include_reference:
        best = float("inf")
        for _ in range(max(1, rounds)):
            _, elapsed = reference_replay(recording, params)
            best = min(best, elapsed)
        report.engines["reference"] = EngineMeasurement(
            seconds=best,
            events_per_second=len(recording) / best if best else 0.0,
            rounds=max(1, rounds),
        )
    return report


def render_hotpath_table(report: ReplayBenchReport) -> str:
    """The ``results/replay_hotpath.txt`` body: every engine vs reference."""
    rows: List[List[object]] = [["events", report.events]]
    for name in ("reference", "scalar", "vector"):
        measurement = report.engines.get(name)
        if measurement is None:
            continue
        rows.append([f"{name} seconds", measurement.seconds])
        rows.append([f"{name} events/sec", measurement.events_per_second])
    for label, value in report.speedups().items():
        rows.append([label.replace("_", " "), value])
    return format_table(
        ["metric", "value"],
        rows,
        title="== Replay hot path: scalar vs vector vs uncached reference ==",
    )


def render_throughput_table(report: ReplayBenchReport) -> str:
    """The ``results/replay_throughput.txt`` body: engine throughputs."""
    rows: List[List[object]] = [["events", report.events]]
    for name in ("scalar", "vector"):
        measurement = report.engines.get(name)
        if measurement is None:
            continue
        rows.append([f"{name} seconds", measurement.seconds])
        rows.append([f"{name} events/sec", measurement.events_per_second])
    if "scalar" in report.engines and "vector" in report.engines:
        rows.append(["vector speedup", report.speedup("scalar", "vector")])
    return format_table(
        ["metric", "value"],
        rows,
        title="== Replay throughput ==",
    )


def write_bench_artifacts(
    report: ReplayBenchReport,
    results_dir: Path,
    json_path: Optional[Path] = None,
) -> List[Path]:
    """Rewrite the three replay-bench artifacts; returns what was written."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    hotpath = results_dir / "replay_hotpath.txt"
    hotpath.write_text(render_hotpath_table(report) + "\n")
    written.append(hotpath)
    throughput = results_dir / "replay_throughput.txt"
    throughput.write_text(render_throughput_table(report) + "\n")
    written.append(throughput)
    if json_path is not None:
        json_path = Path(json_path)
        json_path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        written.append(json_path)
    return written
