"""Terminal plots: render the paper's figures as ASCII charts.

Dependency-free scatter/line plots good enough to *see* the shapes the
experiments assert: the Fig. 3 cost curves, Fig. 7's +1/-1 decision
stripes, Fig. 8's falling MSE, Fig. 9's saturating boost.  Each plot is a
character grid with labeled y-extremes and an x-range footer.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

Number = float


def _finite(values: Sequence[Number]) -> List[float]:
    return [float(v) for v in values if math.isfinite(v)]


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    if high == low:
        return cells // 2
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, int(position * (cells - 1) + 0.5)))


def ascii_plot(
    xs: Sequence[Number],
    ys: Sequence[Number],
    width: int = 60,
    height: int = 16,
    title: str = "",
    marker: str = "*",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Scatter plot of one series on a ``width x height`` character grid."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    points = [
        (float(x), float(y))
        for x, y in zip(xs, ys)
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no finite points)")
        return "\n".join(lines)
    x_values = [p[0] for p in points]
    y_values = [p[1] for p in points]
    x_low, x_high = min(x_values), max(x_values)
    y_low, y_high = min(y_values), max(y_values)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = marker
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(gutter)
        elif index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    footer = f"{' ' * gutter}+{'-' * width}"
    lines.append(footer)
    x_range = f"{x_low:.4g} .. {x_high:.4g}"
    if x_label:
        x_range += f"  ({x_label})"
    lines.append(f"{' ' * (gutter + 1)}{x_range}")
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)


def multi_series_plot(
    series: Sequence[Tuple[str, Sequence[Number], Sequence[Number]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    markers: str = "*o+x#@%&",
) -> str:
    """Overlay several (label, xs, ys) series with distinct markers."""
    all_points: List[Tuple[float, float, str]] = []
    legend: List[str] = []
    for index, (label, xs, ys) in enumerate(series):
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: length mismatch")
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {label}")
        for x, y in zip(xs, ys):
            if math.isfinite(float(x)) and math.isfinite(float(y)):
                all_points.append((float(x), float(y), marker))
    lines: List[str] = []
    if title:
        lines.append(title)
    if not all_points:
        lines.append("(no finite points)")
        return "\n".join(lines)
    x_values = [p[0] for p in all_points]
    y_values = [p[1] for p in all_points]
    x_low, x_high = min(x_values), max(x_values)
    y_low, y_high = min(y_values), max(y_values)
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in all_points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = marker
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(gutter)
        elif index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(f"{' ' * gutter}+{'-' * width}")
    lines.append(f"{' ' * (gutter + 1)}{x_low:.4g} .. {x_high:.4g}")
    lines.append("  ".join(legend))
    return "\n".join(lines)


def decision_stripe(
    ticks: Sequence[int],
    decisions: Sequence[int],
    width: int = 72,
    title: str = "",
) -> str:
    """Fig. 7(b)-(d) style stripe: time binned left-to-right, each bin
    showing the propagate/block mix (``^`` mostly +1, ``v`` mostly -1,
    ``~`` mixed, `` `` empty)."""
    if len(ticks) != len(decisions):
        raise ValueError("ticks and decisions must align")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not ticks:
        lines.append("(no decisions)")
        return "\n".join(lines)
    low, high = min(ticks), max(ticks)
    spans: List[List[int]] = [[] for _ in range(width)]
    for tick, decision in zip(ticks, decisions):
        spans[_scale(float(tick), float(low), float(high), width)].append(
            decision
        )
    cells = []
    for bucket in spans:
        if not bucket:
            cells.append(" ")
            continue
        positive = sum(1 for d in bucket if d > 0)
        ratio = positive / len(bucket)
        if ratio >= 0.9:
            cells.append("^")
        elif ratio <= 0.1:
            cells.append("v")
        else:
            cells.append("~")
    lines.append("".join(cells))
    lines.append(f"ticks {low} .. {high}   ^=propagated  v=blocked  ~=mixed")
    return "\n".join(lines)
