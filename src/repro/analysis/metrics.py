"""Run-level metrics: the quantities the paper's tables and figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.fairness import (
    copy_count_mse,
    jain_index,
    normalized_entropy,
    shannon_entropy,
)
from repro.dift.tracker import DIFTTracker


@dataclass
class RunMetrics:
    """Everything measured after one tracked run.

    ``wall_seconds`` is real measured time; ``propagation_ops`` is the
    hardware-independent work proxy for the paper's replay-time metric.
    ``footprint_bytes`` is the live shadow-memory size (Table II's space).
    """

    wall_seconds: float = 0.0
    propagation_ops: int = 0
    footprint_bytes: int = 0
    total_entries: int = 0
    tainted_locations: int = 0
    live_tags: int = 0
    detected_bytes: int = 0
    alerts: int = 0
    ifp_candidates: int = 0
    ifp_propagated: int = 0
    ifp_blocked: int = 0
    copy_mse: float = 0.0
    copy_jain: float = 1.0
    copy_entropy_bits: float = 0.0
    copy_entropy_normalized: float = 1.0
    per_type_entries: Dict[str, int] = field(default_factory=dict)

    @property
    def ifp_propagation_rate(self) -> float:
        if self.ifp_candidates == 0:
            return 0.0
        return self.ifp_propagated / self.ifp_candidates

    def as_dict(self) -> Dict[str, float]:
        payload = {
            "wall_seconds": self.wall_seconds,
            "propagation_ops": self.propagation_ops,
            "footprint_bytes": self.footprint_bytes,
            "total_entries": self.total_entries,
            "tainted_locations": self.tainted_locations,
            "live_tags": self.live_tags,
            "detected_bytes": self.detected_bytes,
            "alerts": self.alerts,
            "ifp_candidates": self.ifp_candidates,
            "ifp_propagated": self.ifp_propagated,
            "ifp_blocked": self.ifp_blocked,
            "ifp_propagation_rate": self.ifp_propagation_rate,
            "copy_mse": self.copy_mse,
            "copy_jain": self.copy_jain,
            "copy_entropy_bits": self.copy_entropy_bits,
            "copy_entropy_normalized": self.copy_entropy_normalized,
        }
        return payload


def collect_run_metrics(
    tracker: DIFTTracker,
    wall_seconds: float = 0.0,
    detected_bytes: Optional[int] = None,
) -> RunMetrics:
    """Snapshot a tracker (and optional detector result) into metrics."""
    copies = list(tracker.counter.snapshot().values())
    stats = tracker.stats
    detector = tracker.detector
    if detected_bytes is None:
        detected_bytes = detector.detected_bytes if detector is not None else 0
    per_type = {
        tag_type: sum(counts.values())
        for tag_type, counts in tracker.counter.per_type_counts().items()
    }
    return RunMetrics(
        wall_seconds=wall_seconds,
        propagation_ops=stats.propagation_ops,
        footprint_bytes=tracker.shadow.footprint_bytes(),
        total_entries=tracker.shadow.total_entries(),
        tainted_locations=tracker.shadow.tainted_count(),
        live_tags=tracker.counter.live_tags(),
        detected_bytes=detected_bytes,
        alerts=stats.alerts,
        ifp_candidates=stats.ifp_candidates,
        ifp_propagated=stats.ifp_propagated,
        ifp_blocked=stats.ifp_blocked,
        copy_mse=copy_count_mse(copies),
        copy_jain=jain_index(copies),
        copy_entropy_bits=shannon_entropy(copies),
        copy_entropy_normalized=normalized_entropy(copies),
        per_type_entries=per_type,
    )
