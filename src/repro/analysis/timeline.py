"""Decision timelines: the raw material of Fig. 7.

Fig. 7(a) plots the two submarginal costs of Eq. 8 for every indirect-flow
decision over time; Fig. 7(b)-(d) plot the corresponding binary decisions.
:class:`DecisionTimeline` is a tracker observer that captures exactly that:
one :class:`DecisionPoint` per candidate tag per indirect flow.

Decision encoding: ``+1`` propagated, ``-1`` blocked.  (The paper's prose
and figure caption disagree on the sign convention; we fix propagated =
+1 and note it in EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.decision import MultiDecision, TagCandidate
from repro.dift.flows import FlowEvent
from repro.dift.tags import Tag


@dataclass(frozen=True)
class DecisionPoint:
    """One per-tag IFP decision with its submarginal breakdown."""

    tick: int
    tag_type: str
    tag_index: int
    copies: int
    under_marginal: float
    over_marginal: float
    marginal: float
    propagated: bool
    flow_kind: str

    @property
    def decision_value(self) -> int:
        """+1 propagated, -1 blocked (Fig. 7(b)-(d) y-axis)."""
        return 1 if self.propagated else -1


class DecisionTimeline:
    """Tracker observer accumulating per-decision points.

    Pass :attr:`observer` as the tracker's ``ifp_observer``.  When the
    policy exposes marginal details (MITOS), the submarginals are recorded;
    for detail-less baselines only the binary outcome is kept.
    """

    def __init__(self) -> None:
        self.points: List[DecisionPoint] = []

    def observer(
        self,
        event: FlowEvent,
        candidates: Sequence[TagCandidate],
        details: Optional[MultiDecision],
        selected: Sequence[Tag],
        pollution: float,
    ) -> None:
        selected_keys = {tag for tag in selected}
        if details is not None:
            for decision in details.decisions:
                candidate = decision.candidate
                self.points.append(
                    DecisionPoint(
                        tick=event.tick,
                        tag_type=candidate.tag_type,
                        tag_index=self._index_of(candidate),
                        copies=candidate.copies,
                        under_marginal=decision.under_marginal,
                        over_marginal=decision.over_marginal,
                        marginal=decision.marginal,
                        propagated=decision.propagate,
                        flow_kind=event.kind.value,
                    )
                )
        else:
            for candidate in candidates:
                self.points.append(
                    DecisionPoint(
                        tick=event.tick,
                        tag_type=candidate.tag_type,
                        tag_index=self._index_of(candidate),
                        copies=candidate.copies,
                        under_marginal=0.0,
                        over_marginal=0.0,
                        marginal=0.0,
                        propagated=candidate.key in selected_keys,
                        flow_kind=event.kind.value,
                    )
                )

    @staticmethod
    def _index_of(candidate: TagCandidate) -> int:
        key = candidate.key
        if isinstance(key, Tag):
            return key.index
        return 0

    # -- series extraction ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def decision_series(self) -> Tuple[List[int], List[int]]:
        """(ticks, +1/-1 decisions) -- Fig. 7(b)-(d)."""
        return (
            [p.tick for p in self.points],
            [p.decision_value for p in self.points],
        )

    def marginal_series(self) -> Tuple[List[int], List[float], List[float]]:
        """(ticks, undertainting submarginals, overtainting submarginals).

        Fig. 7(a): the under series varies per tag (local information),
        the over series is the global pollution signal.
        """
        return (
            [p.tick for p in self.points],
            [p.under_marginal for p in self.points],
            [p.over_marginal for p in self.points],
        )

    @property
    def propagated_count(self) -> int:
        return sum(1 for p in self.points if p.propagated)

    @property
    def blocked_count(self) -> int:
        return sum(1 for p in self.points if not p.propagated)

    @property
    def propagation_rate(self) -> float:
        if not self.points:
            return 0.0
        return self.propagated_count / len(self.points)

    def rate_by_type(self) -> dict:
        """Per-tag-type propagation rates (Fig. 9 raw data)."""
        totals: dict = {}
        propagated: dict = {}
        for point in self.points:
            totals[point.tag_type] = totals.get(point.tag_type, 0) + 1
            if point.propagated:
                propagated[point.tag_type] = propagated.get(point.tag_type, 0) + 1
        return {
            tag_type: propagated.get(tag_type, 0) / count
            for tag_type, count in totals.items()
        }

    def reset(self) -> None:
        self.points.clear()
