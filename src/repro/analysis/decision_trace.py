"""Summarize an IFP decision trace (``mitos-repro tracelog``).

Consumes the JSONL records written by
:class:`repro.obs.decisions.DecisionTraceRecorder` and reduces them to the
run-level story: how the propagation rate evolved over time, which tag
types were blocked most, and how pollution trended across the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.analysis.reporting import format_table
from repro.obs.decisions import read_decision_trace


@dataclass
class WindowStats:
    """Aggregates over one tick window of the trace."""

    start_tick: int
    end_tick: int
    events: int = 0
    candidates: int = 0
    propagated: int = 0
    pollution_sum: float = 0.0

    @property
    def propagation_rate(self) -> float:
        if self.candidates == 0:
            return 0.0
        return self.propagated / self.candidates

    @property
    def mean_pollution(self) -> float:
        return self.pollution_sum / self.events if self.events else 0.0


@dataclass
class DecisionTraceSummary:
    """Everything ``tracelog`` reports about one decision trace."""

    events: int = 0
    candidates: int = 0
    propagated: int = 0
    blocked: int = 0
    first_tick: int = 0
    last_tick: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    blocked_by_type: Dict[str, int] = field(default_factory=dict)
    propagated_by_type: Dict[str, int] = field(default_factory=dict)
    windows: List[WindowStats] = field(default_factory=list)
    pollution_first: float = 0.0
    pollution_last: float = 0.0
    pollution_min: float = 0.0
    pollution_max: float = 0.0

    @property
    def propagation_rate(self) -> float:
        if self.candidates == 0:
            return 0.0
        return self.propagated / self.candidates

    def top_blocked_types(self, top_k: int = 5) -> List[Tuple[str, int]]:
        return sorted(
            self.blocked_by_type.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_k]


def summarize_decision_trace(
    records: Iterable[Dict[str, object]], windows: int = 10
) -> DecisionTraceSummary:
    """Reduce decision records to a :class:`DecisionTraceSummary`.

    ``windows`` is the number of equal tick buckets the rate-over-time and
    pollution trajectories are split into.
    """
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    rows = list(records)
    summary = DecisionTraceSummary()
    if not rows:
        return summary
    summary.events = len(rows)
    ticks = [int(row["tick"]) for row in rows]  # type: ignore[arg-type]
    pollutions = [float(row["pollution"]) for row in rows]  # type: ignore[arg-type]
    summary.first_tick = min(ticks)
    summary.last_tick = max(ticks)
    summary.pollution_first = pollutions[0]
    summary.pollution_last = pollutions[-1]
    summary.pollution_min = min(pollutions)
    summary.pollution_max = max(pollutions)

    span = summary.last_tick - summary.first_tick + 1
    width = max(1, -(-span // windows))  # ceil division
    window_list = [
        WindowStats(
            start_tick=summary.first_tick + i * width,
            end_tick=min(summary.first_tick + (i + 1) * width - 1, summary.last_tick),
        )
        for i in range(-(-span // width))
    ]

    for row, tick, pollution in zip(rows, ticks, pollutions):
        kind = str(row.get("kind", "?"))
        summary.by_kind[kind] = summary.by_kind.get(kind, 0) + 1
        window = window_list[(tick - summary.first_tick) // width]
        window.events += 1
        window.pollution_sum += pollution
        for candidate in row.get("candidates", []):  # type: ignore[union-attr]
            tag_type = str(candidate.get("type", "?"))
            summary.candidates += 1
            window.candidates += 1
            if candidate.get("propagated"):
                summary.propagated += 1
                window.propagated += 1
                summary.propagated_by_type[tag_type] = (
                    summary.propagated_by_type.get(tag_type, 0) + 1
                )
            else:
                summary.blocked += 1
                summary.blocked_by_type[tag_type] = (
                    summary.blocked_by_type.get(tag_type, 0) + 1
                )
    summary.windows = window_list
    return summary


def summarize_decision_trace_file(
    path: Union[str, Path], windows: int = 10
) -> DecisionTraceSummary:
    """Summarize a decision-trace JSONL file (gzip-transparent)."""
    return summarize_decision_trace(read_decision_trace(path), windows=windows)


def format_decision_trace_summary(
    summary: DecisionTraceSummary, title: str = "decision trace", top_k: int = 5
) -> str:
    """Render the ``tracelog`` report."""
    if summary.events == 0:
        return f"{title}: no decision records"
    lines: List[str] = [
        f"{title}: {summary.events} IFP events over ticks "
        f"[{summary.first_tick}, {summary.last_tick}]",
        f"  candidates {summary.candidates}  propagated {summary.propagated}"
        f"  blocked {summary.blocked}"
        f"  rate {summary.propagation_rate:.3f}",
        "  events by kind: "
        + ", ".join(
            f"{kind}={count}" for kind, count in sorted(summary.by_kind.items())
        ),
        "",
        format_table(
            ["ticks", "events", "candidates", "rate", "mean pollution"],
            [
                [
                    f"{w.start_tick}-{w.end_tick}",
                    w.events,
                    w.candidates,
                    w.propagation_rate,
                    w.mean_pollution,
                ]
                for w in summary.windows
            ],
            title="propagation rate / pollution over time",
        ),
    ]
    top_blocked = summary.top_blocked_types(top_k)
    if top_blocked:
        lines.append("")
        lines.append(
            format_table(
                ["tag type", "blocked", "propagated"],
                [
                    [
                        tag_type,
                        blocked,
                        summary.propagated_by_type.get(tag_type, 0),
                    ]
                    for tag_type, blocked in top_blocked
                ],
                title=f"top blocked tag types (top {len(top_blocked)})",
            )
        )
    lines.append("")
    lines.append(
        "pollution trajectory: "
        f"first {summary.pollution_first:.3f}  last {summary.pollution_last:.3f}"
        f"  min {summary.pollution_min:.3f}  max {summary.pollution_max:.3f}"
    )
    return "\n".join(lines)
