"""Generic parameter-sweep harness over recordings.

The experiments in :mod:`repro.experiments` are hand-shaped to the paper's
figures; :class:`ParameterSweep` is the general tool for exploring any
MITOS input over any recording: give it a base config factory, a parameter
grid, and a metric extractor, and it replays once per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from typing import TYPE_CHECKING

from repro.analysis.metrics import RunMetrics
from repro.core.params import MitosParams
from repro.replay.record import Recording

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle with faros)
    from repro.faros import FarosConfig


@dataclass
class SweepPoint:
    """One grid point's outcome."""

    value: object
    metrics: RunMetrics
    label: str = ""


@dataclass
class SweepResult:
    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> List[tuple]:
        """(value, metric) pairs, in grid order."""
        return [
            (point.value, getattr(point.metrics, metric))
            for point in self.points
        ]

    def values(self) -> List[object]:
        return [point.value for point in self.points]


class ParameterSweep:
    """Replays one recording across a grid of MITOS parameter points."""

    def __init__(
        self,
        recording: Recording,
        config_factory: "Callable[[MitosParams], FarosConfig] | None" = None,
    ):
        if config_factory is None:
            from repro.faros import mitos_config

            config_factory = mitos_config
        self.recording = recording
        self.config_factory = config_factory

    def run(
        self,
        parameter: str,
        values: Sequence[object],
        base_params: MitosParams,
    ) -> SweepResult:
        """Sweep one :class:`MitosParams` field across ``values``.

        ``parameter`` must be a field name of :class:`MitosParams`
        (e.g. ``"tau"``, ``"alpha"``); each value produces one replay.
        """
        from repro.faros import FarosSystem

        result = SweepResult(parameter=parameter)
        for value in values:
            params = base_params.with_updates(**{parameter: value})
            system = FarosSystem(self.config_factory(params))
            run_result = system.replay(self.recording)
            result.points.append(
                SweepPoint(
                    value=value,
                    metrics=run_result.metrics,
                    label=f"{parameter}={value}",
                )
            )
        return result

    def run_grid(
        self,
        grid: Dict[str, Sequence[object]],
        base_params: MitosParams,
    ) -> Dict[str, SweepResult]:
        """Independent one-dimensional sweeps for several parameters."""
        return {
            parameter: self.run(parameter, values, base_params)
            for parameter, values in grid.items()
        }
