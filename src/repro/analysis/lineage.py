"""Flow lineage: Ariadne's thread through a recording.

MITOS is named for the thread that led Theseus back out of the labyrinth;
this module is that thread made queryable.  Replaying a recording, it
builds a versioned dataflow graph -- one node per (location, version),
with an edge from every source version to the destination version an
event created -- so that any byte's taint can be *explained*:

* :meth:`LineageGraph.sources_of` -- which taint-source events
  ultimately reach a location (and through how many hops),
* :meth:`LineageGraph.explain` -- a concrete event path from a source
  insertion to the queried location,
* :meth:`LineageGraph.influence_of` -- the forward set: every location a
  given source insertion ever influenced.

The graph is *value-flow over events*, independent of any policy: it
answers what a perfect (propagate-everything) tracker would know, which
is exactly the ground truth undertainting is measured against.  Pass
``include_indirect=False`` to see what a DFP-only tracker could ever
know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.shadow import Location
from repro.dift.tags import Tag
from repro.replay.record import Recording

#: graph node: (location, version)
Node = Tuple[Location, int]


@dataclass(frozen=True)
class SourceHit:
    """One taint source reaching a queried location."""

    tag: Tag
    insert_tick: int
    hops: int


class LineageGraph:
    """Versioned dataflow graph over one recording."""

    def __init__(self, include_indirect: bool = True):
        self.include_indirect = include_indirect
        self.graph = nx.DiGraph()
        #: current version per location (bumped on every write)
        self._versions: Dict[Location, int] = {}
        #: nodes at which a tag was inserted
        self._insertions: Dict[Node, Tuple[Tag, int]] = {}
        self.events_applied = 0

    # -- construction ---------------------------------------------------------

    def _current(self, location: Location) -> Optional[Node]:
        version = self._versions.get(location)
        if version is None:
            return None
        return (location, version)

    def _new_version(self, location: Location, tick: int) -> Node:
        version = self._versions.get(location, -1) + 1
        self._versions[location] = version
        node = (location, version)
        self.graph.add_node(node, tick=tick)
        return node

    def apply(self, event: FlowEvent) -> None:
        """Fold one event into the graph."""
        self.events_applied += 1
        kind = event.kind
        if kind is FlowKind.CLEAR:
            # a constant write severs history: fresh version, no edges
            self._new_version(event.destination, event.tick)
            return
        if kind is FlowKind.INSERT:
            previous = self._current(event.destination)
            node = self._new_version(event.destination, event.tick)
            assert event.tag is not None
            self._insertions[node] = (event.tag, event.tick)
            if previous is not None:
                # insertion adds to the provenance list; prior history stays
                self.graph.add_edge(previous, node, kind="carry")
            return
        if kind.is_indirect and not self.include_indirect:
            return
        previous = self._current(event.destination)
        node = self._new_version(event.destination, event.tick)
        for source in event.sources:
            source_node = self._current(source)
            if source_node is not None:
                self.graph.add_edge(source_node, node, kind=kind.value)
        if kind.is_indirect and previous is not None:
            # indirect flows add tags on top of the existing contents
            self.graph.add_edge(previous, node, kind="carry")
        if kind is FlowKind.COMPUTE and previous is not None:
            # computation results union with prior history in our tracker
            self.graph.add_edge(previous, node, kind="carry")

    @classmethod
    def from_recording(
        cls, recording: Recording, include_indirect: bool = True
    ) -> "LineageGraph":
        lineage = cls(include_indirect=include_indirect)
        for event in recording:
            lineage.apply(event)
        return lineage

    # -- queries ---------------------------------------------------------------

    def latest(self, location: Location) -> Optional[Node]:
        """The current version node of a location (None if never written)."""
        return self._current(location)

    def sources_of(self, location: Location) -> List[SourceHit]:
        """Every taint source tag reaching the location's current version.

        One hit per distinct tag: its closest-reaching insertion (min
        hops; earliest tick on ties), sorted nearest-first.
        """
        target = self._current(location)
        if target is None:
            return []
        ancestors = nx.ancestors(self.graph, target) | {target}
        # distances measured on the reversed graph from the target
        reverse = self.graph.reverse(copy=False)
        lengths = nx.single_source_shortest_path_length(reverse, target)
        best: Dict[Tag, SourceHit] = {}
        for node in ancestors:
            if node not in self._insertions:
                continue
            tag, tick = self._insertions[node]
            hit = SourceHit(tag=tag, insert_tick=tick, hops=lengths[node])
            current = best.get(tag)
            if current is None or (hit.hops, hit.insert_tick) < (
                current.hops,
                current.insert_tick,
            ):
                best[tag] = hit
        hits = sorted(best.values(), key=lambda h: (h.hops, h.insert_tick))
        return hits

    def explain(self, location: Location, tag: Tag) -> List[Node]:
        """A shortest event path from ``tag``'s insertion to ``location``.

        Returns the node path (insertion first), or an empty list when
        the tag never reaches the location.
        """
        target = self._current(location)
        if target is None:
            return []
        candidates = [
            node
            for node, (node_tag, _tick) in self._insertions.items()
            if node_tag == tag
        ]
        best: List[Node] = []
        for start in candidates:
            try:
                path = nx.shortest_path(self.graph, start, target)
            except nx.NetworkXNoPath:
                continue
            if not best or len(path) < len(best):
                best = path
        return best

    def influence_of(self, tag: Tag) -> Set[Location]:
        """All locations any insertion of ``tag`` ever influenced."""
        influenced: Set[Location] = set()
        for node, (node_tag, _tick) in self._insertions.items():
            if node_tag != tag:
                continue
            influenced.add(node[0])
            for descendant in nx.descendants(self.graph, node):
                influenced.add(descendant[0])
        return influenced

    def taint_ground_truth(self, location: Location) -> Set[Tag]:
        """The tags a perfect tracker would report on the location."""
        return {hit.tag for hit in self.sources_of(location)}

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()


def undertainting_of(
    recording: Recording,
    tracker_shadow,
    locations: List[Location],
) -> Dict[Location, Set[Tag]]:
    """Ground-truth-missing tags per location: what the tracker lost.

    Compares a replayed tracker's shadow against the lineage ground truth
    (propagate-everything semantics) over the given locations.
    """
    lineage = LineageGraph.from_recording(recording)
    missing: Dict[Location, Set[Tag]] = {}
    for location in locations:
        truth = lineage.taint_ground_truth(location)
        held = set(tracker_shadow.tags_at(location))
        lost = truth - held
        if lost:
            missing[location] = lost
    return missing
