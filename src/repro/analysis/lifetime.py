"""Tag lifetimes: TaintBochs-style data-lifetime analysis.

TaintBochs (cited in the paper's related work) studied *how long*
sensitive data lives in a system.  The same question applies to tags:
when is each tag born (first copy), when does it die (last copy
evicted/cleared), and how does the propagation policy change those
lifetimes?  Over-propagation makes tags effectively immortal (the
overtainting pathology); aggressive blocking plus small provenance lists
kills history early (undertainting).

:class:`LifetimeMonitor` hooks a tracker's copy counter and timestamps
every birth and death against the tracker's tick clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.analysis.stats import Summary, summarize
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker

TagKey = Tuple[str, int]


@dataclass
class LifeSpan:
    """One contiguous alive interval of a tag."""

    born_tick: int
    died_tick: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.died_tick is None

    def length(self, now_tick: int) -> int:
        end = self.died_tick if self.died_tick is not None else now_tick
        return max(0, end - self.born_tick)


class LifetimeMonitor:
    """Observes a tracker's tag births and deaths.

    A tag can die and be reborn (cleared everywhere, then reinserted);
    every interval is kept.  Attach before processing events::

        monitor = LifetimeMonitor(tracker)
        tracker.process_many(events)
        print(monitor.render(tracker.stats.ticks))
    """

    def __init__(self, tracker: DIFTTracker):
        self.tracker = tracker
        self.spans: Dict[TagKey, List[LifeSpan]] = {}
        self._attach()

    def _attach(self) -> None:
        counter = self.tracker.counter
        counter.on_birth = self._on_birth
        counter.on_death = self._on_death

    def reattach(self) -> None:
        """Re-hook after a tracker reset (which swaps the counter)."""
        self._attach()

    def _now(self) -> int:
        return self.tracker.stats.ticks

    def _on_birth(self, tag: Tag) -> None:
        self.spans.setdefault(tag.key, []).append(LifeSpan(born_tick=self._now()))

    def _on_death(self, tag: Tag) -> None:
        spans = self.spans.get(tag.key)
        if spans and spans[-1].alive:
            spans[-1].died_tick = self._now()

    # -- queries -------------------------------------------------------------

    def births(self) -> int:
        return sum(len(spans) for spans in self.spans.values())

    def deaths(self) -> int:
        return sum(
            1
            for spans in self.spans.values()
            for span in spans
            if not span.alive
        )

    def alive_tags(self) -> List[TagKey]:
        return [
            key
            for key, spans in self.spans.items()
            if spans and spans[-1].alive
        ]

    def lifetimes(self, now_tick: Optional[int] = None) -> Dict[TagKey, int]:
        """Total alive ticks per tag (open spans measured to ``now``)."""
        now = now_tick if now_tick is not None else self._now()
        return {
            key: sum(span.length(now) for span in spans)
            for key, spans in self.spans.items()
        }

    def summary(self, now_tick: Optional[int] = None) -> Summary:
        values = [float(v) for v in self.lifetimes(now_tick).values()]
        if not values:
            return Summary(n=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
        return summarize(values)

    def by_type(self, now_tick: Optional[int] = None) -> Dict[str, Summary]:
        """Lifetime summaries grouped by tag type."""
        buckets: Dict[str, List[float]] = {}
        for (tag_type, _index), lifetime in self.lifetimes(now_tick).items():
            buckets.setdefault(tag_type, []).append(float(lifetime))
        return {
            tag_type: summarize(values) for tag_type, values in buckets.items()
        }

    def render(self, now_tick: Optional[int] = None) -> str:
        rows = []
        for tag_type, summary in sorted(self.by_type(now_tick).items()):
            rows.append(
                [
                    tag_type,
                    summary.n,
                    summary.mean,
                    summary.minimum,
                    summary.maximum,
                ]
            )
        table = format_table(
            ["tag type", "tags", "mean lifetime", "min", "max"],
            rows,
            title="tag lifetimes (ticks)",
        )
        footer = (
            f"births {self.births()}, deaths {self.deaths()}, "
            f"still alive {len(self.alive_tags())}"
        )
        return f"{table}\n{footer}"
