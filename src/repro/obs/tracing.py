"""Span tracing: where does replay wall-time actually go?

Each pipeline stage wraps its work in a named span; the tracer aggregates
``perf_counter_ns`` elapsed times per span name (count, total, min, max).
Stages nest -- ``replay.loop`` contains ``replay.on_event`` contains
``pipeline.on_event`` contains ``tracker.process`` contains
``policy.select`` -- so the per-stage *exclusive* time is the difference
between adjacent totals; :meth:`SpanTracer.breakdown` computes it for the
canonical stack.

Hot-path protocol: callers hold either a tracer or ``None`` and guard with
one attribute check, then use the begin/end pair::

    if self._tracer is not None:
        t0 = time.perf_counter_ns()
        ... work ...
        self._tracer.end("tracker.process", t0)

The context-manager :meth:`SpanTracer.span` is for cooler paths.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: the canonical nesting order of the replay stack's spans, outermost first
PIPELINE_SPANS = (
    "replay.loop",
    "replay.on_event",
    "pipeline.on_event",
    "tracker.process",
    "policy.select",
)


@dataclass
class SpanStats:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    total_ns: int = 0
    min_ns: int = 10**18
    max_ns: int = 0

    def record(self, elapsed_ns: int) -> None:
        self.count += 1
        self.total_ns += elapsed_ns
        if elapsed_ns < self.min_ns:
            self.min_ns = elapsed_ns
        if elapsed_ns > self.max_ns:
            self.max_ns = elapsed_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_ms": self.total_ns / 1e6,
            "mean_us": self.mean_ns / 1e3,
            "min_us": (self.min_ns / 1e3) if self.count else 0.0,
            "max_us": self.max_ns / 1e3,
        }


class SpanTracer:
    """Aggregating span collector keyed by span name."""

    enabled = True

    def __init__(self) -> None:
        self._spans: Dict[str, SpanStats] = {}

    def end(self, name: str, started_ns: int) -> None:
        """Close a span opened at ``started_ns`` (a ``perf_counter_ns``)."""
        self.record_ns(name, time.perf_counter_ns() - started_ns)

    def record_ns(self, name: str, elapsed_ns: int) -> None:
        stats = self._spans.get(name)
        if stats is None:
            stats = self._spans[name] = SpanStats(name)
        stats.record(elapsed_ns)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            self.end(name, started)

    def get(self, name: str) -> Optional[SpanStats]:
        return self._spans.get(name)

    def span_names(self) -> List[str]:
        return sorted(self._spans)

    def breakdown(self) -> List[Tuple[str, float, float]]:
        """(span, total_ms, exclusive_ms) for the canonical pipeline stack.

        Exclusive time of a stage is its total minus the total of the stage
        it directly contains; the innermost recorded stage keeps its full
        total.  Spans outside :data:`PIPELINE_SPANS` are appended with
        exclusive == total.
        """
        rows: List[Tuple[str, float, float]] = []
        recorded = [n for n in PIPELINE_SPANS if n in self._spans]
        for outer, inner in zip(recorded, recorded[1:] + [None]):
            total = self._spans[outer].total_ns
            inner_total = self._spans[inner].total_ns if inner else 0
            rows.append((outer, total / 1e6, max(total - inner_total, 0) / 1e6))
        for name in sorted(set(self._spans) - set(recorded)):
            total = self._spans[name].total_ns
            rows.append((name, total / 1e6, total / 1e6))
        return rows

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.as_dict() for name, stats in sorted(self._spans.items())}

    def reset(self) -> None:
        self._spans.clear()


class NullSpanTracer(SpanTracer):
    """Disabled tracer: every call is a no-op."""

    enabled = False

    def end(self, name: str, started_ns: int) -> None:
        pass

    def record_ns(self, name: str, elapsed_ns: int) -> None:
        pass

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield


#: process-wide disabled tracer
NULL_TRACER = NullSpanTracer()
