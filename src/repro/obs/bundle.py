"""The Observability bundle wired through FarosSystem and the CLI.

One object carries the whole observability surface for a run: the metrics
registry, the span tracer, the optional JSONL decision recorder, and the
time-series sampling interval.  ``FarosSystem(config, observability=obs)``
threads each piece to the component that feeds it; with no bundle the hot
paths keep ``None`` attributes and replay behavior is byte-identical to
the un-instrumented stack.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.dift.tracker import DIFTTracker, IfpObserver
from repro.obs.decisions import DecisionTraceRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracing import SpanTracer


def compose_observers(
    *observers: Optional[IfpObserver],
) -> Optional[IfpObserver]:
    """Fan one ``ifp_observer`` slot out to several observers.

    ``None`` entries are skipped; returns ``None`` when nothing remains
    (so the tracker's no-observer fast path stays intact), and the single
    observer unchanged when only one remains (no wrapper overhead).
    """
    active = [obs for obs in observers if obs is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def fanout(event, candidates, details, selected, pollution):  # type: ignore[no-untyped-def]
        for observer in active:
            observer(event, candidates, details, selected, pollution)

    return fanout


class Observability:
    """Everything a run can emit about itself, bundled for wiring."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        decisions: Optional[DecisionTraceRecorder] = None,
        sample_every: Optional[int] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.decisions = decisions
        self.sample_every = sample_every
        #: bound by FarosSystem (needs the tracker); None until then
        self.sampler: Optional[TimeSeriesSampler] = None

    @classmethod
    def create(
        cls,
        trace_out: Optional[Union[str, Path]] = None,
        sample_every: Optional[int] = None,
    ) -> "Observability":
        """A fully enabled bundle; the usual CLI entry point."""
        metrics = MetricsRegistry()
        decisions = (
            DecisionTraceRecorder(trace_out, metrics=metrics)
            if trace_out is not None
            else DecisionTraceRecorder(None, metrics=metrics)
        )
        return cls(metrics=metrics, decisions=decisions, sample_every=sample_every)

    # -- wiring helpers (called by FarosSystem) ---------------------------

    def make_sampler(self, tracker: DIFTTracker) -> Optional[TimeSeriesSampler]:
        """Build (and remember) the sampler plugin, if sampling is on."""
        if self.sample_every is None:
            return None
        self.sampler = TimeSeriesSampler(
            tracker, every=self.sample_every, metrics=self.metrics
        )
        return self.sampler

    def decision_observer(self) -> Optional[IfpObserver]:
        return self.decisions.observer if self.decisions is not None else None

    # -- end-of-run -------------------------------------------------------

    def finalize(self, tracker: DIFTTracker) -> None:
        """Snapshot end-of-run tracker state into gauges and counters."""
        metrics = self.metrics
        metrics.gauge("final.pollution").set(tracker.pollution())
        metrics.gauge("final.live_tags").set(tracker.counter.live_tags())
        metrics.gauge("final.tainted_locations").set(
            tracker.shadow.tainted_count()
        )
        metrics.gauge("final.footprint_bytes").set(
            tracker.shadow.footprint_bytes()
        )
        for name, value in tracker.stats.as_dict().items():
            metrics.gauge(f"tracker.{name}").set(value)

    def export(self) -> Dict[str, object]:
        """One JSON-serializable document with everything collected."""
        payload: Dict[str, object] = {
            "metrics": self.metrics.as_dict(),
            "spans": self.tracer.as_dict(),
            "span_breakdown": [
                {"span": name, "total_ms": total, "exclusive_ms": exclusive}
                for name, total, exclusive in self.tracer.breakdown()
            ],
        }
        if self.sampler is not None:
            payload["timeseries"] = self.sampler.as_dicts()
        if self.decisions is not None:
            payload["decision_trace"] = {
                "path": str(self.decisions.path) if self.decisions.path else None,
                "records": self.decisions.records_written,
            }
        return payload

    def write_metrics(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.export(), indent=2) + "\n")

    def close(self) -> None:
        """Flush and close any file-backed pieces (the decision trace)."""
        if self.decisions is not None:
            self.decisions.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
