"""IFP decision traces: one JSONL record per indirect-flow decision.

The tracker's ``ifp_observer`` hook fires once per policy-routed flow event
with the candidate set, the policy's per-tag marginal breakdown (when it
has one), the selected tags, and the pollution *before* propagation.
:class:`DecisionTraceRecorder` streams that straight to disk so a full
replay leaves a replayable audit of *why* every tag was propagated or
blocked -- the per-decision learning signal the RL-DIFT line needs and the
input to ``mitos-repro tracelog``.

Record schema (one JSON object per line; see docs/OBSERVABILITY.md)::

    {"tick": 812, "kind": "address_dep", "context": "lw", "dest": "mem:0x4800",
     "pollution": 137.5, "free_slots": 3, "has_details": true,
     "candidates": [{"tag": "netflow:1", "type": "netflow", "copies": 4,
                     "marginal": -0.8, "under": -1.2, "over": 0.4,
                     "propagated": true}],
     "propagated": ["netflow:1"], "blocked": 0}

``has_details`` is true when the policy exposed its Eq. 8 marginal
breakdown (MITOS); detail-less baselines and hard-wired unhandled kinds
record the binary outcome with null marginals.  Paths ending in ``.gz``
are gzip-compressed, matching the :mod:`repro.replay.record` convention.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Union

from repro.core.decision import MultiDecision, TagCandidate
from repro.dift.flows import FlowEvent
from repro.dift.shadow import Location
from repro.dift.tags import Tag
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

logger = get_logger("repro.obs.decisions")


def format_location(location: Location) -> str:
    """``("mem", 0x4800)`` -> ``"mem:0x4800"`` (CLI location syntax)."""
    kind, value = location[0], location[1]
    if kind == "mem" and isinstance(value, int):
        return f"mem:{value:#x}"
    return f"{kind}:{value}"


def _format_tag(tag: Tag) -> str:
    return f"{tag.type}:{tag.index}"


def _candidate_tag_name(candidate: TagCandidate) -> str:
    key = candidate.key
    if isinstance(key, Tag):
        return _format_tag(key)
    return f"{candidate.tag_type}:{key}"


class DecisionTraceRecorder:
    """Streams IFP decision records as JSONL (gzip when path ends ``.gz``).

    Use :attr:`observer` as (or compose it into) the tracker's
    ``ifp_observer``.  Pass ``path=None`` to keep records in memory
    (:attr:`records`) instead of writing a file -- handy in tests and when
    an experiment wants the dicts directly.

    An optional :class:`~repro.obs.metrics.MetricsRegistry` receives the
    decision-level instruments: ``ifp.events``, ``ifp.propagated``,
    ``ifp.blocked``, ``ifp.no_details`` counters and the
    ``ifp.candidates_per_event`` histogram.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.records: List[Dict[str, object]] = []
        self.records_written = 0
        self._handle: Optional[TextIO] = None
        if self.path is not None:
            if self.path.suffix == ".gz":
                self._handle = gzip.open(self.path, "wt")
            else:
                self._handle = self.path.open("w")
            logger.debug("decision trace opened", extra={"path": str(self.path)})
        if metrics is not None:
            self._events = metrics.counter("ifp.events")
            self._propagated = metrics.counter("ifp.propagated")
            self._blocked = metrics.counter("ifp.blocked")
            self._no_details = metrics.counter("ifp.no_details")
            self._candidates_hist = metrics.histogram(
                "ifp.candidates_per_event", buckets=(1, 2, 4, 8, 16, 32)
            )
        else:
            self._events = None
            self._propagated = None
            self._blocked = None
            self._no_details = None
            self._candidates_hist = None

    # -- the ifp_observer hook -------------------------------------------

    def observer(
        self,
        event: FlowEvent,
        candidates: Sequence[TagCandidate],
        details: Optional[MultiDecision],
        selected: Sequence[Tag],
        pollution: float,
    ) -> None:
        selected_names = [_format_tag(tag) for tag in selected]
        selected_set = set(selected_names)
        candidate_rows: List[Dict[str, object]] = []
        if details is not None:
            for decision in details.decisions:
                candidate = decision.candidate
                candidate_rows.append(
                    {
                        "tag": _candidate_tag_name(candidate),
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": decision.marginal,
                        "under": decision.under_marginal,
                        "over": decision.over_marginal,
                        "propagated": decision.propagate,
                    }
                )
        else:
            # detail-less policy or hard-wired unhandled kind: binary outcome
            for candidate in candidates:
                name = _candidate_tag_name(candidate)
                candidate_rows.append(
                    {
                        "tag": name,
                        "type": candidate.tag_type,
                        "copies": candidate.copies,
                        "marginal": None,
                        "under": None,
                        "over": None,
                        "propagated": name in selected_set,
                    }
                )
        record: Dict[str, object] = {
            "tick": event.tick,
            "kind": event.kind.value,
            "context": event.context,
            "dest": format_location(event.destination),
            "pollution": pollution,
            "free_slots": details.free_slots if details is not None else None,
            "has_details": details is not None,
            "candidates": candidate_rows,
            "propagated": selected_names,
            "blocked": len(candidate_rows) - len(selected_names),
        }
        self._write(record)
        if self._events is not None:
            self._events.inc()
            self._propagated.inc(len(selected_names))
            self._blocked.inc(len(candidate_rows) - len(selected_names))
            if details is None:
                self._no_details.inc()
            self._candidates_hist.observe(len(candidates))

    def _write(self, record: Dict[str, object]) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record) + "\n")
        else:
            self.records.append(record)
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            logger.debug(
                "decision trace closed",
                extra={"path": str(self.path), "records": self.records_written},
            )

    def __enter__(self) -> "DecisionTraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_decision_trace(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield decision records from a JSONL file (gzip-transparent)."""
    source = Path(path)
    opener = gzip.open if source.suffix == ".gz" else open
    with opener(source, "rt") as handle:  # type: ignore[operator]
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
