"""Metrics registry: counters, gauges, and bucketed histograms.

Prometheus-shaped but in-process: instruments are plain python objects the
hot path mutates directly, and the registry renders everything to one JSON
document at the end of a run (``--metrics-out``).

The disabled path is a :class:`NullMetricsRegistry` singleton whose
instruments swallow every call; callers that want zero overhead instead
keep ``None`` and guard with a single attribute check (the convention used
by :class:`~repro.faros.pipeline.FarosPipeline` and the tracker).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence

#: default histogram bucket upper bounds (values land in the first bucket
#: whose bound is >= value; one implicit +inf bucket catches the rest).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

#: serve-path latency buckets in **microseconds**: DEFAULT_BUCKETS is
#: scaled for second-long replay spans, but a served decision's parse /
#: queue-wait / decide / write stages live between ~5us and ~100ms.
SERVE_LATENCY_BUCKETS_US = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
)

#: micro-batch size buckets (powers of two up to the default batch_max)
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: cluster failover buckets in **seconds**: crash detection to the
#: respawned shard reporting ready (checkpoint restore dominates)
FAILOVER_SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (pollution, live tags, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Bucketed distribution with running count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = sorted(float(b) for b in buckets)
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        self.name = name
        self.bounds: List[float] = bounds
        #: one slot per bound plus the +inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (last == ``count``)."""
        running = 0
        cumulative: List[int] = []
        for value in self.bucket_counts:
            running += value
            cumulative.append(running)
        return cumulative

    def as_dict(self) -> Dict[str, object]:
        labels = [f"le_{bound:g}" for bound in self.bounds] + ["le_inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(zip(labels, self.bucket_counts)),
            # cumulative counts carry the Prometheus ``le`` semantics, so
            # the JSON export and the text exposition agree on meaning
            "cumulative": dict(zip(labels, self.cumulative_counts())),
        }


def parse_bucket_label(label: str) -> float:
    """``le_250`` -> 250.0, ``le_inf`` -> +inf (inverse of the export labels)."""
    if not label.startswith("le_"):
        raise ValueError(f"not a bucket label: {label!r}")
    bound = label[3:]
    return math.inf if bound == "inf" else float(bound)


def quantile_from_buckets(buckets: Dict[str, float], q: float) -> float:
    """Estimate the q-th percentile from exported per-bucket counts.

    ``buckets`` is the ``buckets`` mapping a :meth:`Histogram.as_dict`
    export carries (labels ``le_<bound>`` / ``le_inf`` -> per-bucket
    counts); interpolates linearly inside the winning bucket, the way
    Prometheus's ``histogram_quantile`` does.  Values in the +inf bucket
    clamp to the largest finite bound.  Returns 0.0 on an empty
    histogram.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"quantile must be in [0, 100], got {q}")
    pairs = sorted(
        (parse_bucket_label(label), count) for label, count in buckets.items()
    )
    total = sum(count for _, count in pairs)
    if total <= 0:
        return 0.0
    target = q / 100.0 * total
    running = 0.0
    lower = 0.0
    for bound, count in pairs:
        if running + count >= target and count > 0:
            if math.isinf(bound):
                return lower
            fraction = (target - running) / count
            return lower + fraction * (bound - lower)
        running += count
        if not math.isinf(bound):
            lower = bound
    return lower


class MetricsRegistry:
    """Names -> instruments; re-requesting a name returns the same object."""

    #: hot paths may branch on this instead of isinstance checks
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return instrument

    def inc(self, name: str, amount: int = 1) -> None:
        """Convenience one-shot counter increment (registry lookup cost)."""
        self.counter(name).inc(amount)

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already registered")

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (fresh run)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: process-wide disabled registry; safe to share (it holds no state)
NULL_METRICS = NullMetricsRegistry()
