"""Pollution time series: sample the tracker's live state every N ticks.

Fig. 7 shows the paper's whole argument is the *trajectory* of the cost
signal, but the repro only kept end-of-run aggregates.
:class:`TimeSeriesSampler` is a replayer plugin that snapshots the live
pollution, tag population, tainted-location count, and shadow footprint
whenever event time advances past the next sampling boundary, plus one
final sample at end-of-replay, giving every run a pollution trajectory at
a configurable tick resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dift.flows import FlowEvent
from repro.dift.tracker import DIFTTracker
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.replay.record import Recording
from repro.replay.replayer import Plugin

logger = get_logger("repro.obs.timeseries")


@dataclass(frozen=True)
class TimeSeriesSample:
    """One snapshot of the tracker's live state."""

    tick: int
    pollution: float
    live_tags: int
    tainted_locations: int
    total_entries: int
    footprint_bytes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "tick": self.tick,
            "pollution": self.pollution,
            "live_tags": self.live_tags,
            "tainted_locations": self.tainted_locations,
            "total_entries": self.total_entries,
            "footprint_bytes": self.footprint_bytes,
        }


class TimeSeriesSampler(Plugin):
    """Replayer plugin sampling tracker state every ``every`` ticks.

    Register it *after* the pipeline plugin so each sample sees the state
    including the event that crossed the boundary.  Samples are taken at
    most once per boundary even when ticks jump; a final sample is always
    appended on ``on_end`` so the series covers the whole run.
    """

    name = "obs-timeseries"

    def __init__(
        self,
        tracker: DIFTTracker,
        every: int = 100,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.tracker = tracker
        self.every = every
        self.samples: List[TimeSeriesSample] = []
        self._next_tick = 0
        self._last_tick = -1
        if metrics is not None:
            self._pollution_gauge = metrics.gauge("pollution")
            self._live_tags_gauge = metrics.gauge("live_tags")
            self._footprint_gauge = metrics.gauge("footprint_bytes")
        else:
            self._pollution_gauge = None
            self._live_tags_gauge = None
            self._footprint_gauge = None

    def on_begin(self, recording: Recording) -> None:
        self.samples.clear()
        self._next_tick = 0
        self._last_tick = -1

    def on_event(self, event: FlowEvent) -> None:
        tick = event.tick
        self._last_tick = tick
        if tick >= self._next_tick:
            self._sample(tick)
            self._next_tick = tick + self.every

    def on_end(self) -> None:
        if self._last_tick >= 0 and (
            not self.samples or self.samples[-1].tick != self._last_tick
        ):
            self._sample(self._last_tick)

    def _sample(self, tick: int) -> None:
        tracker = self.tracker
        sample = TimeSeriesSample(
            tick=tick,
            pollution=tracker.pollution(),
            live_tags=tracker.counter.live_tags(),
            tainted_locations=tracker.shadow.tainted_count(),
            total_entries=tracker.shadow.total_entries(),
            footprint_bytes=tracker.shadow.footprint_bytes(),
        )
        self.samples.append(sample)
        if self._pollution_gauge is not None:
            self._pollution_gauge.set(sample.pollution)
            self._live_tags_gauge.set(sample.live_tags)
            self._footprint_gauge.set(sample.footprint_bytes)
        logger.debug(
            "sampled",
            extra={"tick": tick, "pollution": round(sample.pollution, 3)},
        )

    def __len__(self) -> int:
        return len(self.samples)

    def series(self) -> Dict[str, List[float]]:
        """Column-oriented series (ticks plus each sampled quantity)."""
        return {
            "tick": [s.tick for s in self.samples],
            "pollution": [s.pollution for s in self.samples],
            "live_tags": [s.live_tags for s in self.samples],
            "tainted_locations": [s.tainted_locations for s in self.samples],
            "total_entries": [s.total_entries for s in self.samples],
            "footprint_bytes": [s.footprint_bytes for s in self.samples],
        }

    def as_dicts(self) -> List[Dict[str, float]]:
        return [s.as_dict() for s in self.samples]
