"""Prometheus text exposition for the in-process metrics registry.

:func:`render_registry` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the `text exposition format`_ scrapers expect:

* counters render with the conventional ``_total`` suffix,
* gauges render as plain samples,
* histograms render the Prometheus way -- **cumulative** ``_bucket``
  samples with ``le`` labels (matching the ``cumulative`` block of the
  JSON export), plus ``_sum`` and ``_count``.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the dotted registry names map ``.`` and
any other illegal byte to ``_`` (``serve.decide_us`` ->
``serve_decide_us``).

:func:`parse_prometheus_text` is the deliberately small inverse used by
tests and the CI ``obs-smoke`` job to *validate* a scrape: it checks the
grammar line by line, rebuilds each metric, and enforces the histogram
invariants (bucket counts cumulative and non-decreasing, the ``+Inf``
bucket equal to ``_count``).  It is a validator, not a client library.

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry

#: content type scrapers send in Accept and expect back
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name grammar."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _bound_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:g}"


def render_registry(registry: MetricsRegistry) -> str:
    """The registry as one Prometheus text exposition document."""
    lines: List[str] = []
    snapshot = registry.as_dict()
    for name, value in snapshot["counters"].items():  # type: ignore[union-attr]
        exposed = sanitize_metric_name(name)
        if not exposed.endswith("_total"):
            exposed += "_total"
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {_format_value(value)}")
    for name, value in snapshot["gauges"].items():  # type: ignore[union-attr]
        exposed = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(f"{exposed} {_format_value(value)}")
    for name in sorted(registry._histograms):
        histogram = registry._histograms[name]
        exposed = sanitize_metric_name(name)
        lines.append(f"# TYPE {exposed} histogram")
        bounds = list(histogram.bounds) + [math.inf]
        for bound, cumulative in zip(bounds, histogram.cumulative_counts()):
            lines.append(
                f'{exposed}_bucket{{le="{_bound_label(bound)}"}} {cumulative}'
            )
        lines.append(f"{exposed}_sum {_format_value(histogram.sum)}")
        lines.append(f"{exposed}_count {histogram.count}")
    return "\n".join(lines) + "\n"


class PrometheusParseError(ValueError):
    """A scrape that violates the text exposition grammar or invariants."""


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as error:
        raise PrometheusParseError(
            f"line {line_no}: bad sample value {text!r}"
        ) from error


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Validate a text exposition document; return metric -> details.

    The result maps each exposed metric name to ``{"type": ...,
    "samples": [(labels, value), ...]}``.  Raises
    :class:`PrometheusParseError` on any grammar violation, a sample
    without a preceding ``# TYPE``, a typed metric without samples, or a
    histogram whose cumulative bucket counts decrease or disagree with
    ``_count``.
    """
    metrics: Dict[str, Dict[str, object]] = {}
    declared: Dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PrometheusParseError(f"line {line_no}: malformed TYPE line")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PrometheusParseError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            if not _NAME_OK.match(name):
                raise PrometheusParseError(
                    f"line {line_no}: bad metric name {name!r}"
                )
            if name in declared:
                raise PrometheusParseError(
                    f"line {line_no}: duplicate TYPE for {name!r}"
                )
            declared[name] = kind
            metrics[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):  # other comments (HELP, ...) are legal
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise PrometheusParseError(f"line {line_no}: malformed sample {raw!r}")
        sample_name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                label_match = _LABEL.match(pair.strip())
                if label_match is None:
                    raise PrometheusParseError(
                        f"line {line_no}: malformed label {pair!r}"
                    )
                labels[label_match.group("key")] = label_match.group("value")
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and declared.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in declared:
            raise PrometheusParseError(
                f"line {line_no}: sample {sample_name!r} has no TYPE declaration"
            )
        value = _parse_value(match.group("value"), line_no)
        metrics[base]["samples"].append((sample_name, labels, value))  # type: ignore[union-attr]
    for name, kind in declared.items():
        samples: List[Tuple[str, Dict[str, str], float]] = metrics[name]["samples"]  # type: ignore[assignment]
        if not samples:
            raise PrometheusParseError(f"metric {name!r} declared but has no samples")
        if kind == "histogram":
            _check_histogram(name, samples)
    return metrics


def _check_histogram(
    name: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    buckets: List[Tuple[float, float]] = []
    count = None
    has_sum = False
    for sample_name, labels, value in samples:
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise PrometheusParseError(
                    f"histogram {name!r}: bucket sample without an le label"
                )
            buckets.append((_parse_value(labels["le"], 0), value))
        elif sample_name == f"{name}_count":
            count = value
        elif sample_name == f"{name}_sum":
            has_sum = True
    if not buckets or count is None or not has_sum:
        raise PrometheusParseError(
            f"histogram {name!r}: needs _bucket, _sum and _count samples"
        )
    buckets.sort(key=lambda pair: pair[0])
    previous = -math.inf
    for bound, cumulative in buckets:
        if cumulative < previous:
            raise PrometheusParseError(
                f"histogram {name!r}: bucket counts decrease at le={bound}"
            )
        previous = cumulative
    last_bound, last_count = buckets[-1]
    if not math.isinf(last_bound):
        raise PrometheusParseError(f"histogram {name!r}: missing the +Inf bucket")
    if last_count != count:
        raise PrometheusParseError(
            f"histogram {name!r}: +Inf bucket ({last_count}) != _count ({count})"
        )
