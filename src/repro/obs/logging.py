"""One logging setup for the whole reproduction.

``mitos-repro --verbose`` (and any library caller) funnels through
:func:`configure_logging`: a single handler on the ``"repro"`` logger with
a structured formatter that renders ``logger.debug(..., extra={"tick": t,
"event": kind})`` context as trailing ``key=value`` pairs::

    DEBUG repro.obs.decisions decision trace opened path=d.jsonl
    DEBUG repro.obs.timeseries sampled tick=4200 pollution=137.5

Modules obtain loggers via :func:`get_logger` so everything lives under
the ``repro.`` namespace and one verbosity switch governs it all.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

#: LogRecord attributes that are plumbing, not user-supplied ``extra`` context
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class StructuredFormatter(logging.Formatter):
    """``LEVEL logger message key=value ...`` -- extras become suffix pairs."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname} {record.name} {record.getMessage()}"
        pairs = [
            f"{key}={value}"
            for key, value in sorted(record.__dict__.items())
            if key not in _RESERVED
        ]
        if pairs:
            base = f"{base} {' '.join(pairs)}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    verbose: bool = False, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger; idempotent.

    ``verbose=True`` enables DEBUG; otherwise only warnings and above
    surface.  Returns the configured logger so callers can chain.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(StructuredFormatter())
    root.addHandler(handler)
    root.setLevel(logging.DEBUG if verbose else logging.WARNING)
    root.propagate = False
    return root
