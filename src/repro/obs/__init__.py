"""Live observability: metrics, span tracing, decision traces, time series.

The replay stack only reported end-of-run aggregates (``RunMetrics``,
``TrackerStats``); this package adds the *during-the-run* view the paper's
time-evolving cost signal deserves:

* :mod:`repro.obs.metrics` -- a counter/gauge/histogram registry with a
  no-op twin so the disabled path costs one attribute check,
* :mod:`repro.obs.prometheus` -- Prometheus text exposition for the
  registry (plus the minimal validating parser CI uses),
* :mod:`repro.obs.tracing` -- ``perf_counter_ns`` span aggregation over the
  pipeline stages (replay loop -> pipeline -> tracker -> policy),
* :mod:`repro.obs.decisions` -- a JSONL recorder for every indirect-flow
  propagation decision, built on the tracker's ``ifp_observer`` hook,
* :mod:`repro.obs.timeseries` -- periodic pollution/footprint sampling,
* :mod:`repro.obs.bundle` -- the :class:`Observability` bundle that
  ``FarosSystem`` and the CLI wire through the stack,
* :mod:`repro.obs.logging` -- one structured stdlib-logging setup shared
  by the obs layer and the experiments.
"""

from repro.obs.bundle import Observability, compose_observers
from repro.obs.decisions import (
    DecisionTraceRecorder,
    format_location,
    read_decision_trace,
)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    NULL_METRICS,
    SERVE_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    PrometheusParseError,
    parse_prometheus_text,
    render_registry,
)
from repro.obs.timeseries import TimeSeriesSample, TimeSeriesSampler
from repro.obs.tracing import NULL_TRACER, NullSpanTracer, SpanStats, SpanTracer

__all__ = [
    "Observability",
    "compose_observers",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "BATCH_SIZE_BUCKETS",
    "SERVE_LATENCY_BUCKETS_US",
    "quantile_from_buckets",
    "PROMETHEUS_CONTENT_TYPE",
    "PrometheusParseError",
    "parse_prometheus_text",
    "render_registry",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_TRACER",
    "SpanStats",
    "DecisionTraceRecorder",
    "read_decision_trace",
    "format_location",
    "TimeSeriesSampler",
    "TimeSeriesSample",
    "configure_logging",
    "get_logger",
]
