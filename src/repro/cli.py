"""Command-line driver for the MITOS reproduction.

Two families of commands:

* **experiments** -- regenerate a paper artifact::

      mitos-repro fig3|fig7|fig8|fig9|table2|ablations|all [--quick] [--seed N]

* **trace tools** -- record, inspect, and replay whole-system traces::

      mitos-repro record network --out trace.jsonl.gz --seed 3
      mitos-repro record attack --variant reverse_https --out atk.jsonl.gz
      mitos-repro inspect trace.jsonl.gz
      mitos-repro replay trace.jsonl.gz --policy mitos --tau 0.1
      mitos-repro lineage atk.jsonl.gz --location mem:0x4800

* **observability** -- watch a replay from the inside (see
  docs/OBSERVABILITY.md)::

      mitos-repro replay trace.jsonl.gz --policy mitos \\
          --trace-out decisions.jsonl --metrics-out metrics.json \\
          --sample-every 100
      mitos-repro tracelog decisions.jsonl

* **benchmarks** -- measure replay throughput and refresh the checked-in
  numbers (``results/replay_*.txt`` + ``BENCH_replay.json``)::

      mitos-repro bench [--quick] [--rounds N]
      mitos-repro replay trace.jsonl.gz --engine vector

Recordings and decision traces are JSON-lines (gzip if the path ends in
``.gz``).  ``--verbose`` anywhere before the subcommand turns on DEBUG
logging through the shared structured formatter.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import (
    ablations,
    fault_sweep,
    fig3,
    fig7,
    fig8,
    fig9,
    table2,
    workload_sensitivity,
)

#: experiment name -> (run, render)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "fig3": (fig3.run, fig3.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "table2": (table2.run, table2.render),
    "ablations": (ablations.run, ablations.render),
    "sensitivity": (workload_sensitivity.run, workload_sensitivity.render),
    "fault_sweep": (fault_sweep.run, fault_sweep.render),
}

#: workload name -> factory(seed, quick, variant) (variant used by attack)
def _make_workload(name: str, seed: int, quick: bool, variant: Optional[str]):
    from repro.workloads.attack import InMemoryAttack
    from repro.workloads.cpu import CpuBenchmark
    from repro.workloads.filesystem import FileSystemBenchmark
    from repro.workloads.network import NetworkBenchmark

    if name == "network":
        if quick:
            return NetworkBenchmark(
                seed=seed, connections=3, bytes_per_connection=96, rounds=1,
                config_files=1, bytes_per_file=48, heavy_hitter=False,
            )
        return NetworkBenchmark(seed=seed)
    if name == "cpu":
        return CpuBenchmark(seed=seed, rounds=1 if quick else 3)
    if name == "filesystem":
        return FileSystemBenchmark(seed=seed, rounds=1 if quick else 2)
    if name == "attack":
        kwargs = (
            dict(payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4)
            if quick
            else {}
        )
        return InMemoryAttack(
            variant=variant or "reverse_tcp", seed=seed, **kwargs
        )
    raise ValueError(f"unknown workload {name!r}")


WORKLOAD_NAMES = ("network", "cpu", "filesystem", "attack")


def _parse_location(text: str):
    """Parse ``mem:0x4800`` / ``reg:r3`` into a shadow location."""
    from repro.dift.shadow import mem, reg

    kind, _, value = text.partition(":")
    if kind == "mem":
        return mem(int(value, 0))
    if kind == "reg":
        return reg(value)
    raise argparse.ArgumentTypeError(
        f"location must look like mem:0x4800 or reg:r3, got {text!r}"
    )


def _parse_tag(text: str):
    """Parse ``netflow:1`` into a Tag."""
    from repro.dift.tags import Tag

    tag_type, _, index = text.partition(":")
    try:
        return Tag(tag_type, int(index))
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"tag must look like netflow:1, got {text!r}"
        ) from error


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mitos-repro",
        description="Reproduce and explore MITOS (ICDCS 2020).",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="DEBUG logging via the shared structured formatter",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in sorted(EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name, help=f"regenerate paper artifact {name}"
        )
        sub.add_argument("--quick", action="store_true")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan the sweep out over N worker processes (results are "
                 "identical to --jobs 1; only the wall clock changes)",
        )

    record = subparsers.add_parser("record", help="record a workload trace")
    record.add_argument("workload", choices=WORKLOAD_NAMES)
    record.add_argument("--out", required=True, help="output path (.gz ok)")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--quick", action="store_true")
    record.add_argument(
        "--variant", default=None, help="attack shell variant (attack only)"
    )

    from repro.faros.config import POLICY_NAMES

    replay = subparsers.add_parser("replay", help="replay a trace file")
    replay.add_argument("trace", help="recording path")
    replay.add_argument("--policy", default="mitos", choices=POLICY_NAMES)
    replay.add_argument("--all-flows", action="store_true",
                        help="route direct flows through the policy too")
    replay.add_argument("--tau", type=float, default=1.0)
    replay.add_argument("--alpha", type=float, default=1.5)
    replay.add_argument("--quick-calibration", action="store_true",
                        help="use the quick-scale decision boundary")
    replay.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write one JSONL record per IFP decision (.gz ok)",
    )
    replay.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write metrics + span timings + time series as JSON",
    )
    replay.add_argument(
        "--sample-every", type=int, default=None, metavar="N",
        help="sample pollution/footprint every N ticks",
    )
    replay.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after processing N events (simulates a killed replay)",
    )
    replay.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="atomically write a checkpoint every N events (needs "
             "--checkpoint-out)",
    )
    replay.add_argument(
        "--checkpoint-out", default=None, metavar="PATH",
        help="checkpoint file path (.gz ok)",
    )
    replay.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="restore this checkpoint and continue the replay from its "
             "event index; the result is byte-identical to an "
             "uninterrupted run",
    )
    from repro.replay.supervisor import SUPERVISOR_POLICIES

    replay.add_argument(
        "--supervisor", default=None, choices=SUPERVISOR_POLICIES,
        help="survive plugin failures: retry transient faults, then "
             "fail-fast / skip-event / quarantine",
    )
    replay.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry budget per transient plugin fault (default 2)",
    )
    replay.add_argument(
        "--inject-faults", type=float, default=0.0, metavar="RATE",
        help="seeded fault injection: drop/duplicate/corrupt/reorder "
             "events and raise transient plugin faults at this rate",
    )
    replay.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault injector",
    )
    replay.add_argument(
        "--degrade-at", type=float, default=None, metavar="FRACTION",
        help="shed lowest-utility tags when provenance entries exceed "
             "this fraction of N_R (graceful degradation; default off)",
    )
    # mirrors repro.vector.engine.ENGINE_NAMES without importing the
    # (numpy-backed) vector package at parser-build time
    replay.add_argument(
        "--engine", default="scalar", choices=("scalar", "vector"),
        help="replay execution strategy: the per-event scalar loop or the "
             "columnar vector batch engine (byte-identical results, "
             "~2x throughput; incompatible with per-event plugins, see "
             "docs/PERFORMANCE.md)",
    )

    bench = subparsers.add_parser(
        "bench",
        help="measure replay throughput (scalar vs vector vs reference) "
             "and rewrite results/replay_*.txt + BENCH_replay.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="small recording (smoke test; numbers are "
                            "not representative)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="replays per engine; the best wall clock is reported",
    )
    bench.add_argument(
        "--no-reference", action="store_true",
        help="skip the slow uncached-reference measurement",
    )
    bench.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="where replay_hotpath.txt/replay_throughput.txt land "
             "(default: the repo's results/ directory)",
    )
    bench.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="machine-readable report path (default: BENCH_replay.json "
             "next to --results-dir)",
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="must be 1: the bench measures single-process wall clock, "
             "and pool workers would contend with the engines under test",
    )

    tracelog = subparsers.add_parser(
        "tracelog", help="summarize an IFP decision trace (--trace-out output)"
    )
    tracelog.add_argument("trace", help="decision-trace JSONL path (.gz ok)")
    tracelog.add_argument(
        "--windows", type=int, default=10,
        help="tick buckets for the rate/pollution trajectory",
    )
    tracelog.add_argument(
        "--top", type=int, default=5, help="top blocked tag types to show"
    )

    inspect = subparsers.add_parser("inspect", help="summarize a trace file")
    inspect.add_argument("trace", help="recording path")
    inspect.add_argument("--top", type=int, default=5)

    lineage = subparsers.add_parser(
        "lineage", help="trace a location's taint back to its sources"
    )
    lineage.add_argument("trace", help="recording path")
    lineage.add_argument(
        "--location", type=_parse_location, required=True,
        help="mem:0x4800 or reg:r3",
    )
    lineage.add_argument(
        "--tag", type=_parse_tag, default=None,
        help="explain one tag's path (netflow:1)",
    )
    lineage.add_argument(
        "--direct-only", action="store_true",
        help="what a DFP-only tracker could know",
    )
    return parser


def run_one(name: str, quick: bool, seed: int, jobs: int = 1) -> str:
    run, render = EXPERIMENTS[name]
    started = time.perf_counter()
    result = run(quick=quick, seed=seed, jobs=jobs)
    elapsed = time.perf_counter() - started
    body = render(result)
    return f"{body}\n[{name} completed in {elapsed:.1f}s]"


def _cmd_record(args: argparse.Namespace) -> int:
    workload = _make_workload(args.workload, args.seed, args.quick, args.variant)
    recording = workload.record()
    recording.save(args.out)
    print(
        f"recorded {len(recording)} events "
        f"({recording.kind_counts()}) -> {args.out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_mapping, format_table
    from repro.experiments.common import experiment_params
    from repro.faros import FarosConfig, FarosSystem
    from repro.obs import Observability, get_logger
    from repro.replay.record import Recording

    logger = get_logger("repro.cli")
    if args.engine == "vector":
        # fail on configurations the vector engine rejects (inherently
        # per-event contracts) before doing any work, with the flag names
        # the user typed; --inject-faults, --limit, --trace-out and
        # --metrics-out remain fully supported
        blockers = [
            flag
            for flag, is_set in (
                ("--supervisor", args.supervisor is not None),
                ("--resume-from", args.resume_from is not None),
                ("--checkpoint-every", args.checkpoint_every is not None),
                ("--sample-every", args.sample_every is not None),
                ("--degrade-at", args.degrade_at is not None),
            )
            if is_set
        ]
        if blockers:
            print(
                "error: --engine vector is incompatible with "
                + ", ".join(blockers)
                + " (per-event plugin/supervision contracts); "
                "use --engine scalar",
                file=sys.stderr,
            )
            return 2
    recording = Recording.load(args.trace)
    params = experiment_params(
        quick=args.quick_calibration, tau=args.tau, alpha=args.alpha
    )
    config = FarosConfig(
        params=params,
        policy=args.policy,
        direct_via_policy=args.all_flows,
        label=args.policy,
        degrade_at=args.degrade_at,
        engine=args.engine,
    )
    want_obs = (
        args.trace_out is not None
        or args.metrics_out is not None
        or args.sample_every is not None
    )
    obs = (
        Observability.create(
            trace_out=args.trace_out, sample_every=args.sample_every
        )
        if want_obs
        else None
    )
    want_resilience = (
        args.inject_faults > 0.0
        or args.supervisor is not None
        or args.checkpoint_every is not None
        or args.resume_from is not None
    )
    resilience = None
    if want_resilience:
        from repro.faults import Resilience

        if args.engine == "vector":
            # only --inject-faults can reach here (the other resilience
            # flags were rejected above).  Resilience.create would attach
            # a plugin supervisor, which the vector engine refuses; build
            # the injector alone -- stream faults perturb the recording
            # before the engine sees it, and plugin faults cannot fire
            # without a supervisor, so the replay stays byte-identical to
            # a scalar run over the same seed
            from repro.faults.injector import FaultConfig, FaultInjector

            resilience = Resilience(
                injector=FaultInjector(
                    FaultConfig.uniform(
                        args.inject_faults, seed=args.fault_seed
                    )
                )
            )
        else:
            resilience = Resilience.create(
                fault_rate=args.inject_faults,
                fault_seed=args.fault_seed,
                supervisor_policy=args.supervisor,
                max_retries=args.max_retries,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint_out,
                resume_from=args.resume_from,
            )
    system = FarosSystem(config, observability=obs, resilience=resilience)
    logger.debug(
        "replay starting",
        extra={"trace": args.trace, "events": len(recording)},
    )
    result = system.replay(recording, limit=args.limit)
    print(
        format_mapping(
            f"replay of {args.trace} under {args.policy}"
            + (" (all flows)" if args.all_flows else ""),
            result.metrics.as_dict(),
        )
    )
    if result.robustness:
        print()
        print(format_mapping("robustness", result.robustness))
    if args.checkpoint_every is not None and system.checkpoint_plugin is not None:
        print(
            f"\ncheckpoints: {system.checkpoint_plugin.checkpoints_written} "
            f"written -> {args.checkpoint_out}"
        )
    if obs is not None:
        obs.close()
        breakdown = obs.tracer.breakdown()
        if breakdown:
            print()
            print(
                format_table(
                    ["span", "total_ms", "exclusive_ms"],
                    breakdown,
                    title="span timings",
                )
            )
        if args.trace_out is not None:
            print(
                f"\ndecision trace: {obs.decisions.records_written} records "
                f"-> {args.trace_out}"
            )
        if args.metrics_out is not None:
            obs.write_metrics(args.metrics_out)
            print(f"metrics -> {args.metrics_out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.benchreport import (
        BENCH_JSON_NAME,
        measure_engines,
        render_hotpath_table,
        render_throughput_table,
        write_bench_artifacts,
    )
    from repro.experiments.common import experiment_params, network_recording

    if args.jobs != 1:
        print(
            "error: bench requires --jobs 1 -- it measures single-process "
            "wall clock, and pool workers would contend with the engines "
            "under test (use --rounds to tighten the measurement instead)",
            file=sys.stderr,
        )
        return 2
    repo_root = Path(__file__).resolve().parent.parent.parent
    results_dir = (
        Path(args.results_dir)
        if args.results_dir is not None
        else repo_root / "results"
    )
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else (
            repo_root / BENCH_JSON_NAME
            if args.results_dir is None
            else results_dir / BENCH_JSON_NAME
        )
    )
    recording = network_recording(seed=args.seed, quick=args.quick)
    params = experiment_params()
    print(
        f"benchmarking {len(recording)} events, best of {args.rounds} "
        f"round(s) per engine..."
    )
    report = measure_engines(
        recording,
        params,
        rounds=args.rounds,
        include_reference=not args.no_reference,
    )
    print()
    print(render_hotpath_table(report))
    print()
    print(render_throughput_table(report))
    written = write_bench_artifacts(report, results_dir, json_out)
    print()
    for path in written:
        print(f"written: {path}")
    return 0


def _cmd_tracelog(args: argparse.Namespace) -> int:
    from repro.analysis.decision_trace import (
        format_decision_trace_summary,
        summarize_decision_trace_file,
    )

    summary = summarize_decision_trace_file(args.trace, windows=args.windows)
    print(
        format_decision_trace_summary(
            summary, title=f"decision trace {args.trace}", top_k=args.top
        )
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.trace_stats import (
        format_trace_summary,
        summarize_recording,
    )
    from repro.replay.record import Recording

    recording = Recording.load(args.trace)
    print(format_trace_summary(summarize_recording(recording, top_k=args.top)))
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    from repro.analysis.lineage import LineageGraph
    from repro.replay.record import Recording

    recording = Recording.load(args.trace)
    lineage = LineageGraph.from_recording(
        recording, include_indirect=not args.direct_only
    )
    hits = lineage.sources_of(args.location)
    if not hits:
        print(f"{args.location}: no taint sources reach this location")
        return 0
    print(f"{args.location}: reached by {len(hits)} source(s)")
    for hit in hits:
        print(
            f"  {hit.tag.type}#{hit.tag.index}  "
            f"inserted at tick {hit.insert_tick}, {hit.hops} hops away"
        )
    if args.tag is not None:
        path = lineage.explain(args.location, args.tag)
        if not path:
            print(f"{args.tag} never reaches {args.location}")
        else:
            print(f"path of {args.tag}:")
            for location, version in path:
                print(f"  {location} (v{version})")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(verbose=args.verbose)
    command = args.command
    if command in EXPERIMENTS or command == "all":
        names = sorted(EXPERIMENTS) if command == "all" else [command]
        for name in names:
            print(run_one(name, args.quick, args.seed, jobs=args.jobs))
            print()
        return 0
    handlers = {
        "record": _cmd_record,
        "replay": _cmd_replay,
        "bench": _cmd_bench,
        "inspect": _cmd_inspect,
        "lineage": _cmd_lineage,
        "tracelog": _cmd_tracelog,
    }
    return handlers[command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
