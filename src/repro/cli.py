"""Command-line driver for the MITOS reproduction.

Two families of commands:

* **experiments** -- regenerate a paper artifact::

      mitos-repro fig3|fig7|fig8|fig9|table2|ablations|all [--quick] [--seed N]

* **trace tools** -- record, inspect, and replay whole-system traces::

      mitos-repro record network --out trace.jsonl.gz --seed 3
      mitos-repro record attack --variant reverse_https --out atk.jsonl.gz
      mitos-repro inspect trace.jsonl.gz
      mitos-repro replay trace.jsonl.gz --policy mitos --tau 0.1
      mitos-repro lineage atk.jsonl.gz --location mem:0x4800

* **observability** -- watch a replay from the inside (see
  docs/OBSERVABILITY.md)::

      mitos-repro replay trace.jsonl.gz --policy mitos \\
          --trace-out decisions.jsonl --metrics-out metrics.json \\
          --sample-every 100
      mitos-repro tracelog decisions.jsonl

* **benchmarks** -- measure replay throughput and refresh the checked-in
  numbers (``results/replay_*.txt`` + ``BENCH_replay.json``)::

      mitos-repro bench [--quick] [--rounds N]
      mitos-repro replay trace.jsonl.gz --engine vector

Recordings and decision traces are JSON-lines (gzip if the path ends in
``.gz``).  ``--verbose`` anywhere before the subcommand turns on DEBUG
logging through the shared structured formatter.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import (
    ablations,
    fault_sweep,
    fig3,
    fig7,
    fig8,
    fig9,
    table2,
    workload_sensitivity,
)

#: experiment name -> (run, render)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "fig3": (fig3.run, fig3.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "table2": (table2.run, table2.render),
    "ablations": (ablations.run, ablations.render),
    "sensitivity": (workload_sensitivity.run, workload_sensitivity.render),
    "fault_sweep": (fault_sweep.run, fault_sweep.render),
}

#: workload name -> factory(seed, quick, variant) (variant used by attack)
def _make_workload(name: str, seed: int, quick: bool, variant: Optional[str]):
    from repro.workloads.attack import InMemoryAttack
    from repro.workloads.cpu import CpuBenchmark
    from repro.workloads.filesystem import FileSystemBenchmark
    from repro.workloads.network import NetworkBenchmark

    if name == "network":
        if quick:
            return NetworkBenchmark(
                seed=seed, connections=3, bytes_per_connection=96, rounds=1,
                config_files=1, bytes_per_file=48, heavy_hitter=False,
            )
        return NetworkBenchmark(seed=seed)
    if name == "cpu":
        return CpuBenchmark(seed=seed, rounds=1 if quick else 3)
    if name == "filesystem":
        return FileSystemBenchmark(seed=seed, rounds=1 if quick else 2)
    if name == "attack":
        kwargs = (
            dict(payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4)
            if quick
            else {}
        )
        return InMemoryAttack(
            variant=variant or "reverse_tcp", seed=seed, **kwargs
        )
    raise ValueError(f"unknown workload {name!r}")


WORKLOAD_NAMES = ("network", "cpu", "filesystem", "attack")


def _parse_location(text: str):
    """Parse ``mem:0x4800`` / ``reg:r3`` into a shadow location."""
    from repro.dift.shadow import mem, reg

    kind, _, value = text.partition(":")
    if kind == "mem":
        return mem(int(value, 0))
    if kind == "reg":
        return reg(value)
    raise argparse.ArgumentTypeError(
        f"location must look like mem:0x4800 or reg:r3, got {text!r}"
    )


def _parse_tag(text: str):
    """Parse ``netflow:1`` into a Tag."""
    from repro.dift.tags import Tag

    tag_type, _, index = text.partition(":")
    try:
        return Tag(tag_type, int(index))
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"tag must look like netflow:1, got {text!r}"
        ) from error


def _add_adapt_flags(sub: argparse.ArgumentParser) -> None:
    """The online parameter-adaptation flag group (replay/serve/cluster).

    One spelling everywhere; ``_control_options`` turns the namespace
    back into a :class:`~repro.options.ControlOptions` (or ``None`` when
    ``--adapt`` was not given, the provably-inert path).
    """
    sub.add_argument(
        "--adapt", action="store_true",
        help="enable online parameter adaptation: re-estimate the "
             "decision boundary from the live pollution signal every "
             "--adapt-every decisions (see docs/CONTROL.md)",
    )
    sub.add_argument(
        "--adapt-mode", default="ewma", choices=("ewma", "bandit"),
        help="estimator: EWMA/gradient baseline or seeded epsilon-greedy "
             "bandit over a discretized tau_scale grid",
    )
    sub.add_argument(
        "--adapt-every", type=int, default=256, metavar="N",
        help="decisions between controller steps",
    )
    sub.add_argument(
        "--adapt-target", type=float, default=0.05, metavar="FRACTION",
        help="pollution budget (fraction of N_R) the controller steers to",
    )
    sub.add_argument(
        "--adapt-step", type=float, default=0.15, metavar="STEP",
        help="multiplicative tau_scale step per update (ewma mode)",
    )
    sub.add_argument(
        "--adapt-seed", type=int, default=0,
        help="seed for the bandit's exploration draws",
    )
    sub.add_argument(
        "--no-adapt-weights", action="store_true",
        help="freeze the per-tag-type utility/over-taint weights "
             "(adapt only the boundary scale)",
    )


def _control_options(args: argparse.Namespace):
    """``ControlOptions`` for the ``--adapt*`` flags, or ``None``."""
    if not getattr(args, "adapt", False):
        return None
    from repro.options import ControlOptions

    return ControlOptions(
        enabled=True,
        mode=args.adapt_mode,
        every=args.adapt_every,
        target_pollution=args.adapt_target,
        step=args.adapt_step,
        seed=args.adapt_seed,
        adapt_weights=not args.no_adapt_weights,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mitos-repro",
        description="Reproduce and explore MITOS (ICDCS 2020).",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="DEBUG logging via the shared structured formatter",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in sorted(EXPERIMENTS) + ["all"]:
        sub = subparsers.add_parser(
            name, help=f"regenerate paper artifact {name}"
        )
        sub.add_argument("--quick", action="store_true")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="fan the sweep out over N worker processes (results are "
                 "identical to --jobs 1; only the wall clock changes)",
        )

    record = subparsers.add_parser("record", help="record a workload trace")
    record.add_argument("workload", choices=WORKLOAD_NAMES)
    record.add_argument("--out", required=True, help="output path (.gz ok)")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--quick", action="store_true")
    record.add_argument(
        "--variant", default=None, help="attack shell variant (attack only)"
    )

    from repro.faros.config import POLICY_NAMES

    replay = subparsers.add_parser("replay", help="replay a trace file")
    replay.add_argument("trace", help="recording path")
    replay.add_argument("--policy", default="mitos", choices=POLICY_NAMES)
    replay.add_argument("--all-flows", action="store_true",
                        help="route direct flows through the policy too")
    replay.add_argument("--tau", type=float, default=1.0)
    replay.add_argument("--alpha", type=float, default=1.5)
    replay.add_argument("--quick-calibration", action="store_true",
                        help="use the quick-scale decision boundary")
    replay.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write one JSONL record per IFP decision (.gz ok)",
    )
    replay.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write metrics + span timings + time series as JSON",
    )
    replay.add_argument(
        "--sample-every", type=int, default=None, metavar="N",
        help="sample pollution/footprint every N ticks",
    )
    replay.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after processing N events (simulates a killed replay)",
    )
    replay.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="atomically write a checkpoint every N events (needs "
             "--checkpoint-out)",
    )
    replay.add_argument(
        "--checkpoint-out", default=None, metavar="PATH",
        help="checkpoint file path (.gz ok)",
    )
    replay.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="restore this checkpoint and continue the replay from its "
             "event index; the result is byte-identical to an "
             "uninterrupted run",
    )
    from repro.replay.supervisor import SUPERVISOR_POLICIES

    replay.add_argument(
        "--supervisor", default=None, choices=SUPERVISOR_POLICIES,
        help="survive plugin failures: retry transient faults, then "
             "fail-fast / skip-event / quarantine",
    )
    replay.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry budget per transient plugin fault (default 2)",
    )
    replay.add_argument(
        "--inject-faults", type=float, default=0.0, metavar="RATE",
        help="seeded fault injection: drop/duplicate/corrupt/reorder "
             "events and raise transient plugin faults at this rate",
    )
    replay.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault injector",
    )
    replay.add_argument(
        "--degrade-at", type=float, default=None, metavar="FRACTION",
        help="shed lowest-utility tags when provenance entries exceed "
             "this fraction of N_R (graceful degradation; default off)",
    )
    # mirrors repro.vector.engine.ENGINE_NAMES without importing the
    # (numpy-backed) vector package at parser-build time
    replay.add_argument(
        "--engine", default="scalar", choices=("scalar", "vector"),
        help="replay execution strategy: the per-event scalar loop or the "
             "columnar vector batch engine (byte-identical results, "
             "~2x throughput; incompatible with per-event plugins, see "
             "docs/PERFORMANCE.md)",
    )
    _add_adapt_flags(replay)

    serve = subparsers.add_parser(
        "serve",
        help="run the online MITOS decision service (see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7757,
        help="TCP port for the NDJSON decision protocol (0 = ephemeral)",
    )
    serve.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="HTTP admin surface (/healthz, /stats, /metrics); default off",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="independent tracker+policy shards (consistent-hash routing)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024, metavar="N",
        help="bounded per-shard queue; a full queue answers 'overloaded'",
    )
    serve.add_argument(
        "--batch-max", type=int, default=64, metavar="N",
        help="max requests a shard worker drains per wakeup",
    )
    serve.add_argument(
        "--batch-deadline-us", type=float, default=250.0, metavar="US",
        help="adaptive batch-deadline cap: a loaded shard worker may "
             "hold a drain open up to this long so the columnar kernel "
             "sees wider batches (0 disables; idle load never waits)",
    )
    serve.add_argument(
        "--gc-freeze", action="store_true",
        help="freeze warmup allocations out of the cyclic GC and relax "
             "collection thresholds (recommended for dedicated serving "
             "processes)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="bounded retries per request before an 'internal' error",
    )
    serve.add_argument("--policy", default="mitos", choices=POLICY_NAMES)
    serve.add_argument("--tau", type=float, default=1.0)
    serve.add_argument("--alpha", type=float, default=1.5)
    serve.add_argument("--quick-calibration", action="store_true")
    serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="per-shard checkpoint directory (shard-<i>.ckpt.json)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint a shard every N applied requests",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="restore shard checkpoints from --checkpoint-dir on boot",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="JSONL decision trace of every served decision (.gz ok)",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="metrics JSON written on shutdown",
    )
    serve.add_argument(
        "--observe", action="store_true",
        help="live hot-path metrics/spans (latency histograms on "
             "/metrics, decision tail on /events) without file outputs",
    )
    serve.add_argument(
        "--canary-fraction", type=float, default=0.0, metavar="FRACTION",
        help="mirror this fraction of decide traffic to a shadow "
             "tracker+policy and count decision flips (default off)",
    )
    serve.add_argument(
        "--canary-tau", type=float, default=None, metavar="TAU",
        help="canary decision-boundary tau (default: the primary's)",
    )
    serve.add_argument(
        "--canary-alpha", type=float, default=None, metavar="ALPHA",
        help="canary decision-boundary alpha (default: the primary's)",
    )
    serve.add_argument(
        "--canary-policy", default=None, choices=POLICY_NAMES,
        help="canary propagation policy (default: the primary's)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="max wait for queued requests on graceful shutdown",
    )
    serve.add_argument(
        "--wire-format", default="ndjson", choices=("ndjson", "binary"),
        help="'ndjson' negotiates both formats per connection; 'binary' "
             "rejects NDJSON decide/apply (control ops stay reachable)",
    )
    _add_adapt_flags(serve)

    cluster = subparsers.add_parser(
        "cluster",
        help="run a supervised multi-process shard fleet with crash "
             "recovery and gossip (see docs/CLUSTER.md)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="shard server processes (= consistent-hash ring positions)",
    )
    cluster.add_argument(
        "--backend", default="process", choices=("process", "thread"),
        help="child processes (production) or in-process server threads",
    )
    cluster.add_argument(
        "--checkpoint-root", default=None, metavar="DIR",
        help="root for per-shard checkpoint dirs (default: a supervisor-"
             "owned temporary directory)",
    )
    cluster.add_argument("--policy", default="mitos", choices=POLICY_NAMES)
    cluster.add_argument("--tau", type=float, default=1.0)
    cluster.add_argument("--alpha", type=float, default=1.5)
    cluster.add_argument("--quick-calibration", action="store_true")
    cluster.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="checkpoint each shard every N applied requests",
    )
    cluster.add_argument(
        "--health-interval", type=float, default=0.25, metavar="SECONDS",
        help="seconds between /readyz probes of each shard",
    )
    cluster.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="restarts per shard before the supervisor gives up on it",
    )
    cluster.add_argument(
        "--gossip-interval", type=float, default=0.5, metavar="SECONDS",
        help="seconds between pollution gossip rounds (0 = off)",
    )
    cluster.add_argument(
        "--gossip-loss-rate", type=float, default=0.0, metavar="RATE",
        help="seeded per-message gossip drop probability",
    )
    cluster.add_argument(
        "--status-interval", type=float, default=5.0, metavar="SECONDS",
        help="print a supervisor status line this often (0 = only on exit)",
    )
    cluster.add_argument(
        "--wire-format", default="ndjson", choices=("ndjson", "binary"),
        help="wire format each shard server enforces for decide/apply "
             "(gossip and control ops always ride NDJSON)",
    )
    _add_adapt_flags(cluster)

    bench_cluster = subparsers.add_parser(
        "bench-cluster",
        help="boot a shard fleet, replay a recording's IFP decisions "
             "through the router while SIGKILLing shards on a seeded "
             "schedule, verify degraded-answer bounds and post-recovery "
             "oracle agreement (writes BENCH_cluster.json)",
    )
    bench_cluster.add_argument("--quick", action="store_true",
                               help="small recording (smoke test)")
    bench_cluster.add_argument("--seed", type=int, default=0)
    bench_cluster.add_argument(
        "--shards", type=int, default=3, metavar="N"
    )
    bench_cluster.add_argument(
        "--backend", default="process", choices=("process", "thread"),
        help="process = real SIGKILL; thread = in-process abort (fast)",
    )
    bench_cluster.add_argument(
        "--crashes", type=int, default=1, metavar="N",
        help="shard kills injected mid-load (seeded schedule)",
    )
    bench_cluster.add_argument(
        "--crash-seed", type=int, default=0,
        help="seed for the crash schedule",
    )
    bench_cluster.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="replay only the first N recording events",
    )
    bench_cluster.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="report path (default: BENCH_cluster.json at the repo root)",
    )
    bench_cluster.add_argument(
        "--sweep-shards", default=None, metavar="N,N,...",
        help="comma-separated shard counts (e.g. 1,2,4): instead of the "
             "crash bench, boot a fresh fleet per count, drive every "
             "shard concurrently from its own worker process, and record "
             "aggregate decisions/s + scaling efficiency + oracle "
             "agreement per point (writes BENCH_scale.json)",
    )
    bench_cluster.add_argument(
        "--window", type=int, default=256, metavar="N",
        help="outstanding requests per sweep loadgen worker",
    )
    bench_cluster.add_argument(
        "--no-pin-cpus", action="store_true",
        help="skip pinning each process shard to its own CPU",
    )
    bench_cluster.add_argument(
        "--trend-out", default=None, metavar="PATH",
        help="perf trendline to append to "
             "(default: results/bench_trend.jsonl at the repo root)",
    )
    bench_cluster.add_argument(
        "--sweep-gossip", default=None, metavar="N,N,...",
        help="comma-separated gossip intervals in decisions (e.g. "
             "8,32,128): instead of the crash bench, boot a fresh fleet "
             "per interval, drive the offline decisions with believed "
             "(local + gossiped) pollution, and record oracle agreement "
             "and propagate-recall per point -- the live-fleet mirror of "
             "the simulation's gossip sweep (writes BENCH_cluster.json)",
    )
    bench_cluster.add_argument(
        "--gossip-loss-rate", type=float, default=0.0, metavar="RATE",
        help="seeded per-message gossip drop probability (sweep only)",
    )

    bench_adapt = subparsers.add_parser(
        "bench-adapt",
        help="replay a drifting workload under fixed vs adaptive MITOS "
             "parameters and report recall/pollution/decision flips "
             "(writes BENCH_adapt.json; see docs/CONTROL.md)",
    )
    bench_adapt.add_argument("--quick", action="store_true",
                             help="small drifting recording (smoke test)")
    bench_adapt.add_argument("--seed", type=int, default=0)
    bench_adapt.add_argument(
        "--mode", default="ewma", choices=("ewma", "bandit"),
        help="adaptive estimator to benchmark",
    )
    bench_adapt.add_argument(
        "--every", type=int, default=None, metavar="N",
        help="controller cadence in decisions (default: workload-scaled)",
    )
    bench_adapt.add_argument(
        "--target", type=float, default=None, metavar="FRACTION",
        help="pollution budget as a fraction of N_R "
             "(default: calibrated to the workload's clean phase)",
    )
    bench_adapt.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="report path (default: BENCH_adapt.json at the repo root)",
    )
    bench_adapt.add_argument(
        "--trend-out", default=None, metavar="PATH",
        help="perf trendline to append to "
             "(default: results/bench_trend.jsonl at the repo root)",
    )

    top = subparsers.add_parser(
        "top",
        help="live terminal view of a serving instance (reads the admin "
             "port's /events stream; see docs/SERVING.md)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--port", type=int, required=True, metavar="PORT",
        help="the server's admin port (--admin-port on serve)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="snapshot refresh interval",
    )
    top.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="exit after N snapshots (0 = until interrupted)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (logs, tests)",
    )

    bench_serve = subparsers.add_parser(
        "bench-serve",
        help="boot a server, replay a recording's IFP decisions against "
             "it, verify parity with the offline replay, report "
             "throughput/latency (writes BENCH_serve.json)",
    )
    bench_serve.add_argument("--quick", action="store_true",
                             help="small recording (smoke test)")
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--shards", type=int, default=1, metavar="N")
    bench_serve.add_argument(
        "--connections", type=int, default=1, metavar="N",
        help="concurrent client connections; above 1 each connection "
             "runs in its own worker process (no shared client GIL) "
             "with a synchronized start and merged accounting",
    )
    bench_serve.add_argument(
        "--open-loop", action="store_true",
        help="submit every request without waiting on responses "
             "(arrivals stop gating on completions, exposing capacity "
             "a closed-loop window understates)",
    )
    bench_serve.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each wire format N times against fresh servers and "
             "keep the fastest run (noisy-host hygiene)",
    )
    bench_serve.add_argument(
        "--window", type=int, default=256, metavar="N",
        help="outstanding requests per connection",
    )
    bench_serve.add_argument(
        "--batch-deadline-us", type=float, default=250.0, metavar="US",
        help="server-side adaptive batch-deadline cap (0 disables)",
    )
    bench_serve.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="replay only the first N recording events",
    )
    bench_serve.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="report path (default: BENCH_serve.json at the repo root)",
    )
    bench_serve.add_argument(
        "--trend-out", default=None, metavar="PATH",
        help="perf trendline to append to "
             "(default: results/bench_trend.jsonl at the repo root)",
    )
    bench_serve.add_argument(
        "--in-process", action="store_true",
        help="run the server on a thread in this process instead of a "
             "subprocess (simpler, but the client contends with the "
             "server for the GIL, so throughput reads low)",
    )
    bench_serve.add_argument(
        "--wire-format", default="both",
        choices=("both", "ndjson", "binary"),
        help="which wire format(s) to measure; 'both' runs each against "
             "a fresh server and reports the speedup",
    )
    bench_serve.add_argument(
        "--binary-window", type=int, default=256, metavar="N",
        help="outstanding requests per connection on the binary runs; "
             "the columnar decision plane feeds on deep pipelines, so "
             "the default matches --window (the old 64 leaves ~10%% "
             "of throughput on the table for ~1ms less p50)",
    )
    bench_serve.add_argument(
        "--profile", action="store_true",
        help="run the server loop under cProfile (forces --in-process) "
             "and write results/serve_profile.pstats plus a top-25 "
             "cumulative table",
    )

    bench = subparsers.add_parser(
        "bench",
        help="measure replay throughput (scalar vs vector vs reference) "
             "and rewrite results/replay_*.txt + BENCH_replay.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="small recording (smoke test; numbers are "
                            "not representative)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="replays per engine; the best wall clock is reported",
    )
    bench.add_argument(
        "--no-reference", action="store_true",
        help="skip the slow uncached-reference measurement",
    )
    bench.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="where replay_hotpath.txt/replay_throughput.txt land "
             "(default: the repo's results/ directory)",
    )
    bench.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="machine-readable report path (default: BENCH_replay.json "
             "next to --results-dir)",
    )
    bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="must be 1: the bench measures single-process wall clock, "
             "and pool workers would contend with the engines under test",
    )

    tracelog = subparsers.add_parser(
        "tracelog", help="summarize an IFP decision trace (--trace-out output)"
    )
    tracelog.add_argument("trace", help="decision-trace JSONL path (.gz ok)")
    tracelog.add_argument(
        "--windows", type=int, default=10,
        help="tick buckets for the rate/pollution trajectory",
    )
    tracelog.add_argument(
        "--top", type=int, default=5, help="top blocked tag types to show"
    )

    inspect = subparsers.add_parser("inspect", help="summarize a trace file")
    inspect.add_argument("trace", help="recording path")
    inspect.add_argument("--top", type=int, default=5)

    lineage = subparsers.add_parser(
        "lineage", help="trace a location's taint back to its sources"
    )
    lineage.add_argument("trace", help="recording path")
    lineage.add_argument(
        "--location", type=_parse_location, required=True,
        help="mem:0x4800 or reg:r3",
    )
    lineage.add_argument(
        "--tag", type=_parse_tag, default=None,
        help="explain one tag's path (netflow:1)",
    )
    lineage.add_argument(
        "--direct-only", action="store_true",
        help="what a DFP-only tracker could know",
    )
    return parser


def run_one(name: str, quick: bool, seed: int, jobs: int = 1) -> str:
    run, render = EXPERIMENTS[name]
    started = time.perf_counter()
    result = run(quick=quick, seed=seed, jobs=jobs)
    elapsed = time.perf_counter() - started
    body = render(result)
    return f"{body}\n[{name} completed in {elapsed:.1f}s]"


def _cmd_record(args: argparse.Namespace) -> int:
    workload = _make_workload(args.workload, args.seed, args.quick, args.variant)
    recording = workload.record()
    recording.save(args.out)
    print(
        f"recorded {len(recording)} events "
        f"({recording.kind_counts()}) -> {args.out}"
    )
    return 0


def _replay_options(args: argparse.Namespace):
    """The typed option bundle for a ``replay`` invocation's flags."""
    from repro.options import ReplayOptions

    return ReplayOptions(
        engine=args.engine,
        limit=args.limit,
        checkpoint_every=args.checkpoint_every,
        checkpoint_out=args.checkpoint_out,
        resume_from=args.resume_from,
        supervisor=args.supervisor,
        max_retries=args.max_retries,
        inject_faults=args.inject_faults,
        fault_seed=args.fault_seed,
        degrade_at=args.degrade_at,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        sample_every=args.sample_every,
        control=_control_options(args),
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_mapping, format_table
    from repro.api import load_recording
    from repro.builders import build_replay_system, vector_conflict
    from repro.obs import get_logger

    logger = get_logger("repro.cli")
    try:
        options = _replay_options(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # fail on configurations the vector engine rejects (inherently
    # per-event contracts) before doing any work, with the flag names
    # the user typed; --inject-faults, --limit, --trace-out and
    # --metrics-out remain fully supported
    conflict = vector_conflict(options, as_flags=True)
    if conflict:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    recording = load_recording(args.trace)
    system, obs = build_replay_system(
        options,
        policy=args.policy,
        tau=args.tau,
        alpha=args.alpha,
        quick_calibration=args.quick_calibration,
        all_flows=args.all_flows,
    )
    logger.debug(
        "replay starting",
        extra={"trace": args.trace, "events": len(recording)},
    )
    result = system.replay(recording, limit=args.limit)
    print(
        format_mapping(
            f"replay of {args.trace} under {args.policy}"
            + (" (all flows)" if args.all_flows else ""),
            result.metrics.as_dict(),
        )
    )
    if result.robustness:
        print()
        print(format_mapping("robustness", result.robustness))
    if args.checkpoint_every is not None and system.checkpoint_plugin is not None:
        print(
            f"\ncheckpoints: {system.checkpoint_plugin.checkpoints_written} "
            f"written -> {args.checkpoint_out}"
        )
    if obs is not None:
        obs.close()
        breakdown = obs.tracer.breakdown()
        if breakdown:
            print()
            print(
                format_table(
                    ["span", "total_ms", "exclusive_ms"],
                    breakdown,
                    title="span timings",
                )
            )
        if args.trace_out is not None:
            print(
                f"\ndecision trace: {obs.decisions.records_written} records "
                f"-> {args.trace_out}"
            )
        if args.metrics_out is not None:
            obs.write_metrics(args.metrics_out)
            print(f"metrics -> {args.metrics_out}")
    return 0


def _serve_options(args: argparse.Namespace):
    from repro.options import ServeOptions

    return ServeOptions(
        host=args.host,
        port=args.port,
        admin_port=args.admin_port,
        shards=args.shards,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        batch_deadline_us=args.batch_deadline_us,
        gc_freeze=args.gc_freeze,
        max_retries=args.max_retries,
        policy=args.policy,
        tau=args.tau,
        alpha=args.alpha,
        quick_calibration=args.quick_calibration,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        observe=args.observe,
        canary_fraction=args.canary_fraction,
        canary_tau=args.canary_tau,
        canary_alpha=args.canary_alpha,
        canary_policy=args.canary_policy,
        drain_timeout=args.drain_timeout,
        wire_format=args.wire_format,
        control=_control_options(args),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import serve

    try:
        options = _serve_options(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def announce(server) -> None:
        # one parseable line per bound socket; bench-serve's subprocess
        # mode and the CI smoke job read the port from the first one
        print(f"listening on {options.host}:{server.port}", flush=True)
        if server.admin_port is not None:
            print(f"admin on {options.host}:{server.admin_port}", flush=True)

    print(
        f"serving MITOS decisions with {options.shards} shard(s), policy "
        f"{options.policy}; SIGTERM/SIGINT drains gracefully",
        flush=True,
    )
    serve(options, ready=announce)
    return 0


def _cluster_options(args: argparse.Namespace):
    from repro.options import ClusterOptions

    return ClusterOptions(
        host=args.host,
        shards=args.shards,
        checkpoint_root=args.checkpoint_root,
        policy=args.policy,
        tau=args.tau,
        alpha=args.alpha,
        quick_calibration=args.quick_calibration,
        checkpoint_every=args.checkpoint_every,
        health_interval=args.health_interval,
        max_restarts=args.max_restarts,
        gossip_interval=(
            args.gossip_interval if args.gossip_interval > 0 else None
        ),
        gossip_loss_rate=args.gossip_loss_rate,
        wire_format=args.wire_format,
        control=_control_options(args),
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.cluster import ClusterSupervisor

    try:
        options = _cluster_options(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"starting {options.shards}-shard MITOS cluster "
        f"({args.backend} backend); Ctrl-C stops the fleet",
        flush=True,
    )
    supervisor = ClusterSupervisor(options, backend=args.backend)
    try:
        supervisor.start()
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        for endpoint in supervisor.endpoints():
            if endpoint is not None:
                # same parseable shape as serve's announce lines
                print(
                    f"shard {endpoint.shard} listening on "
                    f"{endpoint.host}:{endpoint.port} "
                    f"(admin {endpoint.admin_port})",
                    flush=True,
                )
        while True:
            time.sleep(
                args.status_interval if args.status_interval > 0 else 3600
            )
            if args.status_interval > 0:
                print(json_module.dumps(supervisor.status()), flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
        print(json_module.dumps(supervisor.status()), flush=True)
    return 0


def _bench_cluster_sweep(args, recording, offline) -> int:
    import os
    from pathlib import Path

    from repro.cluster import run_scale_sweep, write_scale_bench
    from repro.options import ClusterOptions

    try:
        shard_counts = [
            int(part) for part in args.sweep_shards.split(",") if part.strip()
        ]
    except ValueError:
        print(
            f"error: --sweep-shards must be a comma-separated list of "
            f"integers, got {args.sweep_shards!r}",
            file=sys.stderr,
        )
        return 2
    if not shard_counts or any(count < 1 for count in shard_counts):
        print(
            f"error: --sweep-shards needs counts >= 1, "
            f"got {args.sweep_shards!r}",
            file=sys.stderr,
        )
        return 2
    if len(offline) < max(shard_counts):
        print(
            f"error: the recording produced too few IFP decisions "
            f"({len(offline)}) to drive {max(shard_counts)} shard(s)",
            file=sys.stderr,
        )
        return 2

    def options_factory(count: int) -> ClusterOptions:
        return ClusterOptions(
            shards=count,
            quick_calibration=args.quick,
            pin_cpus=not args.no_pin_cpus,
            # throughput sweep, not a crash bench: gossip off so the
            # only cross-shard traffic is the load itself, and no
            # mid-load checkpoint cadence (the crash bench owns that;
            # at the default every-64 the serialization dominates the
            # measurement and masks the scaling signal)
            gossip_interval=None,
            checkpoint_every=1 << 30,
        )

    print(
        f"sweeping shard counts {shard_counts} over {len(offline)} "
        f"decisions (binary wire, window {args.window}, one loadgen "
        f"worker process per shard)..."
    )
    sweep = run_scale_sweep(
        offline,
        shard_counts,
        options_factory,
        wire_format="binary",
        window=args.window,
    )
    for entry in sweep:
        print(
            f"  {entry['shards']} shard(s): "
            f"{entry['decisions_per_second']:.0f}/s aggregate, "
            f"{entry['speedup_vs_base']:.2f}x vs base, "
            f"efficiency {entry['scaling_efficiency']:.2f}, "
            f"agreement {entry['agreement']:.4f}, "
            f"{'parity ok' if entry['matched'] else 'PARITY FAILURE'}"
        )
    matched = all(entry["matched"] for entry in sweep)
    repo_root = Path(__file__).resolve().parent.parent.parent
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else repo_root / "BENCH_scale.json"
    )
    write_scale_bench(
        json_out,
        sweep,
        recording_events=len(recording),
        wire_format="binary",
        window=args.window,
        extra={
            "quick": args.quick,
            "seed": args.seed,
            "pin_cpus": not args.no_pin_cpus,
            "cpu_count": os.cpu_count(),
        },
    )
    print(f"written: {json_out}")
    from datetime import datetime, timezone

    from repro.serve import append_bench_trend

    trend_path = append_bench_trend(
        args.trend_out
        if args.trend_out is not None
        else repo_root / "results" / "bench_trend.jsonl",
        {
            "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "benchmark": "scale",
            "wire_format": "binary",
            "window": args.window,
            "quick": args.quick,
            "shard_counts": shard_counts,
            "decisions_per_second": [
                entry["decisions_per_second"] for entry in sweep
            ],
            "scaling_efficiency": [
                entry["scaling_efficiency"] for entry in sweep
            ],
            "matched": matched,
        },
    )
    print(f"trend: {trend_path}")
    return 0 if matched else 1


def _bench_cluster_gossip(args, recording, offline) -> int:
    from pathlib import Path

    from repro.cluster import run_gossip_sweep, write_gossip_bench
    from repro.options import ClusterOptions

    try:
        intervals = [
            int(part) for part in args.sweep_gossip.split(",") if part.strip()
        ]
    except ValueError:
        print(
            f"error: --sweep-gossip must be a comma-separated list of "
            f"integers, got {args.sweep_gossip!r}",
            file=sys.stderr,
        )
        return 2
    if not intervals or any(interval < 1 for interval in intervals):
        print(
            f"error: --sweep-gossip needs intervals >= 1, "
            f"got {args.sweep_gossip!r}",
            file=sys.stderr,
        )
        return 2

    def options_factory(interval: int) -> ClusterOptions:
        return ClusterOptions(
            shards=args.shards,
            quick_calibration=args.quick,
            pin_cpus=not args.no_pin_cpus,
            # the sweep drives gossip_round() on its own decision-count
            # schedule; a background time-based pump would race it
            gossip_interval=None,
            gossip_loss_rate=args.gossip_loss_rate,
            gossip_seed=args.seed,
            checkpoint_every=1 << 30,
        )

    print(
        f"sweeping gossip intervals {intervals} (decisions between "
        f"rounds) over {len(offline)} decisions on {args.shards} "
        f"shard(s), believed pollution only..."
    )
    sweep = run_gossip_sweep(
        offline, intervals, options_factory, backend=args.backend
    )
    for entry in sweep:
        print(
            f"  every {entry['gossip_every']:>5} decisions: "
            f"agreement {entry['agreement']:.4f}, "
            f"recall {entry['recall']:.4f} "
            f"({entry['recalled']}/{entry['oracle_positives']} oracle "
            f"keeps), {entry['gossip_rounds']} round(s), "
            f"{entry['gossip_dropped']} dropped"
        )
    clean = all(not entry["errors"] for entry in sweep)
    repo_root = Path(__file__).resolve().parent.parent.parent
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else repo_root / "BENCH_cluster.json"
    )
    write_gossip_bench(
        json_out,
        sweep,
        shards=args.shards,
        backend=args.backend,
        recording_events=len(recording),
        extra={
            "quick": args.quick,
            "seed": args.seed,
            "gossip_loss_rate": args.gossip_loss_rate,
        },
    )
    print(f"written: {json_out}")
    from datetime import datetime, timezone

    from repro.serve import append_bench_trend

    trend_path = append_bench_trend(
        args.trend_out
        if args.trend_out is not None
        else repo_root / "results" / "bench_trend.jsonl",
        {
            "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "benchmark": "cluster-gossip",
            "backend": args.backend,
            "shards": args.shards,
            "quick": args.quick,
            "intervals": intervals,
            "agreement": [entry["agreement"] for entry in sweep],
            "recall": [entry["recall"] for entry in sweep],
        },
    )
    print(f"trend: {trend_path}")
    return 0 if clean else 1


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cluster import (
        ClusterRouter,
        ClusterSupervisor,
        run_cluster_load,
        spread_destinations,
        write_cluster_bench,
    )
    from repro.experiments.common import experiment_params, network_recording
    from repro.faults.crashes import CrashSchedule
    from repro.options import ClusterOptions
    from repro.serve import collect_offline_decisions

    recording = network_recording(seed=args.seed, quick=args.quick)
    params = experiment_params(quick=args.quick)
    print(
        f"collecting offline oracle decisions from {len(recording)} "
        f"events (limit {args.limit or 'none'})..."
    )
    offline = spread_destinations(
        collect_offline_decisions(recording, params, limit=args.limit)
    )
    if args.sweep_shards is not None:
        return _bench_cluster_sweep(args, recording, offline)
    if args.sweep_gossip is not None:
        return _bench_cluster_gossip(args, recording, offline)
    if len(offline) < 4:
        print(
            "error: the recording produced too few IFP decisions "
            f"({len(offline)}) for a crash schedule",
            file=sys.stderr,
        )
        return 2
    options = ClusterOptions(
        shards=args.shards,
        quick_calibration=args.quick,
        # checkpoint often: the whole point is recovering mid-load state
        checkpoint_every=8 if args.quick else 64,
        restart_backoff=0.05,
    )
    print(
        f"routing {len(offline)} decisions through {args.shards} shard(s) "
        f"({args.backend} backend) with {args.crashes} scheduled kill(s)..."
    )
    with ClusterSupervisor(options, backend=args.backend) as supervisor:
        with ClusterRouter.for_supervisor(supervisor) as router:
            # kill the shard that owns the traffic at each crash point,
            # so every kill disrupts in-flight routing
            crashes = CrashSchedule.seeded(
                args.crash_seed,
                args.shards,
                len(offline),
                crashes=args.crashes,
                shard_of=lambda index: router.shard_for(
                    str(offline[index].request["dest"])
                ),
            )
            result = run_cluster_load(
                supervisor, router, offline, crashes=crashes
            )
        status = supervisor.status()
    summary = result.summary()
    print(
        f"\n{summary['requests']} decisions in "
        f"{summary['elapsed_seconds']:.2f}s = "
        f"{summary['decisions_per_second']:.0f}/s under fault; "
        f"{result.degraded} degraded, {result.restarts} restart(s), "
        f"failover "
        + (
            ", ".join(f"{s:.2f}s" for s in result.failover_seconds)
            if result.failover_seconds
            else "n/a"
        )
    )
    print(
        f"post-recovery oracle agreement: {result.tally.agreement:.4f} "
        f"({result.tally.hits}/{result.tally.total} candidates)"
    )
    if result.matched:
        print(
            "parity: every non-degraded answer matched the single-process "
            "oracle, every degraded answer stayed in the killed shards' "
            "key ranges, and every degraded decision recovered"
        )
    else:
        print(
            f"CLUSTER FAILURE: {len(result.mismatches)} mismatch(es), "
            f"{result.errors} error(s), "
            f"{result.degraded_out_of_range} out-of-range degraded, "
            f"{result.unrecovered} unrecovered",
            file=sys.stderr,
        )
        for mismatch in result.mismatches[:3]:
            print(
                f"  request {mismatch.index} field {mismatch.field_name}: "
                f"expected {mismatch.expected!r}, got {mismatch.actual!r}",
                file=sys.stderr,
            )
    repo_root = Path(__file__).resolve().parent.parent.parent
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else repo_root / "BENCH_cluster.json"
    )
    write_cluster_bench(
        json_out,
        result,
        shards=args.shards,
        backend=args.backend,
        recording_events=len(recording),
        extra={
            "quick": args.quick,
            "seed": args.seed,
            "crash_seed": args.crash_seed,
            "scheduled_crashes": len(crashes),
            "supervisor": status,
        },
    )
    print(f"written: {json_out}")
    from datetime import datetime, timezone

    from repro.serve import append_bench_trend

    trend_path = append_bench_trend(
        args.trend_out
        if args.trend_out is not None
        else repo_root / "results" / "bench_trend.jsonl",
        {
            "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "benchmark": "cluster",
            "backend": args.backend,
            "shards": args.shards,
            "quick": args.quick,
            "decisions_per_second": result.decisions_per_second,
            "agreement": result.tally.agreement,
            "restarts": result.restarts,
            "matched": result.matched,
        },
    )
    print(f"trend: {trend_path}")
    return 0 if result.matched else 1


def _cmd_bench_adapt(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.control.bench import run_adapt_bench, write_adapt_bench

    report = run_adapt_bench(
        quick=args.quick,
        seed=args.seed,
        mode=args.mode,
        every=args.every,
        target=args.target,
    )
    print(
        f"workload drift ({report['recording_events']} events)  "
        f"mode {report['mode']}  every {report['every']}  "
        f"target {report['target_pollution']:.3g}"
    )
    for name in ("baseline", "fixed", "adaptive"):
        arm = report[name]
        print(
            f"{name:>8}: detected {arm['detected_bytes']:>6} B  "
            f"pollution mean {arm['mean_pollution_fraction']:.3g} "
            f"peak {arm['peak_pollution_fraction']:.3g}  "
            f"updates {arm['param_updates']}  "
            f"tau_scale {arm['tau_scale_final']:.3g}"
        )
    recall = report["recall"]
    wins = report["adaptive_wins"]
    print(
        f"recall fixed {recall['fixed']:.3f} adaptive "
        f"{recall['adaptive']:.3f}  decision flips "
        f"{report['decision_flips']}"
    )
    print(
        f"adaptive wins: pollution={wins['pollution']} "
        f"recall={wins['recall']} any={wins['any']}"
    )
    repo_root = Path(__file__).resolve().parent.parent.parent
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else repo_root / "BENCH_adapt.json"
    )
    write_adapt_bench(json_out, report)
    print(f"written: {json_out}")
    from datetime import datetime, timezone

    from repro.serve import append_bench_trend

    trend_path = append_bench_trend(
        args.trend_out
        if args.trend_out is not None
        else repo_root / "results" / "bench_trend.jsonl",
        {
            "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "benchmark": "adapt",
            "mode": report["mode"],
            "quick": args.quick,
            "seed": args.seed,
            "mean_pollution_fixed": report["fixed"][
                "mean_pollution_fraction"
            ],
            "mean_pollution_adaptive": report["adaptive"][
                "mean_pollution_fraction"
            ],
            "recall_fixed": recall["fixed"],
            "recall_adaptive": recall["adaptive"],
            "decision_flips": report["decision_flips"],
            "adaptive_wins": wins["any"],
        },
    )
    print(f"trend: {trend_path}")
    return 0 if wins["any"] else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        count=args.count,
        clear=False if args.no_clear else None,
    )


@contextlib.contextmanager
def _server_subprocess(args: argparse.Namespace):
    """A ``mitos-repro serve`` child on an ephemeral port.

    Yields ``(host, port)`` once the child prints its ``listening on``
    line; sends SIGTERM on exit (exercising the graceful-drain path) and
    escalates to kill if the child ignores it.
    """
    import signal
    import subprocess

    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--shards", str(args.shards),
        "--batch-deadline-us", str(args.batch_deadline_us),
        # the bench child is a dedicated serving process: freeze warmup
        # allocations so GC pauses don't pollute the measurement
        "--gc-freeze",
    ]
    if args.quick:
        command.append("--quick-calibration")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        host = port = None
        assert process.stdout is not None
        for line in process.stdout:
            if line.startswith("listening on "):
                host, _, port_text = line.split()[-1].rpartition(":")
                port = int(port_text)
                break
        if port is None:
            raise RuntimeError(
                "server subprocess exited before binding "
                f"(exit code {process.wait()})"
            )
        yield host, port
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait()


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.common import experiment_params, network_recording
    from repro.options import ServeOptions
    from repro.serve import (
        ServerThread,
        append_bench_trend,
        collect_offline_decisions,
        run_load,
        run_load_processes,
        write_bench_report,
    )

    profile = None
    in_process = args.in_process
    if args.profile:
        import cProfile

        profile = cProfile.Profile()
        if not in_process:
            print("--profile runs the server in-process")
            in_process = True
    recording = network_recording(seed=args.seed, quick=args.quick)
    params = experiment_params(quick=args.quick)
    print(
        f"collecting offline decisions from {len(recording)} events "
        f"(limit {args.limit or 'none'})..."
    )
    offline = collect_offline_decisions(recording, params, limit=args.limit)
    if not offline:
        print("error: the recording produced no IFP decisions", file=sys.stderr)
        return 2
    formats = (
        ("binary", "ndjson")
        if args.wire_format == "both"
        else (args.wire_format,)
    )
    connections = args.connections
    multiprocess = connections > 1 and not in_process

    def drive(host: str, port: int, window: int, wire_format: str):
        if multiprocess:
            # one worker process per connection: round-robin slices, a
            # synchronized start, per-worker parity preserved
            slices = [
                [offline[i] for i in range(start, len(offline), connections)]
                for start in range(connections)
            ]
            return run_load_processes(
                [(host, port, part) for part in slices],
                wire_format=wire_format,
                window=window,
                open_loop=args.open_loop,
            )
        return (
            run_load(
                host,
                port,
                offline,
                connections=connections,
                window=(
                    max(window, len(offline)) if args.open_loop else window
                ),
                wire_format=wire_format,
            ),
            None,
        )

    results = {}
    windows = {}
    per_worker_reports: dict = {}
    for wire_format in formats:
        window = (
            args.binary_window if wire_format == "binary" else args.window
        )
        windows[wire_format] = window
        mode = "open-loop" if args.open_loop else f"window {window}"
        print(
            f"\n[{wire_format}] replaying {len(offline)} decisions against "
            f"{args.shards} shard(s) ({connections} connection(s), "
            f"{mode}, best of {args.repeat})..."
        )
        # fresh server per repeat and per format: identical start state,
        # so every measurement (and its parity check) is independent
        result = per_worker = None
        for _ in range(max(1, args.repeat)):
            if in_process:
                options = ServeOptions(
                    port=0, shards=args.shards,
                    quick_calibration=args.quick,
                    batch_deadline_us=args.batch_deadline_us,
                )
                with ServerThread(options, profile=profile) as server:
                    attempt, workers = drive(
                        server.host, server.port, window, wire_format
                    )
            else:
                with _server_subprocess(args) as (host, port):
                    attempt, workers = drive(host, port, window, wire_format)
            if (
                result is None
                or not result.matched
                or (
                    attempt.matched
                    and attempt.decisions_per_second
                    > result.decisions_per_second
                )
            ):
                result = attempt
                per_worker = workers
        results[wire_format] = result
        per_worker_reports[wire_format] = per_worker
        summary = result.summary()
        print(
            f"[{wire_format}] {summary['requests']} decisions in "
            f"{summary['elapsed_seconds']:.2f}s = "
            f"{summary['decisions_per_second']:.0f}/s; "
            f"p50 {result.latency_percentile(50) / 1000:.2f}ms, "
            f"p99 {result.latency_percentile(99) / 1000:.2f}ms"
        )
        if per_worker:
            for report in per_worker:
                print(
                    f"[{wire_format}]   worker {report['worker']}: "
                    f"{report['requests']} reqs, "
                    f"{report['decisions_per_second']:.0f}/s, "
                    + (
                        "parity ok"
                        if report["matched"]
                        else f"{report['mismatches']} MISMATCH(ES)"
                    )
                )
        if result.matched:
            print(
                f"[{wire_format}] parity: every served decision matched "
                "the offline replay"
            )
        else:
            print(
                f"[{wire_format}] PARITY FAILURE: "
                f"{len(result.mismatches)} mismatch(es), "
                f"{result.errors} error(s)",
                file=sys.stderr,
            )
            for mismatch in result.mismatches[:3]:
                print(
                    f"  request {mismatch.index} field "
                    f"{mismatch.field_name}: expected "
                    f"{mismatch.expected!r}, got {mismatch.actual!r}",
                    file=sys.stderr,
                )
    repo_root = Path(__file__).resolve().parent.parent.parent
    if profile is not None:
        import io
        import pstats

        results_dir = repo_root / "results"
        results_dir.mkdir(exist_ok=True)
        pstats_path = results_dir / "serve_profile.pstats"
        profile.dump_stats(pstats_path)
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream).sort_stats(
            "cumulative"
        ).print_stats(25)
        table_path = results_dir / "serve_profile_top25.txt"
        table_path.write_text(stream.getvalue(), encoding="utf-8")
        print(f"profile: {pstats_path}\nprofile table: {table_path}")
    # the primary (top-level) result is the fastest configured path, so
    # the BENCH_serve.json trendline tracks what the server can do
    primary_format = "binary" if "binary" in results else formats[0]
    primary = results[primary_format]
    extra: dict = {
        "quick": args.quick,
        "seed": args.seed,
        "wire_format": primary_format,
        "open_loop": args.open_loop,
        "repeat": args.repeat,
        "formats": {
            wire_format: dict(
                result.summary(), window=windows[wire_format]
            )
            for wire_format, result in results.items()
        },
    }
    if per_worker_reports.get(primary_format):
        extra["workers"] = per_worker_reports[primary_format]
    if len(results) > 1 and results["ndjson"].decisions_per_second > 0:
        extra["binary_speedup"] = (
            results["binary"].decisions_per_second
            / results["ndjson"].decisions_per_second
        )
        print(f"\nbinary speedup: {extra['binary_speedup']:.1f}x")
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else repo_root / "BENCH_serve.json"
    )
    write_bench_report(
        json_out,
        primary,
        shards=args.shards,
        connections=args.connections,
        window=windows[primary_format],
        recording_events=len(recording),
        extra=extra,
    )
    print(f"written: {json_out}")
    from datetime import datetime, timezone

    trend_path = append_bench_trend(
        args.trend_out
        if args.trend_out is not None
        else repo_root / "results" / "bench_trend.jsonl",
        {
            "at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "benchmark": "serve",
            "wire_format": primary_format,
            "shards": args.shards,
            "connections": args.connections,
            "window": windows[primary_format],
            "open_loop": args.open_loop,
            "quick": args.quick,
            "decisions_per_second": primary.decisions_per_second,
            "p50_us": primary.latency_percentile(50),
            "p99_us": primary.latency_percentile(99),
            "matched": primary.matched,
        },
    )
    print(f"trend: {trend_path}")
    return 0 if all(r.matched for r in results.values()) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.benchreport import (
        BENCH_JSON_NAME,
        measure_engines,
        render_hotpath_table,
        render_throughput_table,
        write_bench_artifacts,
    )
    from repro.experiments.common import experiment_params, network_recording

    if args.jobs != 1:
        print(
            "error: bench requires --jobs 1 -- it measures single-process "
            "wall clock, and pool workers would contend with the engines "
            "under test (use --rounds to tighten the measurement instead)",
            file=sys.stderr,
        )
        return 2
    repo_root = Path(__file__).resolve().parent.parent.parent
    results_dir = (
        Path(args.results_dir)
        if args.results_dir is not None
        else repo_root / "results"
    )
    json_out = (
        Path(args.json_out)
        if args.json_out is not None
        else (
            repo_root / BENCH_JSON_NAME
            if args.results_dir is None
            else results_dir / BENCH_JSON_NAME
        )
    )
    recording = network_recording(seed=args.seed, quick=args.quick)
    params = experiment_params()
    print(
        f"benchmarking {len(recording)} events, best of {args.rounds} "
        f"round(s) per engine..."
    )
    report = measure_engines(
        recording,
        params,
        rounds=args.rounds,
        include_reference=not args.no_reference,
    )
    print()
    print(render_hotpath_table(report))
    print()
    print(render_throughput_table(report))
    written = write_bench_artifacts(report, results_dir, json_out)
    print()
    for path in written:
        print(f"written: {path}")
    return 0


def _cmd_tracelog(args: argparse.Namespace) -> int:
    from repro.analysis.decision_trace import (
        format_decision_trace_summary,
        summarize_decision_trace_file,
    )

    summary = summarize_decision_trace_file(args.trace, windows=args.windows)
    print(
        format_decision_trace_summary(
            summary, title=f"decision trace {args.trace}", top_k=args.top
        )
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.trace_stats import (
        format_trace_summary,
        summarize_recording,
    )
    from repro.replay.record import Recording

    recording = Recording.load(args.trace)
    print(format_trace_summary(summarize_recording(recording, top_k=args.top)))
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    from repro.analysis.lineage import LineageGraph
    from repro.replay.record import Recording

    recording = Recording.load(args.trace)
    lineage = LineageGraph.from_recording(
        recording, include_indirect=not args.direct_only
    )
    hits = lineage.sources_of(args.location)
    if not hits:
        print(f"{args.location}: no taint sources reach this location")
        return 0
    print(f"{args.location}: reached by {len(hits)} source(s)")
    for hit in hits:
        print(
            f"  {hit.tag.type}#{hit.tag.index}  "
            f"inserted at tick {hit.insert_tick}, {hit.hops} hops away"
        )
    if args.tag is not None:
        path = lineage.explain(args.location, args.tag)
        if not path:
            print(f"{args.tag} never reaches {args.location}")
        else:
            print(f"path of {args.tag}:")
            for location, version in path:
                print(f"  {location} (v{version})")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    configure_logging(verbose=args.verbose)
    command = args.command
    if command in EXPERIMENTS or command == "all":
        names = sorted(EXPERIMENTS) if command == "all" else [command]
        for name in names:
            print(run_one(name, args.quick, args.seed, jobs=args.jobs))
            print()
        return 0
    handlers = {
        "record": _cmd_record,
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "top": _cmd_top,
        "bench-serve": _cmd_bench_serve,
        "bench-cluster": _cmd_bench_cluster,
        "bench-adapt": _cmd_bench_adapt,
        "bench": _cmd_bench,
        "inspect": _cmd_inspect,
        "lineage": _cmd_lineage,
        "tracelog": _cmd_tracelog,
    }
    return handlers[command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
