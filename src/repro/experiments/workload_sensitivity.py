"""The results the paper omitted: tau sensitivity across all workloads.

Section V-B closes with "we also ran CPU and file-system benchmarks, and
we noticed similar behaviors.  We skip the results for those benchmarks
due to space limitations."  We have no space limitations: this experiment
runs the Fig. 7 tau sweep over all three PassMark-like workloads and
checks that the *same qualitative behaviour* -- propagation rate
monotonically increasing as tau drops -- holds on each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.common import experiment_params, run_sweep
from repro.faros import FarosSystem, mitos_config
from repro.replay.record import Recording
from repro.workloads.cpu import CpuBenchmark
from repro.workloads.filesystem import FileSystemBenchmark
from repro.workloads.network import NetworkBenchmark

#: the Fig. 7 tau points, applied to every workload
TAUS = (1.0, 1e-1, 1e-2)

WORKLOAD_NAMES = ("network", "cpu", "filesystem")


@lru_cache(maxsize=8)
def _record(name: str, seed: int, quick: bool) -> Recording:
    if name == "network":
        if quick:
            workload = NetworkBenchmark(
                seed=seed, connections=3, bytes_per_connection=96, rounds=1,
                config_files=1, bytes_per_file=48, heavy_hitter=False,
            )
        else:
            workload = NetworkBenchmark(seed=seed)
    elif name == "cpu":
        workload = CpuBenchmark(
            seed=seed,
            processes=2 if quick else 4,
            bytes_per_process=64 if quick else 192,
            rounds=1 if quick else 3,
        )
    else:
        workload = FileSystemBenchmark(
            seed=seed,
            files=2 if quick else 5,
            bytes_per_file=48 if quick else 160,
            rounds=1 if quick else 4,
        )
    return workload.record()


@dataclass
class WorkloadSweep:
    """Propagation rates per tau for one workload."""

    workload: str
    rates: Dict[float, float] = field(default_factory=dict)
    decisions: Dict[float, int] = field(default_factory=dict)

    def monotone_in_tau(self) -> bool:
        """Rate must not decrease as tau drops ("similar behaviors")."""
        ordered = [self.rates[tau] for tau in sorted(self.rates, reverse=True)]
        return all(a <= b + 1e-12 for a, b in zip(ordered, ordered[1:]))


@dataclass
class SensitivityResult:
    sweeps: Dict[str, WorkloadSweep] = field(default_factory=dict)

    def all_workloads_behave_similarly(self) -> bool:
        return all(sweep.monotone_in_tau() for sweep in self.sweeps.values())


def _point_job(
    point: Tuple[str, float], seed: int, quick: bool
) -> Tuple[str, float, float, int]:
    """One (workload, tau) replay; the recording is rebuilt (cached)
    deterministically from the seed inside whichever process runs this."""
    name, tau = point
    recording = _record(name, seed, quick)
    params = experiment_params(quick=quick, tau=tau)
    system = FarosSystem(mitos_config(params))
    system.replay(recording)
    stats = system.tracker.stats
    return name, tau, stats.ifp_propagation_rate, stats.ifp_candidates


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> SensitivityResult:
    points = [(name, tau) for name in WORKLOAD_NAMES for tau in TAUS]
    result = SensitivityResult()
    for name, tau, rate, decisions in run_sweep(
        _point_job, points, jobs, seed, quick
    ):
        sweep = result.sweeps.get(name)
        if sweep is None:
            sweep = result.sweeps[name] = WorkloadSweep(workload=name)
        sweep.rates[tau] = rate
        sweep.decisions[tau] = decisions
    return result


def render(result: SensitivityResult) -> str:
    rows = []
    for name, sweep in result.sweeps.items():
        for tau in sorted(sweep.rates, reverse=True):
            rows.append(
                [name, f"{tau:g}", sweep.decisions[tau], sweep.rates[tau]]
            )
    table = format_table(
        ["workload", "tau", "IFP decisions", "propagation rate"],
        rows,
        title=(
            "== Omitted result regenerated: tau sensitivity across "
            "workloads =="
        ),
    )
    verdict = (
        "similar behaviors across workloads: "
        + ("YES" if result.all_workloads_behave_similarly() else "NO")
    )
    return f"{table}\n{verdict}"


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
