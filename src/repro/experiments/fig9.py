"""Fig. 9: tag-type importance swept through u_netflow.

The paper sweeps the undertainting weight of the netflow type (others
fixed at 1) and plots, per value, the percentage of netflow tags
propagated at the end of the replay, normalized by the value at
``u_netflow = 100``.  Boosting one type's importance accelerates its
propagation and -- because the boost raises global pollution -- mildly
decelerates the other types.

Expected shape: the normalized netflow series is monotonically
non-decreasing in u_netflow; competing types' propagated counts do not
increase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.dift.tags import TagTypes
from repro.experiments.common import (
    experiment_params,
    network_recording,
    replay_config,
    run_sweep,
)
from repro.faros import mitos_config

#: the u_netflow sweep points
FIG9_WEIGHTS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0)


@dataclass
class Fig9Run:
    u_netflow: float
    netflow_entries: int
    other_entries: Dict[str, int]
    netflow_ifp_rate: float


@dataclass
class Fig9Result:
    runs: Dict[float, Fig9Run] = field(default_factory=dict)

    def normalized_netflow_series(self) -> List[float]:
        """Netflow propagated entries normalized by the u=100 value."""
        weights = sorted(self.runs)
        reference = self.runs[max(weights)].netflow_entries
        if reference == 0:
            return [0.0 for _ in weights]
        return [self.runs[w].netflow_entries / reference for w in weights]

    def netflow_monotone_nondecreasing(self) -> bool:
        series = [self.runs[w].netflow_entries for w in sorted(self.runs)]
        return all(a <= b for a, b in zip(series, series[1:]))

    def others_never_boosted(self) -> bool:
        """Competing types must not gain from the netflow boost."""
        weights = sorted(self.runs)
        baseline = self.runs[weights[0]].other_entries
        top = self.runs[weights[-1]].other_entries
        return all(
            top.get(tag_type, 0) <= count
            for tag_type, count in baseline.items()
        )


def _weight_job(weight: float, seed: int, quick: bool) -> Fig9Run:
    """One replay at one u_netflow (pure function of its arguments)."""
    recording = network_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick, u={TagTypes.NETFLOW: weight})
    system = replay_config(mitos_config(params, log_timeline=True), recording)
    counter = system.tracker.counter
    per_type = {
        tag_type: counter.type_total(tag_type)
        for tag_type in (TagTypes.NETFLOW, TagTypes.FILE)
    }
    timeline = system.timeline
    rate_by_type = (
        timeline.rate_by_type() if timeline is not None else {}
    )
    return Fig9Run(
        u_netflow=weight,
        netflow_entries=per_type[TagTypes.NETFLOW],
        other_entries={
            k: v for k, v in per_type.items() if k != TagTypes.NETFLOW
        },
        netflow_ifp_rate=rate_by_type.get(TagTypes.NETFLOW, 0.0),
    )


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> Fig9Result:
    result = Fig9Result()
    for run_ in run_sweep(_weight_job, FIG9_WEIGHTS, jobs, seed, quick):
        result.runs[run_.u_netflow] = run_
    return result


def render(result: Fig9Result) -> str:
    weights = sorted(result.runs)
    normalized = result.normalized_netflow_series()
    rows = []
    for weight, norm in zip(weights, normalized):
        run_ = result.runs[weight]
        other = sum(run_.other_entries.values())
        rows.append(
            [weight, run_.netflow_entries, norm, other, run_.netflow_ifp_rate]
        )
    table = format_table(
        [
            "u_netflow",
            "netflow entries",
            "normalized (u=100)",
            "other-type entries",
            "netflow IFP rate",
        ],
        rows,
        title="== Fig. 9: u_netflow vs propagated netflow tags ==",
    )
    from repro.analysis.plot import ascii_plot

    plot = ascii_plot(
        weights,
        normalized,
        title="normalized netflow propagation vs u_netflow",
        y_label="fraction of u=100 value",
        x_label="u_netflow",
        height=10,
    )
    note = (
        "expected shape: netflow monotonically boosted; competing types "
        "mildly decelerated"
    )
    return f"{table}\n\n{plot}\n\n{note}"


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
