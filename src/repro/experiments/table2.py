"""Table II: FAROS vs MITOS on the in-memory-only attack.

Six Metasploit-style shells are recorded and replayed under two systems:

* **FAROS** -- "propagating aggressively all direct flows and no indirect
  flows",
* **MITOS** -- "propagating all flows (direct and indirect) at the MITOS
  level" (the generalized Section V-C mode).

Reported, averaged over the six shells, with the paper's values alongside:

* time  -- the paper reports replay seconds (837 vs 509, 1.65x); we report
  both measured wall seconds and propagation operations (the
  hardware-independent work proxy),
* space -- shadow-memory footprint (2.21 vs 1.99 MB, 1.11x),
* detected bytes -- bytes flagged by the netflow+export-table confluence
  (543 vs 1449, 2.67x).

Expected shape: MITOS improves *all three simultaneously*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.reporting import format_table
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.experiments.common import experiment_params, run_sweep
from repro.workloads.attack import ATTACK_VARIANTS, InMemoryAttack

#: the paper's Table II numbers, for side-by-side reporting
PAPER_TABLE2 = {
    "faros": {"time_s": 837.0, "space_mb": 2.21, "detected_bytes": 543},
    "mitos": {"time_s": 509.0, "space_mb": 1.99, "detected_bytes": 1449},
}


@dataclass
class Table2Row:
    """Averaged measurements for one system."""

    label: str
    wall_seconds: float
    propagation_ops: float
    footprint_bytes: float
    detected_bytes: float
    per_variant_detected: Dict[str, int] = field(default_factory=dict)


@dataclass
class Table2Result:
    faros: Table2Row
    mitos: Table2Row

    @property
    def time_improvement(self) -> float:
        """Work-proxy improvement factor (paper: 1.65x)."""
        if self.mitos.propagation_ops == 0:
            return float("inf")
        return self.faros.propagation_ops / self.mitos.propagation_ops

    @property
    def space_improvement(self) -> float:
        """Footprint improvement factor (paper: 1.11x)."""
        if self.mitos.footprint_bytes == 0:
            return float("inf")
        return self.faros.footprint_bytes / self.mitos.footprint_bytes

    @property
    def detection_improvement(self) -> float:
        """Detected-bytes improvement factor (paper: 2.67x)."""
        if self.faros.detected_bytes == 0:
            return float("inf")
        return self.mitos.detected_bytes / self.faros.detected_bytes

    def simultaneous_improvement(self) -> bool:
        """The headline claim: all three metrics improve at once."""
        return (
            self.time_improvement > 1.0
            and self.space_improvement > 1.0
            and self.detection_improvement > 1.0
        )


def _attack_kwargs(quick: bool) -> dict:
    if quick:
        return dict(
            payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4
        )
    return {}


def _experiment_params(quick: bool):
    # quick mode shrinks the attack, so the decision boundary is anchored
    # between the quick payload copy count (~250) and the quick noise
    # saturation (~1000)
    if quick:
        return experiment_params(
            quick=True, crossover_copies=400.0, pollution_fraction=0.003
        )
    return experiment_params(tau=1.0)


def _variant_job(
    variant: str, seed: int, quick: bool
) -> Dict[str, Dict[str, float]]:
    """Record one shell variant and replay it under both systems.

    Both replays ride in one job because the recording -- the expensive
    shared input -- is rebuilt once per job.
    """
    params = _experiment_params(quick)
    configs = {
        "faros": stock_faros_config(params),
        "mitos": mitos_config(params, all_flows=True),
    }
    recording = InMemoryAttack(
        variant=variant, seed=seed, **_attack_kwargs(quick)
    ).record()
    measured: Dict[str, Dict[str, float]] = {}
    for label, config in configs.items():
        system = FarosSystem(config)
        run_metrics = system.replay(recording).metrics
        measured[label] = {
            "wall": run_metrics.wall_seconds,
            "ops": run_metrics.propagation_ops,
            "bytes": run_metrics.footprint_bytes,
            "detected": run_metrics.detected_bytes,
        }
    return measured


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> Table2Result:
    labels = ("faros", "mitos")
    sums = {
        label: {"wall": 0.0, "ops": 0.0, "bytes": 0.0, "detected": 0.0}
        for label in labels
    }
    per_variant: Dict[str, Dict[str, int]] = {label: {} for label in labels}
    measurements = run_sweep(_variant_job, ATTACK_VARIANTS, jobs, seed, quick)
    for variant, measured in zip(ATTACK_VARIANTS, measurements):
        for label in labels:
            values = measured[label]
            sums[label]["wall"] += values["wall"]
            sums[label]["ops"] += values["ops"]
            sums[label]["bytes"] += values["bytes"]
            sums[label]["detected"] += values["detected"]
            per_variant[label][variant] = int(values["detected"])
    n = len(ATTACK_VARIANTS)
    rows = {
        label: Table2Row(
            label=label,
            wall_seconds=values["wall"] / n,
            propagation_ops=values["ops"] / n,
            footprint_bytes=values["bytes"] / n,
            detected_bytes=values["detected"] / n,
            per_variant_detected=per_variant[label],
        )
        for label, values in sums.items()
    }
    return Table2Result(faros=rows["faros"], mitos=rows["mitos"])


def render(result: Table2Result) -> str:
    rows = []
    for row, paper in (
        (result.faros, PAPER_TABLE2["faros"]),
        (result.mitos, PAPER_TABLE2["mitos"]),
    ):
        rows.append(
            [
                row.label,
                row.propagation_ops,
                row.footprint_bytes,
                row.detected_bytes,
                paper["time_s"],
                paper["space_mb"],
                paper["detected_bytes"],
            ]
        )
    table = format_table(
        [
            "system",
            "ops (ours)",
            "space B (ours)",
            "detected (ours)",
            "paper time s",
            "paper space MB",
            "paper detected",
        ],
        rows,
        title="== Table II: in-memory attack, averaged over 6 shells ==",
    )
    factors = format_table(
        ["metric", "ours", "paper"],
        [
            ["time improvement", f"{result.time_improvement:.2f}x", "1.65x"],
            ["space improvement", f"{result.space_improvement:.2f}x", "1.11x"],
            [
                "detection improvement",
                f"{result.detection_improvement:.2f}x",
                "2.67x",
            ],
        ],
    )
    simultaneous = (
        "simultaneous improvement: "
        + ("YES" if result.simultaneous_improvement() else "NO")
    )
    return f"{table}\n\n{factors}\n{simultaneous}"


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
