"""Fig. 8: alpha vs fairness / tag balancing.

Six MITOS runs with ``alpha in {0.5, 1, 1.5, 2, 3, 4}`` over the network
benchmark.  Fairness is measured as the paper does -- "based on the mean
square error difference between the number of copies of different tags"
-- plus Jain's index and entropy as corroborating views.

Expected shape: increasing alpha penalizes over-propagated tags harder,
pulling copy counts together; the paper reports balancing (and entropy)
improving "up to 2x" across the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.core.fairness import (
    copy_count_mse,
    jain_index,
    normalized_entropy,
)
from repro.experiments.common import (
    experiment_params,
    network_recording,
    replay_config,
    run_sweep,
)
from repro.faros import mitos_config

#: the six alpha points of Fig. 8
FIG8_ALPHAS = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)


@dataclass
class Fig8Run:
    alpha: float
    copy_counts: List[int]
    mse: float
    jain: float
    entropy: float
    propagation_rate: float


@dataclass
class Fig8Result:
    runs: Dict[float, Fig8Run] = field(default_factory=dict)

    @property
    def mse_by_alpha(self) -> Dict[float, float]:
        return {alpha: run.mse for alpha, run in self.runs.items()}

    def balancing_improvement(self) -> float:
        """Best-over-worst MSE ratio across the sweep (paper: up to 2x)."""
        values = [run.mse for run in self.runs.values() if run.mse > 0]
        if not values:
            return 1.0
        return max(values) / min(values)

    def broadly_improves_with_alpha(self) -> bool:
        """MSE at the largest alpha below MSE at the smallest."""
        alphas = sorted(self.runs)
        return self.runs[alphas[-1]].mse <= self.runs[alphas[0]].mse


def _alpha_job(alpha: float, seed: int, quick: bool) -> Fig8Run:
    """One replay at one alpha (pure function of its arguments)."""
    recording = network_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick, alpha=alpha)
    system = replay_config(mitos_config(params), recording)
    copy_counts = sorted(system.tracker.counter.snapshot().values())
    stats = system.tracker.stats
    return Fig8Run(
        alpha=alpha,
        copy_counts=copy_counts,
        mse=copy_count_mse(copy_counts),
        jain=jain_index(copy_counts),
        entropy=normalized_entropy(copy_counts),
        propagation_rate=stats.ifp_propagation_rate,
    )


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> Fig8Result:
    result = Fig8Result()
    for run_ in run_sweep(_alpha_job, FIG8_ALPHAS, jobs, seed, quick):
        result.runs[run_.alpha] = run_
    return result


def render(result: Fig8Result) -> str:
    rows = []
    for alpha in sorted(result.runs):
        run_ = result.runs[alpha]
        rows.append(
            [
                alpha,
                run_.mse,
                run_.jain,
                run_.entropy,
                run_.propagation_rate,
            ]
        )
    table = format_table(
        ["alpha", "copy-count MSE", "Jain index", "norm. entropy", "IFP rate"],
        rows,
        title="== Fig. 8: alpha vs fairness / tag balancing ==",
    )
    from repro.analysis.plot import ascii_plot

    alphas = sorted(result.runs)
    plot = ascii_plot(
        alphas,
        [result.runs[a].mse for a in alphas],
        title="copy-count MSE vs alpha (lower = fairer)",
        y_label="MSE",
        x_label="alpha",
        height=10,
    )
    improvement = result.balancing_improvement()
    note = (
        f"balancing improvement across sweep: {improvement:.2f}x "
        "(paper: up to 2x)"
    )
    return f"{table}\n\n{plot}\n\n{note}"


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
