"""One module per paper artifact: Fig. 3, Fig. 7, Fig. 8, Fig. 9, Table II.

Every module exposes ``run(quick=False, seed=0) -> <Result>`` and
``render(result) -> str``; the benchmark harness under ``benchmarks/``
wraps these, and ``python -m repro.cli <experiment>`` drives them from the
command line.
"""

from repro.experiments import (
    ablations,
    fault_sweep,
    fig3,
    fig7,
    fig8,
    fig9,
    table2,
    workload_sensitivity,
)

__all__ = [
    "fig3",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "ablations",
    "workload_sensitivity",
    "fault_sweep",
]
