"""Fault sweep: how gracefully the stack degrades as faults ramp up.

Robustness companion to Table II.  One seeded
:class:`~repro.faults.FaultInjector` campaign per fault rate measures:

* **detection recall** -- the in-memory attack is replayed through a
  supervised MITOS system while the injector drops/duplicates/corrupts/
  reorders events and throws transient plugin faults; recall is detected
  bytes relative to the fault-free baseline,
* **oracle agreement** -- the network benchmark is sharded across a
  4-node cluster while the injector loses gossip messages and crashes
  nodes; agreement is the fraction of per-candidate IFP decisions that
  match an exact-pollution oracle.

The useful property is *graceful* degradation: both columns should fall
smoothly with the fault rate, not collapse at the first injected fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.analysis.reporting import format_table
from repro.distributed.cluster import run_sharded
from repro.experiments.common import experiment_params, network_recording
from repro.faros import FarosSystem, mitos_config
from repro.faults import FaultConfig, FaultInjector, Resilience
from repro.parallel import Job, run_jobs
from repro.replay.record import Recording
from repro.replay.supervisor import PluginSupervisor
from repro.workloads.attack import InMemoryAttack


@dataclass
class FaultSweepRow:
    """Robustness metrics at one fault rate."""

    fault_rate: float
    detected_bytes: int
    detection_recall: float
    oracle_agreement: float
    faults_injected: int
    recoveries: int
    skipped_events: int
    messages_lost: int
    node_restarts: int


@dataclass
class FaultSweepResult:
    baseline_detected: int
    rows: List[FaultSweepRow]


@lru_cache(maxsize=4)
def _attack_recording(seed: int, quick: bool) -> Recording:
    kwargs = (
        dict(payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4)
        if quick
        else {}
    )
    workload = InMemoryAttack(variant="reverse_tcp", seed=seed, **kwargs)
    return workload.record()


def _detection_run(
    recording: Recording, rate: float, seed: int, quick: bool
) -> Tuple[int, FaultInjector, PluginSupervisor]:
    """Replay the attack under injected faults; return detected bytes."""
    config = mitos_config(experiment_params(quick=quick))
    resilience = Resilience.create(
        fault_rate=rate,
        fault_seed=seed,
        supervisor_policy="skip-event",
    )
    system = FarosSystem(config, resilience=resilience)
    system.replay(recording)
    detected = system.detector.detected_bytes if system.detector else 0
    injector = resilience.injector or FaultInjector(FaultConfig(seed=seed))
    supervisor = resilience.supervisor or PluginSupervisor()
    return detected, injector, supervisor


def _baseline_job(seed: int, quick: bool) -> int:
    """Fault-free detected bytes (the recall denominator)."""
    attack = _attack_recording(seed, quick)
    detected, _, _ = _detection_run(attack, 0.0, seed, quick)
    return detected


def _rate_job(rate: float, seed: int, quick: bool) -> FaultSweepRow:
    """One fault-rate point; ``detection_recall`` is filled in by the
    parent once the baseline job's result is known."""
    attack = _attack_recording(seed, quick)
    network = network_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick)
    detected, injector, supervisor = _detection_run(
        attack, rate, seed, quick
    )
    cluster_injector = (
        FaultInjector(FaultConfig.uniform(rate, seed=seed))
        if rate > 0.0
        else None
    )
    cluster = run_sharded(
        network,
        params,
        n_nodes=4,
        gossip_interval=50,
        seed=seed,
        gossip_retries=1,
        injector=cluster_injector,
    )
    return FaultSweepRow(
        fault_rate=rate,
        detected_bytes=detected,
        detection_recall=0.0,
        oracle_agreement=cluster.oracle_agreement,
        faults_injected=injector.stats.total,
        recoveries=supervisor.stats.recoveries,
        skipped_events=supervisor.stats.skipped_events,
        messages_lost=cluster.messages_lost,
        node_restarts=cluster.node_restarts,
    )


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> FaultSweepResult:
    rates = (
        (0.0, 0.05, 0.2)
        if quick
        else (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
    )
    results = run_jobs(
        [Job(_baseline_job, (seed, quick))]
        + [Job(_rate_job, (rate, seed, quick)) for rate in rates],
        workers=jobs,
    )
    baseline_detected: int = results[0]
    rows: List[FaultSweepRow] = results[1:]
    for row in rows:
        row.detection_recall = (
            row.detected_bytes / baseline_detected if baseline_detected else 1.0
        )
    return FaultSweepResult(baseline_detected=baseline_detected, rows=rows)


def render(result: FaultSweepResult) -> str:
    table = format_table(
        [
            "fault_rate",
            "detected_bytes",
            "recall",
            "oracle_agreement",
            "faults",
            "recoveries",
            "skipped",
            "msgs_lost",
            "restarts",
        ],
        [
            [
                row.fault_rate,
                row.detected_bytes,
                row.detection_recall,
                row.oracle_agreement,
                row.faults_injected,
                row.recoveries,
                row.skipped_events,
                row.messages_lost,
                row.node_restarts,
            ]
            for row in result.rows
        ],
        title=(
            "fault sweep: detection recall and distributed oracle agreement "
            f"(baseline detected bytes = {result.baseline_detected})"
        ),
    )
    return table
