"""Fig. 3: the shapes of the under- and over-tainting cost functions.

Fig. 3(a) plots the alpha-fair undertainting term ``n**(1-alpha)/(alpha-1)``
for several alpha values over the copy count ``n``; Fig. 3(b) plots the
beta-steep overtainting penalty ``(P/N_R)**beta`` over the pollution
fraction.  Both are analytic -- no workload involved -- so the
reproduction regenerates the exact series and checks the properties the
paper states: (a) is monotonically decreasing with negative gradient and
increasing steepness in alpha; (b) is monotonically increasing, convex,
and steeper for larger beta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_series
from repro.core.costs import cost_series, over_cost_series

#: alpha values plotted in Fig. 3(a)
FIG3A_ALPHAS = (0.5, 1.0, 1.5, 2.0, 4.0)
#: beta values plotted in Fig. 3(b)
FIG3B_BETAS = (2.0, 3.0, 4.0)


@dataclass
class Fig3Result:
    """Regenerated series for both panels."""

    copies_grid: List[float] = field(default_factory=list)
    under_series: Dict[float, List[float]] = field(default_factory=dict)
    fraction_grid: List[float] = field(default_factory=list)
    over_series: Dict[float, List[float]] = field(default_factory=dict)

    def under_is_decreasing(self, alpha: float) -> bool:
        series = self.under_series[alpha]
        return all(a >= b for a, b in zip(series, series[1:]))

    def over_is_increasing(self, beta: float) -> bool:
        series = self.over_series[beta]
        return all(a <= b for a, b in zip(series, series[1:]))


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> Fig3Result:
    """Regenerate both panels (``quick`` shrinks the grids).

    ``jobs`` is accepted for CLI uniformity but unused: both panels are
    analytic series, cheaper than any fan-out.
    """
    points = 20 if quick else 100
    copies_grid = [1.0 + i for i in range(points)]
    fraction_grid = [i / points for i in range(points + 1)]
    result = Fig3Result(copies_grid=copies_grid, fraction_grid=fraction_grid)
    for alpha in FIG3A_ALPHAS:
        result.under_series[alpha] = cost_series(copies_grid, alpha)
    for beta in FIG3B_BETAS:
        result.over_series[beta] = over_cost_series(fraction_grid, beta)
    return result


def render(result: Fig3Result) -> str:
    """The printable form of both panels, with ASCII curve overlays."""
    from repro.analysis.plot import multi_series_plot

    blocks = ["== Fig. 3(a): alpha-fair undertainting cost =="]
    blocks.append(
        multi_series_plot(
            [
                (f"alpha={alpha}", result.copies_grid, result.under_series[alpha])
                for alpha in FIG3A_ALPHAS
            ],
            title="cost term vs copies n",
        )
    )
    for alpha in FIG3A_ALPHAS:
        blocks.append(
            format_series(
                f"alpha={alpha}",
                result.copies_grid,
                result.under_series[alpha],
                x_label="n (copies)",
                y_label="cost term",
                max_points=8,
            )
        )
    blocks.append("== Fig. 3(b): beta-steep overtainting cost ==")
    blocks.append(
        multi_series_plot(
            [
                (f"beta={beta}", result.fraction_grid, result.over_series[beta])
                for beta in FIG3B_BETAS
            ],
            title="cost vs pollution fraction P/N_R",
        )
    )
    for beta in FIG3B_BETAS:
        blocks.append(
            format_series(
                f"beta={beta}",
                result.fraction_grid,
                result.over_series[beta],
                x_label="P/N_R",
                y_label="cost",
                max_points=8,
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
