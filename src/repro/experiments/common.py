"""Shared experiment plumbing: cached workload recordings and run helpers."""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Iterable, List

from repro.core.params import MitosParams
from repro.faros import FarosConfig, FarosSystem
from repro.parallel import Job, run_jobs
from repro.replay.record import Recording
from repro.workloads.calibration import benchmark_params
from repro.workloads.network import NetworkBenchmark

#: quick-mode calibration: the scaled-down workloads reach lower copy
#: counts and pollution, so the decision boundary must scale with them
QUICK_CROSSOVER_COPIES = 150.0
QUICK_POLLUTION_FRACTION = 0.0015


def experiment_params(quick: bool = False, **kwargs: object) -> MitosParams:
    """Benchmark parameters with quick-mode-aware calibration.

    Full-size experiments use the reference calibration of
    :mod:`repro.workloads.calibration`; quick (test-sized) runs anchor the
    decision boundary to the smaller copy counts / pollution they produce,
    so the same propagate/block regimes are exercised.
    """
    if quick:
        kwargs.setdefault("crossover_copies", QUICK_CROSSOVER_COPIES)
        kwargs.setdefault("pollution_fraction", QUICK_POLLUTION_FRACTION)
    return benchmark_params(**kwargs)  # type: ignore[arg-type]


@lru_cache(maxsize=8)
def network_recording(seed: int = 0, quick: bool = False) -> Recording:
    """The one-minute network-benchmark recording (recorded once, replayed
    many times, exactly like the paper's PANDA record)."""
    if quick:
        workload = NetworkBenchmark(
            seed=seed,
            connections=3,
            bytes_per_connection=96,
            rounds=1,
            config_files=1,
            bytes_per_file=48,
            heavy_hitter=False,
        )
    else:
        workload = NetworkBenchmark(seed=seed)
    return workload.record()


def replay_config(config: FarosConfig, recording: Recording) -> FarosSystem:
    """Build a system for ``config``, replay the recording, return the system
    (whose tracker/timeline hold the post-run state)."""
    system = FarosSystem(config)
    system.replay(recording)
    return system


def run_sweep(
    fn: Callable[..., Any],
    points: Iterable[Any],
    jobs: int = 1,
    *common_args: Any,
) -> List[Any]:
    """Run ``fn(point, *common_args)`` for every sweep point, in order.

    The shared fan-out shape of every experiment: one pure job per
    parameter point, results returned in point order regardless of
    ``jobs`` (see :mod:`repro.parallel`), so ``jobs=N`` changes only the
    wall clock.  ``fn`` must be a module-level function and every argument
    picklable -- each worker rebuilds its recordings from seeds via the
    cached constructors above.
    """
    return run_jobs(
        [Job(fn, (point, *common_args)) for point in points], workers=jobs
    )
