"""Fig. 7: the under/over-tainting tradeoff swept through tau.

The paper replays the one-minute network-benchmark recording three times
with ``tau in {1, 1e-1, 1e-2}``, keeping everything else fixed.  Panel (a)
shows the two submarginal costs of Eq. 8 for each indirect flow over time
(the undertainting side varies per tag; the overtainting side -- the
global pollution signal -- grows mostly monotonically).  Panels (b)-(d)
show the per-flow decisions: at tau = 1 "most of the tags are blocked";
lowering tau shifts decisions toward propagation.

Expected shape: propagation rate strictly increases as tau decreases, and
the overtainting submarginal series is (mostly) increasing over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.analysis.timeline import DecisionTimeline
from repro.experiments.common import (
    experiment_params,
    network_recording,
    replay_config,
    run_sweep,
)
from repro.faros import mitos_config

#: the three tau points of Fig. 7(b), (c), (d)
FIG7_TAUS = (1.0, 1e-1, 1e-2)


@dataclass
class Fig7TauRun:
    """One replay at one tau."""

    tau: float
    decisions: int
    propagated: int
    blocked: int
    propagation_rate: float
    #: (ticks, under submarginals, over submarginals) -- panel (a)
    marginal_series: Tuple[List[int], List[float], List[float]]
    #: (ticks, +1/-1) -- panels (b)-(d)
    decision_series: Tuple[List[int], List[int]]


@dataclass
class Fig7Result:
    runs: Dict[float, Fig7TauRun] = field(default_factory=dict)

    @property
    def rates_by_tau(self) -> Dict[float, float]:
        return {tau: run.propagation_rate for tau, run in self.runs.items()}

    def rate_increases_as_tau_drops(self) -> bool:
        ordered = [self.runs[tau].propagation_rate for tau in sorted(self.runs)]
        # sorted taus ascending -> rates should be descending as tau grows,
        # i.e. ascending order of tau gives non-increasing rates reversed:
        return all(a >= b for a, b in zip(ordered, ordered[1:]))


def _tau_job(tau: float, seed: int, quick: bool) -> Fig7TauRun:
    """One replay at one tau (pure function of its arguments)."""
    recording = network_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick, tau=tau)
    system = replay_config(
        mitos_config(params, log_timeline=True), recording
    )
    timeline: DecisionTimeline = system.timeline  # type: ignore[assignment]
    return Fig7TauRun(
        tau=tau,
        decisions=len(timeline),
        propagated=timeline.propagated_count,
        blocked=timeline.blocked_count,
        propagation_rate=timeline.propagation_rate,
        marginal_series=timeline.marginal_series(),
        decision_series=timeline.decision_series(),
    )


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> Fig7Result:
    """Replay the recording once per tau with the timeline attached."""
    result = Fig7Result()
    for run_ in run_sweep(_tau_job, FIG7_TAUS, jobs, seed, quick):
        result.runs[run_.tau] = run_
    return result


def render(result: Fig7Result) -> str:
    rows = []
    for tau in sorted(result.runs, reverse=True):
        run_ = result.runs[tau]
        rows.append(
            [
                f"{tau:g}",
                run_.decisions,
                run_.propagated,
                run_.blocked,
                run_.propagation_rate,
            ]
        )
    table = format_table(
        ["tau", "IFP decisions", "propagated", "blocked", "propagation rate"],
        rows,
        title="== Fig. 7: tau vs IFP decisions (network benchmark) ==",
    )
    from repro.analysis.plot import decision_stripe

    stripes = []
    for tau in sorted(result.runs, reverse=True):
        run_ = result.runs[tau]
        ticks, decisions = run_.decision_series
        stripes.append(
            decision_stripe(
                ticks, decisions, title=f"-- decisions over time, tau={tau:g} --"
            )
        )
    note = (
        "expected shape: higher tau -> more blocked (paper: 'since we keep a\n"
        "relatively high value of tau, most of the tags are blocked')"
    )
    stripe_block = "\n\n".join(stripes)
    return f"{table}\n\n{stripe_block}\n\n{note}"


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
