"""Ablations for the design choices the paper calls out.

1. **Provenance scheduling** (Section VI "Scheduling management in the
   lists"): the evaluation assumes FIFO drop-head; LRU and REJECT
   alternatives quantify what the deferred future work is worth.
2. **Greedy vs. centralized KKT** (Section IV-B): the distributed greedy
   is a relaxation heuristic; we measure its cost gap against the exact
   KKT solution on the tag census of a real run.
3. **Published Eq. 8 vs. exact gradient**: the paper's printed marginal
   drops the ``o_T / N_R`` factor (folded into tau normalization); we
   quantify how differently the two rules saturate.
4. **Distributed staleness** (Section IV-B scalability): MITOS decisions
   under gossiped, stale pollution estimates vs. an exact-pollution
   oracle, over a range of gossip intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.reporting import format_table
from repro.core.costs import total_cost
from repro.core.params import MitosParams
from repro.core.solver import greedy_dynamics, solve_kkt
from repro.dift.provenance import SchedulingPolicy
from repro.distributed.cluster import run_sharded
from repro.experiments.common import experiment_params, network_recording
from repro.faros import FarosSystem, mitos_config
from repro.parallel import Job, run_jobs


# -- 1. provenance-list scheduling -------------------------------------------


@dataclass
class SchedulingRow:
    scheduling: str
    #: payload bytes whose netflow source tag survived the churn
    history_preserved: int
    #: payload bytes the confluence detector still flags at the end
    detected_bytes: int
    drops: int


def _provenance_pressure_recording(
    payload_bytes: int, churn_rounds: int, region_bytes: int
) -> "Recording":
    """A Fig. 2-style provenance-history scenario under list pressure.

    A netflow tag lands on a small payload region; then rounds of benign
    churn stamp fresh, heavily-copied process tags onto the whole region
    (including the payload).  Finally the loader touches the payload
    (export-table tags).  With small M_prov, the eviction policy decides
    whether the rare netflow source tag -- the byte's *origin* -- survives
    its own history, and with it the netflow+export confluence.
    """
    from repro.dift import flows
    from repro.dift.shadow import mem
    from repro.dift.tags import TagAllocator, TagTypes
    from repro.replay.record import Recording

    allocator = TagAllocator()
    recording = Recording(meta={"scenario": "provenance-pressure"})
    tick = 0
    netflow = allocator.fresh(TagTypes.NETFLOW, origin=("attacker", 4444))
    for offset in range(payload_bytes):
        recording.append(flows.insert(mem(offset), netflow, tick=tick))
        tick += 1
    for round_index in range(churn_rounds):
        process = allocator.fresh(
            TagTypes.PROCESS, origin=("pid", 9000 + round_index)
        )
        for offset in range(region_bytes):
            recording.append(flows.insert(mem(offset), process, tick=tick))
            tick += 1
    export = allocator.fresh(TagTypes.EXPORT_TABLE, origin=("module", 0))
    for offset in range(payload_bytes):
        recording.append(flows.insert(mem(offset), export, tick=tick))
        tick += 1
    recording.meta["netflow_key"] = netflow.key
    recording.meta["payload_bytes"] = payload_bytes
    return recording


def run_scheduling(quick: bool = False, seed: int = 0) -> List[SchedulingRow]:
    """FIFO vs LRU vs REJECT vs VALUE under provenance-list pressure.

    M_prov = 3 with five churn rounds: a byte's history does not fit its
    list, so the eviction policy decides what is remembered.  FIFO/LRU
    (the paper's assumption) forget the rare source tag; VALUE (the
    Section VI future-work policy) retains it because its undertainting
    marginal dwarfs the saturated churn tags'.
    """
    payload = 32 if quick else 64
    region = 256 if quick else 1024
    rounds = 4 if quick else 6
    recording = _provenance_pressure_recording(payload, rounds, region)
    params = experiment_params(quick=quick, M_prov=3)
    rows = []
    for scheduling in SchedulingPolicy:
        config = mitos_config(params)
        config.scheduling = scheduling
        system = FarosSystem(config)
        system.replay(recording)
        from repro.dift.shadow import mem
        from repro.dift.tags import Tag

        netflow = Tag(*recording.meta["netflow_key"])  # type: ignore[misc]
        preserved = sum(
            1
            for offset in range(payload)
            if netflow in system.tracker.shadow.tags_at(mem(offset))
        )
        rows.append(
            SchedulingRow(
                scheduling=scheduling.value,
                history_preserved=preserved,
                detected_bytes=(
                    system.detector.detected_bytes if system.detector else 0
                ),
                drops=system.tracker.stats.drops,
            )
        )
    return rows


# -- 2. greedy vs centralized KKT ---------------------------------------------


@dataclass
class GreedyGapResult:
    tags: int
    greedy_cost: float
    kkt_cost: float
    converged: bool

    @property
    def relative_gap(self) -> float:
        """(greedy - optimal) / |optimal|; small is good."""
        if self.kkt_cost == 0:
            return 0.0
        return (self.greedy_cost - self.kkt_cost) / abs(self.kkt_cost)


def _solver_params() -> "MitosParams":
    """Paper-scale parameters for the solver-level ablations.

    The solver comparisons are about optimizer agreement on the convex
    relaxation, not about a workload regime, so they use the paper's
    normalization (tau_scale = 1e6 on a megabyte-scale R) where the
    optimum sits at a few hundred copies per tag and the greedy converges
    within a modest step budget.
    """
    return MitosParams(R=1 << 20, M_prov=10, tau_scale=1e6)


def run_greedy_gap(quick: bool = False, seed: int = 0) -> GreedyGapResult:
    """Cost gap between the online greedy fixed point and the KKT optimum.

    Uses the live tag census of a network-benchmark run as the instance.
    """
    recording = network_recording(seed=seed, quick=quick)
    system = FarosSystem(mitos_config(experiment_params(quick=quick)))
    system.replay(recording)
    keys = sorted(system.tracker.counter.snapshot().keys())
    if quick:
        keys = keys[:6]
    params = _solver_params()
    final, _, converged = greedy_dynamics(
        keys, params, max_steps=200_000, exact=True
    )
    greedy_cost = total_cost({k: float(v) for k, v in final.items()}, params)
    kkt = solve_kkt(keys, params)
    return GreedyGapResult(
        tags=len(keys),
        greedy_cost=greedy_cost,
        kkt_cost=kkt.cost,
        converged=converged,
    )


# -- 3. published vs exact gradient rule --------------------------------------


@dataclass
class GradientRuleResult:
    tags: int
    published_total_copies: int
    exact_total_copies: int

    @property
    def conservativeness(self) -> float:
        """exact / published saturation copies: how much the published
        (undamped) rule under-propagates relative to the true gradient."""
        if self.published_total_copies == 0:
            return float("inf")
        return self.exact_total_copies / self.published_total_copies


def run_gradient_rule(quick: bool = False, seed: int = 0) -> GradientRuleResult:
    keys = [("netflow", i) for i in range(1, 4 if quick else 9)]
    keys += [("file", i) for i in range(1, 3 if quick else 5)]
    params = _solver_params()
    exact_final, _, _ = greedy_dynamics(
        keys, params, max_steps=500_000, exact=True
    )
    published_final, _, _ = greedy_dynamics(
        keys, params, max_steps=500_000, exact=False
    )
    return GradientRuleResult(
        tags=len(keys),
        published_total_copies=sum(published_final.values()),
        exact_total_copies=sum(exact_final.values()),
    )


# -- 4. distributed staleness --------------------------------------------------


@dataclass
class StalenessRow:
    gossip_interval: int
    oracle_agreement: float
    mean_estimate_error: float
    gossip_messages: int


def run_staleness(quick: bool = False, seed: int = 0) -> List[StalenessRow]:
    recording = network_recording(seed=seed, quick=quick)
    params = experiment_params(quick=quick)
    intervals = (100, 1000, 10_000) if not quick else (50, 500)
    rows = []
    for interval in intervals:
        result = run_sharded(
            recording, params, n_nodes=4, gossip_interval=interval, seed=seed
        )
        rows.append(
            StalenessRow(
                gossip_interval=interval,
                oracle_agreement=result.oracle_agreement,
                mean_estimate_error=result.mean_estimate_error,
                gossip_messages=result.gossip_messages,
            )
        )
    return rows


# -- 5. stack-pointer tainting -------------------------------------------------


@dataclass
class StackPointerRow:
    policy: str
    stack_bytes_tainted: int
    total_entries: int
    normalized_entropy: float


def run_stack_pointer(quick: bool = False, seed: int = 0) -> List[StackPointerRow]:
    """Section IV-B1's motivating scenario: a tainted stack pointer.

    Under propagate-all, every push through the tainted pointer taints
    another stack byte and entropy collapses toward a single dominating
    tag; MITOS stops propagating the pointer tag once its marginal cost
    turns positive.
    """
    from repro.core.fairness import normalized_entropy
    from repro.dift import flows
    from repro.dift.shadow import mem
    from repro.dift.tags import TagAllocator, TagTypes
    from repro.isa.machine import Machine
    from repro.isa.programs import stack_churn
    from repro.replay.record import Recording

    iterations = 64 if quick else 512
    src, stack_base = 0x100, 0x4000
    # record once: taint insertion + the churn program's events
    recording = Recording(meta={"scenario": "stack-pointer"})
    allocator = TagAllocator()
    pointer_tag = allocator.fresh(TagTypes.NETFLOW, origin="length-field")
    # a handful of unrelated tags so entropy has something to lose
    for i in range(8):
        other = allocator.fresh(TagTypes.FILE, origin=("f", i))
        for j in range(4):
            recording.append(
                flows.insert(mem(0x200 + i * 8 + j), other, tick=i)
            )
    recording.append(flows.insert(mem(src), pointer_tag, tick=100))
    machine = Machine(
        stack_churn(src, stack_base, iterations),
        event_sink=recording.append,
        start_tick=101,
    )
    machine.memory.write_byte(src, 7)
    machine.run()

    # calibrate the boundary below the stack size at this scenario's tiny
    # pollution, so the pointer tag saturates mid-churn
    params = experiment_params(
        quick=quick,
        crossover_copies=iterations / 4,
        pollution_fraction=5e-5,
    )
    rows = []
    for policy_name in ("propagate-none", "propagate-all", "mitos"):
        config = mitos_config(params)
        config.policy = policy_name
        config.label = policy_name
        system = FarosSystem(config)
        system.replay(recording)
        shadow = system.tracker.shadow
        stack_tainted = sum(
            1
            for location in shadow.tainted_locations()
            if location[0] == "mem"
            and stack_base <= location[1] < stack_base + iterations + 16
        )
        copies = list(system.tracker.counter.snapshot().values())
        rows.append(
            StackPointerRow(
                policy=policy_name,
                stack_bytes_tainted=stack_tainted,
                total_entries=shadow.total_entries(),
                normalized_entropy=normalized_entropy(copies),
            )
        )
    return rows


# -- aggregate entry point ------------------------------------------------------


@dataclass
class AblationsResult:
    scheduling: List[SchedulingRow] = field(default_factory=list)
    greedy_gap: GreedyGapResult = None  # type: ignore[assignment]
    gradient_rule: GradientRuleResult = None  # type: ignore[assignment]
    staleness: List[StalenessRow] = field(default_factory=list)
    stack_pointer: List[StackPointerRow] = field(default_factory=list)


def run(quick: bool = False, seed: int = 0, jobs: int = 1) -> AblationsResult:
    # the five sub-ablations are independent; each is one job
    sub_runs = (
        run_scheduling,
        run_greedy_gap,
        run_gradient_rule,
        run_staleness,
        run_stack_pointer,
    )
    results = run_jobs(
        [Job(fn, (quick, seed)) for fn in sub_runs], workers=jobs
    )
    return AblationsResult(
        scheduling=results[0],
        greedy_gap=results[1],
        gradient_rule=results[2],
        staleness=results[3],
        stack_pointer=results[4],
    )


def render(result: AblationsResult) -> str:
    blocks = []
    blocks.append(
        format_table(
            ["scheduling", "history preserved", "detected bytes", "drops"],
            [
                [r.scheduling, r.history_preserved, r.detected_bytes, r.drops]
                for r in result.scheduling
            ],
            title=(
                "== Ablation 1: provenance-list scheduling under history "
                "pressure (M_prov=3) =="
            ),
        )
    )
    gap = result.greedy_gap
    blocks.append(
        format_table(
            ["tags", "greedy cost", "KKT cost", "relative gap", "converged"],
            [[gap.tags, gap.greedy_cost, gap.kkt_cost, gap.relative_gap, gap.converged]],
            precision=6,
            title="== Ablation 2: distributed greedy vs centralized KKT ==",
        )
    )
    rule = result.gradient_rule
    blocks.append(
        format_table(
            ["tags", "published-rule copies", "exact-rule copies", "exact/published"],
            [
                [
                    rule.tags,
                    rule.published_total_copies,
                    rule.exact_total_copies,
                    rule.conservativeness,
                ]
            ],
            title="== Ablation 3: published Eq. 8 vs exact gradient ==",
        )
    )
    blocks.append(
        format_table(
            ["gossip interval", "oracle agreement", "mean est. error", "messages"],
            [
                [r.gossip_interval, r.oracle_agreement, r.mean_estimate_error, r.gossip_messages]
                for r in result.staleness
            ],
            title="== Ablation 4: decision quality under stale pollution ==",
        )
    )
    blocks.append(
        format_table(
            ["policy", "stack bytes tainted", "total entries", "norm. entropy"],
            [
                [
                    r.policy,
                    r.stack_bytes_tainted,
                    r.total_entries,
                    r.normalized_entropy,
                ]
                for r in result.stack_pointer
            ],
            title="== Ablation 5: tainted stack pointer (Section IV-B1) ==",
        )
    )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
