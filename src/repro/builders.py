"""Shared options -> subsystem builders for the CLI and the api facade.

``repro.cli`` and :mod:`repro.api` used to each wire a replay stack from
a :class:`~repro.options.ReplayOptions` by hand -- the same
observability/resilience/system construction, duplicated, which is
exactly how the two surfaces drift apart.  This module is the single
home for that wiring: the CLI formats flags and prints, the facade
exposes signatures, and both call down here for the actual build.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.params import MitosParams
from repro.faros.config import FarosConfig
from repro.faros.system import FarosSystem
from repro.faults.resilience import Resilience
from repro.obs.bundle import Observability
from repro.options import ControlOptions, ReplayOptions


def build_params(
    params: Optional[MitosParams],
    tau: float,
    alpha: float,
    quick_calibration: bool,
) -> MitosParams:
    """Explicit params, or the benchmark calibration for ``tau``/``alpha``."""
    if params is not None:
        return params
    from repro.experiments.common import experiment_params

    return experiment_params(quick=quick_calibration, tau=tau, alpha=alpha)


def build_faros_system(
    *,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    engine: str = "scalar",
    degrade_at: Optional[float] = None,
    label: Optional[str] = None,
    observability: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
    control: Optional[ControlOptions] = None,
) -> FarosSystem:
    """One complete DIFT stack (tracker, policy, pipeline, replayer)."""
    config = FarosConfig(
        params=build_params(params, tau, alpha, quick_calibration),
        policy=policy,
        direct_via_policy=all_flows,
        label=label if label is not None else policy,
        degrade_at=degrade_at,
        engine=engine,
    )
    return FarosSystem(
        config,
        observability=observability,
        resilience=resilience,
        control=control,
    )


def vector_conflict(options: ReplayOptions, *, as_flags: bool = False) -> str:
    """The shared refusal message for vector-incompatible options.

    Empty string when the options are fine.  ``as_flags`` renders the
    offending option names the way the user typed them on the CLI.
    """
    blockers = options.vector_blockers()
    if not blockers:
        return ""
    if as_flags:
        # option names map 1:1 onto CLI flags except the control bundle,
        # which the CLI spells --adapt
        flag_names = {"control": "adapt"}
        names = [
            "--" + flag_names.get(name, name).replace("_", "-")
            for name in blockers
        ]
        tail = "use --engine scalar"
    else:
        names = blockers
        tail = "use the scalar engine"
    return (
        ("--engine vector" if as_flags else "engine='vector'")
        + " is incompatible with "
        + ("" if as_flags else "option(s) ")
        + ", ".join(names)
        + f" (per-event plugin/supervision contracts); {tail}"
    )


def build_replay_system(
    options: ReplayOptions,
    *,
    params: Optional[MitosParams] = None,
    policy: str = "mitos",
    tau: float = 1.0,
    alpha: float = 1.5,
    quick_calibration: bool = False,
    all_flows: bool = False,
    label: Optional[str] = None,
    observability: Optional[Observability] = None,
) -> Tuple[FarosSystem, Optional[Observability]]:
    """The replay stack a :class:`ReplayOptions` bundle calls for.

    Builds (or adopts) the observability bundle, the resilience bundle
    and the adaptive controller the options describe, and returns
    ``(system, observability)`` -- hand the bundle to
    :func:`finish_observability` once the run is done.
    """
    if observability is None:
        observability = options.observability()
    system = build_faros_system(
        params=params,
        policy=policy,
        tau=tau,
        alpha=alpha,
        quick_calibration=quick_calibration,
        all_flows=all_flows,
        engine=options.engine,
        degrade_at=options.degrade_at,
        label=label,
        observability=observability,
        resilience=options.resilience(),
        control=options.control,
    )
    return system, observability


def finish_observability(
    options: ReplayOptions, observability: Optional[Observability]
) -> None:
    """Close the bundle and write the metrics file the options name."""
    if observability is None:
        return
    observability.close()
    if options.metrics_out is not None:
        observability.write_metrics(options.metrics_out)


__all__ = [
    "build_params",
    "build_faros_system",
    "build_replay_system",
    "finish_observability",
    "vector_conflict",
]
